"""Drive the detect service through the typed ``/v1`` client.

Starts ``python -m repro serve`` as a subprocess on an ephemeral port (pass
``--url http://host:port`` to target an already-running server or router
instead), then uses :class:`repro.service.ServiceClient`:

1. fires 8 concurrent ``/v1/detect`` requests from threads — arriving
   together, they get coalesced into micro-batches (visible in stats);
2. repeats one request to show the digest-keyed result cache;
3. opens a streaming session, feeds it chunk by chunk, and polls
   ``/v1/sessions/{name}/anomalies`` between chunks — the multi-tenant
   path — then checkpoints it to the snapshot store, closes it, and
   restores it to show the durability round trip;
4. prints the batcher/cache counters plus a slice of ``/v1/metrics``, and
   shuts the server down cleanly.

Every request is tagged with one pinned ``X-Request-Id`` (printed at
startup), so the whole run can be grepped out of the server's logs.

Run: ``PYTHONPATH=src python examples/serve_client.py``
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.obs import new_request_id
from repro.service import ServiceClient, ServiceClientError

WINDOW = 60
CONFIG = {"window": WINDOW, "ensemble_size": 8, "max_paa_size": 6, "max_alphabet_size": 6}


def make_series(seed: int, n: int = 800) -> list[float]:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 16.0 * np.pi, n)
    series = np.sin(t) + 0.05 * rng.standard_normal(n)
    series[450:510] *= 0.15  # plant one damped cycle
    return [float(v) for v in series]


def start_server(snapshot_dir: str) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--batch-window-ms", "5", "--max-batch", "16",
            "--snapshot-dir", snapshot_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        match = re.search(r"serving on (http://[\d.]+:\d+)", line or "")
        if match:
            return process, match.group(1)
    process.kill()
    raise RuntimeError("server did not start")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", help="target an already-running server instead of spawning one")
    args = parser.parse_args()

    process = None
    snapshots = tempfile.TemporaryDirectory(prefix="repro-snapshots-")
    if args.url:
        url = args.url.rstrip("/")
    else:
        process, url = start_server(snapshots.name)
        print(f"spawned server at {url}")
    trace_id = f"serve-client-{new_request_id()}"
    print(f"request id for this run: {trace_id}")
    client = ServiceClient(url, request_id=trace_id)

    try:
        # -- 1. concurrent one-shot requests (micro-batched together) -----
        def one_request(i: int) -> dict:
            return client.detect(make_series(i), seed=i, k=3, **CONFIG)

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(one_request, range(8)))
        elapsed = time.perf_counter() - started
        print(f"\n8 concurrent detects in {elapsed * 1000:.0f} ms:")
        for i, response in enumerate(responses):
            top = response["anomalies"][0]
            print(f"  client {i}: top anomaly at {top['position']} (score {top['score']:.4f})")

        # -- 2. the result cache ------------------------------------------
        repeat = one_request(0)
        print(f"\nrepeat of client 0: cached={repeat['cached']}")

        # -- 3. a streaming session ---------------------------------------
        feed = make_series(99, 1600)
        client.create_session("demo", seed=7, **CONFIG)
        for offset in range(0, 1600, 400):
            client.append("demo", feed[offset : offset + 400])
            poll = client.anomalies("demo", k=1)
            if poll["anomalies"]:
                top = poll["anomalies"][0]
                print(
                    f"  after {poll['length']:4d} points: top anomaly at "
                    f"{top['position']} (score {top['score']:.4f}, cached={poll['cached']})"
                )
        reference = client.anomalies("demo", k=3)["anomalies"]

        # checkpoint -> close (keeping snapshots) -> restore: the session
        # comes back with bitwise-identical detections.
        checkpoint = client.snapshot("demo")
        client.close_session("demo", keep_snapshots=True)
        try:
            client.anomalies("demo")
        except ServiceClientError as error:
            print(f"\nafter close: {error.status} {error.code} (as expected)")
        restored = client.restore("demo")
        resumed = client.anomalies("demo", k=3)["anomalies"]
        print(
            f"restored from checkpoint {restored['restored_from']} "
            f"(seq {checkpoint['snapshot_seq']}): detections identical: "
            f"{resumed == reference}"
        )
        client.close_session("demo")

        # -- 4. operational counters --------------------------------------
        stats = client.stats()
        batcher, cache = stats["batcher"], stats["cache"]
        print(
            f"\nstats: {batcher['dispatched']} requests in {batcher['batches']} batches "
            f"(mean batch {batcher['mean_batch_size']:.1f}); "
            f"cache {cache['hits']} hits / {cache['misses']} misses"
        )
        scrape = client.metrics()
        requests_total = [
            line for line in scrape.splitlines()
            if line.startswith("repro_http_requests_total")
        ]
        print("metrics (request counts by path):")
        for line in requests_total:
            print(f"  {line}")
    finally:
        if process is not None:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
            print("server shut down cleanly")
        snapshots.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
