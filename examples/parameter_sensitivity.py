"""The parameter-selection problem (paper Figure 1), in the terminal.

Run with:  python examples/parameter_sensitivity.py

Scores the single-run grammar-induction detector at every (w, a) in the
2..10 grid on a dishwasher power trace with one anomalous cycle, printing
a heat-grid of Scores. The takeaway mirrors the paper's Figure 1: good
combinations are isolated and hard to guess, neighbouring combinations can
be terrible — and the ensemble sidesteps the choice entirely.
"""

from __future__ import annotations

from repro.core.detector import GrammarAnomalyDetector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.power import dishwasher_series
from repro.evaluation.metrics import best_score


def main() -> None:
    series, anomaly = dishwasher_series(n_cycles=20, seed=0)
    window = anomaly.length
    print(
        f"dishwasher trace: {len(series)} points, anomalous cycle at "
        f"{anomaly.position} (length {anomaly.length})\n"
    )

    grid: dict[tuple[int, int], float] = {}
    print("single-run GI Score per (w, a):   (higher is better)")
    header = "      " + "".join(f"a={a:<5d}" for a in range(2, 11))
    print(header)
    for w in range(2, 11):
        cells = []
        for a in range(2, 11):
            detector = GrammarAnomalyDetector(window, w, a)
            candidates = detector.detect(series, k=3)
            value = best_score(candidates, anomaly.position, anomaly.length)
            grid[(w, a)] = value
            cells.append(f"{value:.2f} ")
        print(f"w={w:<3d} " + " ".join(cells))

    best_combo = max(grid, key=grid.get)
    values = list(grid.values())
    print(
        f"\nbest combination: w={best_combo[0]}, a={best_combo[1]} "
        f"(Score {grid[best_combo]:.2f}); grid mean "
        f"{sum(values) / len(values):.2f}; grid min {min(values):.2f}"
    )

    ensemble = EnsembleGrammarDetector(window, seed=0)
    ensemble_score = best_score(
        ensemble.detect(series, k=3), anomaly.position, anomaly.length
    )
    print(
        f"ensemble Score (no parameter choice needed): {ensemble_score:.2f} — "
        "vs the grid-mean expectation of picking (w, a) blindly"
    )


if __name__ == "__main__":
    main()
