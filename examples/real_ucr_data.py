"""Running the paper's evaluation protocol on real UCR archive files.

Run with:  python examples/real_ucr_data.py /path/to/Dataset_TRAIN.tsv

The offline benches use synthetic stand-ins for the UCR archive; this
example shows that the identical harness runs on genuine archive files:
it loads the file, builds the paper's planted-anomaly corpus (20 normal
instances + 1 planted anomalous instance per series), and compares the
ensemble against GI-Fix and Discord.

Without an argument it demonstrates the flow on a synthetic file written
in UCR format, so it is runnable offline end to end.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.datasets.loaders import load_ucr_file
from repro.datasets.planting import make_corpus
from repro.datasets.ucr_like import DATASETS
from repro.evaluation.baselines import gi_fix_detector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.discord.discords import DiscordDetector
from repro.evaluation.harness import evaluate_methods_on_corpus


def write_demo_file() -> Path:
    """Write a small UCR-format file from the synthetic GunPoint generator."""
    dataset = DATASETS["GunPoint"]
    rng = np.random.default_rng(0)
    rows = []
    for class_id in (1, 2):
        for _ in range(15):
            instance = dataset.generate_instance(class_id, rng)
            rows.append(f"{class_id}\t" + "\t".join(f"{x:.6f}" for x in instance))
    path = Path(tempfile.gettempdir()) / "GunPointDemo_TRAIN.tsv"
    path.write_text("\n".join(rows) + "\n")
    return path


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        print(f"loading real UCR file: {path}")
    else:
        path = write_demo_file()
        print(f"no file given — wrote a demo UCR-format file to {path}")

    dataset = load_ucr_file(path)
    print(
        f"dataset {dataset.spec.name}: instance length "
        f"{dataset.spec.instance_length}, {dataset.spec.n_classes} classes, "
        f"per-class counts {dataset.class_counts()}\n"
    )

    corpus = make_corpus(dataset, n_cases=5, seed=0)
    factories = {
        "Proposed": lambda window: EnsembleGrammarDetector(window, seed=0),
        "GI-Fix": lambda window: gi_fix_detector(window),
        "Discord": lambda window: DiscordDetector(window),
    }
    results = evaluate_methods_on_corpus(corpus, factories)
    print(f"{'method':10s}  {'avg Score':>9s}  {'HitRate':>7s}")
    for name, scores in results.items():
        print(f"{name:10s}  {scores.average:9.4f}  {scores.hit_rate:7.2f}")


if __name__ == "__main__":
    main()
