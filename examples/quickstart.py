"""Quickstart: detect an anomaly in a periodic signal with the ensemble.

Run with:  python examples/quickstart.py

Builds a simple periodic series with one planted shape anomaly, runs the
paper's ensemble grammar-induction detector (Algorithm 1) with default
parameters, and prints the ranked candidates next to the ground truth —
plus the single-run detector for contrast, and the engine's batch front
end (``detect_batch``) fanning out several independent series at once.

Scaling up: ``EnsembleGrammarDetector(..., n_jobs=4)`` spreads the ensemble
members (grouped by PAA size) over a process pool, and
``detector.detect_batch(series_list, k)`` fans out many independent series
the same way — both produce results identical to the serial path, so a
single seed still reproduces an entire batch run.
"""

from __future__ import annotations

import numpy as np

from repro import EnsembleGrammarDetector, GrammarAnomalyDetector

RNG = np.random.default_rng(7)


def make_series() -> tuple[np.ndarray, int, int]:
    """40 noisy sine cycles; one cycle is replaced by a double-frequency one."""
    series = np.sin(np.linspace(0.0, 80.0 * np.pi, 4000))
    series += 0.05 * RNG.standard_normal(len(series))
    anomaly_position, anomaly_length = 2400, 100
    series[anomaly_position : anomaly_position + anomaly_length] = np.sin(
        np.linspace(0.0, 8.0 * np.pi, anomaly_length)
    )
    return series, anomaly_position, anomaly_length


def main() -> None:
    series, gt_position, gt_length = make_series()
    print(f"series: {len(series)} points, planted anomaly at {gt_position} "
          f"(length {gt_length})\n")

    # The ensemble detector needs only the sliding-window length; the
    # discretization parameters are sampled internally (Algorithm 1).
    ensemble = EnsembleGrammarDetector(window=gt_length, seed=0)
    print("Ensemble grammar induction (N=50, wmax=amax=10, tau=40%):")
    for anomaly in ensemble.detect(series, k=3):
        marker = "  <-- planted" if abs(anomaly.position - gt_position) <= gt_length else ""
        print(
            f"  top-{anomaly.rank}: position {anomaly.position:5d}, "
            f"score {anomaly.score:+.3f}{marker}"
        )

    # A single fixed-parameter run (the GI-Fix baseline) for contrast.
    single = GrammarAnomalyDetector(window=gt_length, paa_size=4, alphabet_size=4)
    print("\nSingle-run grammar induction (w=4, a=4):")
    for anomaly in single.detect(series, k=3):
        marker = "  <-- planted" if abs(anomaly.position - gt_position) <= gt_length else ""
        print(
            f"  top-{anomaly.rank}: position {anomaly.position:5d}, "
            f"score {anomaly.score:+.3f}{marker}"
        )

    # Batch front end: many independent series in one call. Each series is
    # handled by an identically configured detector clone with a seed
    # spawned from the batch detector's seed, so the result is reproducible
    # and independent of n_jobs (pass n_jobs>1 to use a process pool).
    batch = [make_series()[0] for _ in range(3)]
    small = EnsembleGrammarDetector(window=gt_length, ensemble_size=10, seed=0)
    print("\nBatch detection over 3 independent series (detect_batch):")
    for index, anomalies in enumerate(small.detect_batch(batch, k=1)):
        top = anomalies[0]
        print(f"  series {index}: top candidate at {top.position} (score {top.score:+.3f})")


if __name__ == "__main__":
    main()
