"""Quickstart: detect an anomaly in a periodic signal with the ensemble.

Run with:  python examples/quickstart.py

Builds a simple periodic series with one planted shape anomaly, runs the
paper's ensemble grammar-induction detector (Algorithm 1) with default
parameters, and prints the ranked candidates next to the ground truth —
plus the single-run detector for contrast.
"""

from __future__ import annotations

import numpy as np

from repro import EnsembleGrammarDetector, GrammarAnomalyDetector

RNG = np.random.default_rng(7)


def make_series() -> tuple[np.ndarray, int, int]:
    """40 noisy sine cycles; one cycle is replaced by a double-frequency one."""
    series = np.sin(np.linspace(0.0, 80.0 * np.pi, 4000))
    series += 0.05 * RNG.standard_normal(len(series))
    anomaly_position, anomaly_length = 2400, 100
    series[anomaly_position : anomaly_position + anomaly_length] = np.sin(
        np.linspace(0.0, 8.0 * np.pi, anomaly_length)
    )
    return series, anomaly_position, anomaly_length


def main() -> None:
    series, gt_position, gt_length = make_series()
    print(f"series: {len(series)} points, planted anomaly at {gt_position} "
          f"(length {gt_length})\n")

    # The ensemble detector needs only the sliding-window length; the
    # discretization parameters are sampled internally (Algorithm 1).
    ensemble = EnsembleGrammarDetector(window=gt_length, seed=0)
    print("Ensemble grammar induction (N=50, wmax=amax=10, tau=40%):")
    for anomaly in ensemble.detect(series, k=3):
        marker = "  <-- planted" if abs(anomaly.position - gt_position) <= gt_length else ""
        print(
            f"  top-{anomaly.rank}: position {anomaly.position:5d}, "
            f"score {anomaly.score:+.3f}{marker}"
        )

    # A single fixed-parameter run (the GI-Fix baseline) for contrast.
    single = GrammarAnomalyDetector(window=gt_length, paa_size=4, alphabet_size=4)
    print("\nSingle-run grammar induction (w=4, a=4):")
    for anomaly in single.detect(series, k=3):
        marker = "  <-- planted" if abs(anomaly.position - gt_position) <= gt_length else ""
        print(
            f"  top-{anomaly.rank}: position {anomaly.position:5d}, "
            f"score {anomaly.score:+.3f}{marker}"
        )


if __name__ == "__main__":
    main()
