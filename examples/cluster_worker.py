"""Cluster walkthrough: one scheduler, two CLI workers, one batch.

Run with:  python examples/cluster_worker.py

This is the multi-host deployment shape scaled down to one machine — every
step is exactly what a real fleet does, only the hostnames differ:

1. bind a cluster scheduler on an ephemeral localhost port
   (``ClusterExecutor`` in fleet mode: it spawns no workers itself);
2. start two workers the way an operator would on remote machines:
   ``python -m repro worker --connect HOST:PORT``;
3. run ``detect_batch`` over several independent series through the fleet;
4. verify the results are bitwise identical to a plain serial run — the
   cluster backend honours the same parity contract as every other
   executor — then shut everything down.

See ``docs/deployment.md`` for the production run-book (fixed ports,
auth keys, serving in front of a fleet).
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np

from repro import EnsembleGrammarDetector
from repro.core.cluster import ClusterExecutor

RNG = np.random.default_rng(3)


def make_batch(count: int = 4) -> list[np.ndarray]:
    """Independent noisy sine series, each with one planted anomaly."""
    batch = []
    for index in range(count):
        series = np.sin(np.linspace(0.0, 24.0 * np.pi, 1200))
        series += 0.05 * RNG.standard_normal(len(series))
        position = 200 + 200 * index
        series[position : position + 60] = np.sin(np.linspace(0.0, 8.0 * np.pi, 60))
        batch.append(series)
    return batch


def start_worker(host: str, port: int) -> subprocess.Popen:
    """Start one worker process, exactly as an operator would on any host."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--connect", f"{host}:{port}"],
        env=env,
    )


def main() -> None:
    batch = make_batch()
    detector = EnsembleGrammarDetector(window=60, ensemble_size=6, seed=11)
    reference = detector.detect_batch(batch, k=3)
    print(f"serial reference: {len(batch)} series detected")

    # Fleet mode: spawn_workers=0 — the scheduler waits for workers we
    # bring up ourselves through the CLI, like a real multi-host fleet.
    with ClusterExecutor(2, spawn_workers=0, worker_wait=120.0) as executor:
        host, port = executor.start(wait=False)
        print(f"scheduler listening on {host}:{port}")
        workers = [start_worker(host, port) for _ in range(2)]
        try:
            with EnsembleGrammarDetector(
                window=60, ensemble_size=6, seed=11, executor=executor
            ) as clustered:
                results = clustered.detect_batch(batch, k=3)
            fleet = executor.worker_stats()
            print(
                f"fleet: {len(fleet)} workers "
                f"(pids {sorted(w['pid'] for w in fleet)}), "
                f"{executor.stats()['tasks_submitted']} tasks dispatched"
            )
            assert results == reference, "cluster results must be bitwise identical"
            print("bitwise parity with the serial run: OK")
            for index, anomalies in enumerate(results):
                top = anomalies[0]
                print(
                    f"  series {index}: top anomaly at {top.position} "
                    f"(score {top.score:.4f})"
                )
        finally:
            # Closing the executor tells workers to stop; reap them.
            executor.close()
            for worker in workers:
                worker.wait(timeout=10.0)
    print("cluster example done")


if __name__ == "__main__":
    main()
