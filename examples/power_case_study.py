"""Fridge-freezer power-usage case study (paper Section 7.4 / Figure 9).

Run with:  python examples/power_case_study.py [length]

Simulates a long fridge-freezer power trace (compressor duty cycles with
two injected anomalies — a distorted cycle and a spiky event), runs the
ensemble with a one-cycle sliding window, and reports the top-ranked
anomalies with timing. The paper runs 600,000 points in about a minute;
the default here is 120,000 for a quick demonstration (pass 600000 to
reproduce the paper's scale).
"""

from __future__ import annotations

import sys

from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.power import fridge_freezer_series
from repro.utils.timing import Timer


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    window = 900  # about one compressor cycle, as in the paper

    series, truths = fridge_freezer_series(length=length, seed=0)
    print(f"fridge-freezer trace: {length:,} points, window {window}")
    print("injected ground truth:")
    for truth in truths:
        print(f"  {truth.kind:16s} at {truth.position:7d} (length {truth.length})")

    detector = EnsembleGrammarDetector(window, seed=0)
    with Timer() as timer:
        candidates = detector.detect(series, k=3)
    print(f"\nensemble detection time: {timer.elapsed:.1f}s")

    print("top-ranked anomaly candidates:")
    for candidate in candidates:
        matches = [
            truth.kind
            for truth in truths
            if candidate.position < truth.position + truth.length
            and truth.position < candidate.position + candidate.length
        ]
        label = f"  matches injected {matches[0]}" if matches else ""
        print(
            f"  top-{candidate.rank}: position {candidate.position:7d}, "
            f"score {candidate.score:+.3f}{label}"
        )


if __name__ == "__main__":
    main()
