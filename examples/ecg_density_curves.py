"""Rule density curves on an ECG-like series (paper Figures 4 and 5).

Run with:  python examples/ecg_density_curves.py

Reproduces the paper's two illustrative figures in the terminal:

- Figure 4: an ECG series with a planted premature-beat-style anomaly, and
  its rule density curve — the anomaly sits at the curve's minimum.
- Figure 5: rule density curves from several (w, a) combinations, ranked
  by standard deviation; the top-ranked curves localize the anomaly while
  the bottom-ranked ones are uninformative — the rationale for the
  ensemble's member filtering.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import GrammarAnomalyDetector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.planting import make_test_case
from repro.datasets.ucr_like import DATASETS
from repro.utils.sparkline import sparkline


def main() -> None:
    dataset = DATASETS["TwoLeadECG"]
    case = make_test_case(dataset, seed=3)
    window = case.gt_length
    print(
        f"ECG test series: {len(case.series)} points, planted anomalous beat at "
        f"{case.gt_location} (length {case.gt_length})\n"
    )
    print("series:       ", sparkline(case.series))

    # Figure 4: one rule density curve; the anomaly is the trough.
    detector = GrammarAnomalyDetector(window, paa_size=5, alphabet_size=5)
    curve = detector.density_curve(case.series)
    print("density (5,5):", sparkline(curve))
    trough = int(np.argmin([curve[p : p + window].mean() for p in range(len(curve) - window)]))
    print(f"\nFigure 4: density-curve trough at {trough} "
          f"(ground truth {case.gt_location})\n")

    # Figure 5: several members ranked by std.
    print("Figure 5: member curves ranked by standard deviation")
    members = []
    for w, a in [(3, 3), (5, 5), (7, 4), (2, 2), (9, 9), (4, 8)]:
        member_curve = GrammarAnomalyDetector(window, w, a).density_curve(case.series)
        members.append(((w, a), member_curve))
    members.sort(key=lambda item: -float(np.std(item[1])))
    for rank, ((w, a), member_curve) in enumerate(members, start=1):
        label = "top" if rank <= 2 else ("bottom" if rank > len(members) - 2 else "mid")
        print(
            f"  #{rank} (w={w}, a={a}, std={np.std(member_curve):6.2f}, {label:6s}) "
            f"{sparkline(member_curve, 56)}"
        )

    # And the ensemble curve these members feed into.
    ensemble = EnsembleGrammarDetector(window, seed=0)
    report = ensemble.ensemble_report(case.series)
    print("\nensemble curve:", sparkline(report.curve, 56))
    top = ensemble.detect(case.series, k=1)[0]
    print(f"ensemble top-1 candidate: {top.position} (ground truth {case.gt_location})")


if __name__ == "__main__":
    main()
