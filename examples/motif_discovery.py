"""Grammar-based motif discovery — the flip side of anomaly detection.

Run with:  python examples/motif_discovery.py

The same grammar that flags incompressible stretches as anomalies names the
*compressible* ones: rules with many occurrences are repeating variable-
length patterns (motifs). This example builds an ECG-like series, prints
the top motifs with their occurrence lists, and shows that the planted
anomaly belongs to no motif.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.generators import synthetic_ecg
from repro.grammar import discover_motifs
from repro.grammar.rra import RRADetector


def main() -> None:
    series = synthetic_ecg(8000, seed=2, noise=0.02)
    # Plant one stretch of a foreign shape: a flat-lined segment with two
    # square pulses — nothing like a PQRST beat.
    anomaly_position, anomaly_length = 5000, 300
    foreign = np.zeros(anomaly_length)
    foreign[80:120] = 1.2
    foreign[200:240] = -0.8
    series[anomaly_position : anomaly_position + anomaly_length] = foreign
    print(f"ECG-like series: {len(series)} points, foreign segment at "
          f"{anomaly_position} (length {anomaly_length})\n")

    motifs = discover_motifs(series, window=160, paa_size=6, alphabet_size=4, k=5)
    print("top motifs (rule, #occurrences, pattern length in tokens):")
    for motif in motifs:
        preview = ", ".join(
            f"[{start}..{end}]" for start, end in motif.occurrences[:5]
        )
        suffix = " ..." if motif.count > 5 else ""
        print(
            f"  R{motif.rule_index}: x{motif.count}, {motif.word_length} tokens, "
            f"mean span {motif.mean_length:.0f} pts: {preview}{suffix}"
        )

    # No motif instance should cover the planted foreign segment.
    covered = any(
        start <= anomaly_position and anomaly_position + anomaly_length - 1 <= end
        for motif in motifs
        for start, end in motif.occurrences
    )
    print(f"\nplanted segment inside any motif instance: {covered}")

    # The same grammar machinery names the anomaly (variable-length RRA).
    detector = RRADetector(window=160, paa_size=6, alphabet_size=4)
    print(
        f"\nRRA anomalies (planted "
        f"[{anomaly_position}..{anomaly_position + anomaly_length - 1}]):"
    )
    for candidate in detector.detect(series, k=3):
        overlap = (
            candidate.position < anomaly_position + anomaly_length
            and anomaly_position < candidate.position + candidate.length
        )
        flag = "  <-- planted" if overlap else ""
        print(
            f"  top-{candidate.rank}: "
            f"[{candidate.position}..{candidate.position + candidate.length - 1}]{flag}"
        )


if __name__ == "__main__":
    main()
