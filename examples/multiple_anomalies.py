"""Detecting multiple anomalies in one series (paper Section 7.5).

Run with:  python examples/multiple_anomalies.py

Builds a long StarLightCurve-style series containing two planted anomalies
of length 1024 (series length 43,008, as in the paper) and checks that the
ensemble's top-3 candidates overlap both. Also contrasts with the Discord
baseline, whose single fixed length must suit both anomalies at once.
"""

from __future__ import annotations

from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.planting import make_multi_anomaly_case
from repro.datasets.ucr_like import DATASETS
from repro.discord.discords import DiscordDetector
from repro.utils.timing import Timer


def overlaps(candidate, location: int, length: int) -> bool:
    return candidate.position < location + length and location < candidate.position + candidate.length


def main() -> None:
    case = make_multi_anomaly_case(
        DATASETS["StarLightCurve"], seed=0, n_normal=40, n_anomalies=2
    )
    print(
        f"series: {len(case.series):,} points; planted anomalies at "
        f"{case.gt_locations} (length {case.gt_length})\n"
    )

    detector = EnsembleGrammarDetector(window=1024, seed=0)
    with Timer() as ensemble_timer:
        candidates = detector.detect(case.series, k=3)
    print(f"ensemble ({ensemble_timer.elapsed:.1f}s):")
    for candidate in candidates:
        hits = [loc for loc in case.gt_locations if overlaps(candidate, loc, case.gt_length)]
        label = f"  overlaps anomaly at {hits[0]}" if hits else ""
        print(f"  top-{candidate.rank}: {candidate.position:6d}{label}")
    found = sum(
        any(overlaps(c, loc, case.gt_length) for c in candidates)
        for loc in case.gt_locations
    )
    print(f"  -> detected {found}/2 planted anomalies\n")

    discord = DiscordDetector(window=1024)
    with Timer() as discord_timer:
        discord_candidates = discord.detect(case.series, k=3)
    print(f"discord/STOMP ({discord_timer.elapsed:.1f}s):")
    for candidate in discord_candidates:
        hits = [loc for loc in case.gt_locations if overlaps(candidate, loc, case.gt_length)]
        label = f"  overlaps anomaly at {hits[0]}" if hits else ""
        print(f"  top-{candidate.rank}: {candidate.position:6d}{label}")
    found = sum(
        any(overlaps(c, loc, case.gt_length) for c in discord_candidates)
        for loc in case.gt_locations
    )
    print(f"  -> detected {found}/2 planted anomalies")
    print(
        f"\nwall-clock: ensemble {ensemble_timer.elapsed:.1f}s vs "
        f"STOMP {discord_timer.elapsed:.1f}s on {len(case.series):,} points"
    )


if __name__ == "__main__":
    main()
