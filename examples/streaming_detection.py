"""Streaming anomaly detection — Sequitur's incrementality put to work.

Run with:  python examples/streaming_detection.py

Feeds a sensor stream point-by-point into a live streaming ensemble
(each member keeps a growing Sequitur grammar) and snapshots the detector
at several points in time, showing how the planted anomaly surfaces as soon
as enough context has streamed past — no batch reprocessing.
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import StreamingEnsembleDetector


def main() -> None:
    rng = np.random.default_rng(0)
    series = np.sin(np.linspace(0.0, 120.0 * np.pi, 6000))
    series += 0.03 * rng.standard_normal(len(series))
    anomaly_position, anomaly_length = 3500, 100
    series[anomaly_position : anomaly_position + anomaly_length] = np.sin(
        np.linspace(0.0, 8.0 * np.pi, anomaly_length)
    )
    print(
        f"stream of {len(series)} points; anomaly enters at t={anomaly_position} "
        f"(length {anomaly_length})\n"
    )

    detector = StreamingEnsembleDetector(window=100, ensemble_size=10, seed=1)
    checkpoints = [2000, 3400, 3700, 5000, 6000]
    consumed = 0
    for checkpoint in checkpoints:
        detector.extend(series[consumed:checkpoint])
        consumed = checkpoint
        top = detector.detect(k=1)[0]
        seen_anomaly = checkpoint >= anomaly_position + anomaly_length
        flag = (
            "  <-- anomaly localized"
            if abs(top.position - anomaly_position) <= 2 * anomaly_length
            else ""
        )
        print(
            f"t={checkpoint:5d}  (anomaly {'in' if seen_anomaly else 'not yet in'} stream)  "
            f"top-1 candidate at {top.position:5d}{flag}"
        )

    print(
        "\nthe candidate settles on the planted anomaly once the stream has "
        "passed it, and stays there as normal data keeps arriving."
    )


if __name__ == "__main__":
    main()
