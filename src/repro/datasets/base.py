"""Instance-source interface shared by synthetic and real datasets.

The planting harness only needs two operations from a dataset: draw a
"normal" instance (first class) and draw an "anomalous" instance (any other
class), both of a fixed length. :class:`SyntheticUCRDataset` implements that
interface on top of a class-conditional *shape function* plus shared
intra-class variability (amplitude jitter, smooth time warping, additive
noise), mimicking the within-class variation of the UCR archive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.sax.znorm import znorm
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Static dataset properties (the columns of the paper's Table 3)."""

    name: str
    instance_length: int
    n_classes: int
    data_type: str

    def __post_init__(self) -> None:
        if self.instance_length < 8:
            raise ValueError(f"instance_length must be >= 8, got {self.instance_length}")
        if self.n_classes < 2:
            raise ValueError(f"need at least 2 classes, got {self.n_classes}")

    @property
    def test_series_length(self) -> int:
        """Length of a generated test series: 20 normal + 1 planted instance."""
        return 21 * self.instance_length


@runtime_checkable
class InstanceSource(Protocol):
    """What the planting harness requires of a dataset."""

    spec: DatasetSpec

    def generate_instance(self, class_id: int, rng: np.random.Generator) -> np.ndarray:
        """One instance of the given class (1-based class ids, 1 = normal)."""
        ...


def smooth_time_warp(
    values: np.ndarray,
    rng: np.random.Generator,
    strength: float,
) -> np.ndarray:
    """Resample ``values`` along a smooth monotone warp of the time axis.

    The warp displaces the unit time axis by a low-frequency sinusoid of
    random phase and amplitude up to ``strength``; the displacement is small
    enough to keep the mapping monotone, so shapes stretch and squeeze
    locally without folding.
    """
    n = len(values)
    if n < 2 or strength <= 0:
        return values.copy()
    unit = np.linspace(0.0, 1.0, n)
    cycles = rng.uniform(0.5, 2.0)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    amplitude = rng.uniform(0.0, strength)
    # Displacement vanishes at both endpoints so the warp maps [0,1]->[0,1].
    displacement = amplitude * np.sin(2.0 * np.pi * cycles * unit + phase) * unit * (1.0 - unit)
    warped = np.clip(unit + displacement, 0.0, 1.0)
    return np.interp(warped, unit, values)


class SyntheticUCRDataset:
    """A UCR-archive-like dataset built from class-conditional shapes.

    Parameters
    ----------
    spec:
        Name, instance length, class count, and domain tag.
    shape:
        ``shape(class_id, unit_time, rng) -> waveform`` producing the noise-
        free class template on a unit time grid. ``class_id`` is 1-based
        with class 1 the "normal" class, following the paper's protocol.
    noise:
        Additive white-noise standard deviation (relative to the template's
        ~unit amplitude).
    warp:
        Maximum smooth time-warp displacement (fraction of instance length).
    amplitude_jitter:
        Standard deviation of the per-instance multiplicative amplitude
        factor (centred at 1).
    normalize:
        Whether to z-normalize each instance, as UCR archive data is.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        shape: Callable[[int, np.ndarray, np.random.Generator], np.ndarray],
        *,
        noise: float = 0.03,
        warp: float = 0.02,
        amplitude_jitter: float = 0.05,
        normalize: bool = True,
    ) -> None:
        self.spec = spec
        self._shape = shape
        self.noise = float(noise)
        self.warp = float(warp)
        self.amplitude_jitter = float(amplitude_jitter)
        self.normalize = bool(normalize)

    def __repr__(self) -> str:
        return f"SyntheticUCRDataset({self.spec.name!r}, n={self.spec.instance_length})"

    def generate_instance(self, class_id: int, rng: np.random.Generator) -> np.ndarray:
        """Draw one instance: template -> warp -> amplitude -> noise -> znorm."""
        if not 1 <= class_id <= self.spec.n_classes:
            raise ValueError(
                f"{self.spec.name} has classes 1..{self.spec.n_classes}, got {class_id}"
            )
        unit = np.linspace(0.0, 1.0, self.spec.instance_length)
        template = np.asarray(self._shape(class_id, unit, rng), dtype=np.float64)
        if template.shape != unit.shape:
            raise ValueError(
                f"shape function returned {template.shape}, expected {unit.shape}"
            )
        warped = smooth_time_warp(template, rng, self.warp)
        scaled = warped * (1.0 + self.amplitude_jitter * rng.standard_normal())
        noisy = scaled + self.noise * rng.standard_normal(len(scaled))
        return znorm(noisy) if self.normalize else noisy

    def normal_instance(self, rng: RandomState = None) -> np.ndarray:
        """An instance of the normal class (class 1)."""
        return self.generate_instance(1, ensure_rng(rng))

    def anomalous_instance(self, rng: RandomState = None) -> tuple[np.ndarray, int]:
        """An instance of a uniformly chosen non-normal class, with its id."""
        generator = ensure_rng(rng)
        class_id = int(generator.integers(2, self.spec.n_classes + 1))
        return self.generate_instance(class_id, generator), class_id
