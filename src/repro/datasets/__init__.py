"""Data substrate for the evaluation (paper Section 7).

The paper evaluates on six UCR Classification Archive datasets, REFIT
appliance power data, and ECG/EEG/random-walk scalability series. None of
those are redistributable offline, so this package provides *synthetic
stand-ins* that exercise the same code paths (see DESIGN.md, Substitutions):

- :mod:`repro.datasets.base` — the instance-source interface and helpers.
- :mod:`repro.datasets.ucr_like` — class-conditional shape generators for
  TwoLeadECG, ECGFiveDay, GunPoint, Wafer, Trace, StarLightCurve.
- :mod:`repro.datasets.planting` — the paper's test-series construction:
  20 concatenated normal instances with one anomalous instance planted at a
  random position between 40% and 80% of the series (Section 7.1.1).
- :mod:`repro.datasets.generators` — random walk, synthetic ECG, synthetic
  EEG (Section 7.3 scalability).
- :mod:`repro.datasets.power` — fridge-freezer and dishwasher simulators
  (Figure 1 and the Section 7.4 case study).
- :mod:`repro.datasets.loaders` — loads genuine UCR ``.tsv`` files when
  available, so the harness runs on the real archive unchanged.
"""

from repro.datasets.base import DatasetSpec, InstanceSource, SyntheticUCRDataset
from repro.datasets.generators import noisy_sine, random_walk, synthetic_ecg, synthetic_eeg
from repro.datasets.loaders import RealUCRDataset, load_ucr_file
from repro.datasets.planting import (
    AnomalyTestCase,
    MultiAnomalyTestCase,
    make_corpus,
    make_multi_anomaly_case,
    make_test_case,
)
from repro.datasets.power import dishwasher_series, fridge_freezer_series
from repro.datasets.ucr_like import DATASETS, dataset_by_name

__all__ = [
    "DATASETS",
    "AnomalyTestCase",
    "DatasetSpec",
    "InstanceSource",
    "MultiAnomalyTestCase",
    "RealUCRDataset",
    "SyntheticUCRDataset",
    "dataset_by_name",
    "dishwasher_series",
    "fridge_freezer_series",
    "load_ucr_file",
    "make_corpus",
    "make_multi_anomaly_case",
    "make_test_case",
    "noisy_sine",
    "random_walk",
    "synthetic_ecg",
    "synthetic_eeg",
]
