"""Loader for genuine UCR Time Series Classification Archive files.

The synthetic datasets in :mod:`repro.datasets.ucr_like` stand in for the
archive offline, but when real UCR files are available the same evaluation
harness runs on them unchanged: :func:`load_ucr_file` parses the archive's
``.tsv``/``.csv`` format (one instance per row, class label first) into a
:class:`RealUCRDataset` implementing the
:class:`repro.datasets.base.InstanceSource` protocol.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.datasets.base import DatasetSpec


class RealUCRDataset:
    """A UCR dataset backed by real instances grouped by class.

    ``generate_instance(class_id, rng)`` draws uniformly (with replacement)
    from the stored instances of that class, so the planting harness can use
    real data exactly as it uses the synthetic generators. Class ids are
    re-indexed to 1..k in sorted label order, with 1 the "normal" class, as
    in the paper ("all instances that belong to the first class as normal").
    """

    def __init__(self, name: str, instances: np.ndarray, labels: np.ndarray, data_type: str = "Real") -> None:
        if instances.ndim != 2:
            raise ValueError(f"instances must be 2-D, got shape {instances.shape}")
        if len(instances) != len(labels):
            raise ValueError("instances and labels must align")
        unique = np.unique(labels)
        if len(unique) < 2:
            raise ValueError("need at least 2 classes")
        self._by_class: dict[int, np.ndarray] = {
            index + 1: instances[labels == label] for index, label in enumerate(unique)
        }
        self.spec = DatasetSpec(name, instances.shape[1], len(unique), data_type)

    def generate_instance(self, class_id: int, rng: np.random.Generator) -> np.ndarray:
        if class_id not in self._by_class:
            raise ValueError(
                f"{self.spec.name} has classes 1..{self.spec.n_classes}, got {class_id}"
            )
        pool = self._by_class[class_id]
        return pool[int(rng.integers(0, len(pool)))].astype(np.float64).copy()

    def class_counts(self) -> dict[int, int]:
        """Instances available per (re-indexed) class."""
        return {class_id: len(pool) for class_id, pool in self._by_class.items()}


def load_ucr_file(path: str | Path, name: str | None = None) -> RealUCRDataset:
    """Parse one UCR archive file into a :class:`RealUCRDataset`.

    The archive format is one instance per line: the class label followed by
    the observations, separated by tabs or commas. Lines of differing length
    are rejected (the paper's datasets are all equal-length).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"UCR file not found: {path}")
    rows: list[list[float]] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.replace(",", "\t").split()
            try:
                rows.append([float(part) for part in parts])
            except ValueError as exc:
                raise ValueError(f"{path}:{line_number}: non-numeric value") from exc
    if not rows:
        raise ValueError(f"{path} contains no data")
    lengths = {len(row) for row in rows}
    if len(lengths) != 1:
        raise ValueError(f"{path} has rows of differing lengths: {sorted(lengths)}")
    matrix = np.asarray(rows, dtype=np.float64)
    labels = matrix[:, 0].astype(np.int64)
    instances = matrix[:, 1:]
    return RealUCRDataset(name or path.stem, instances, labels)
