"""Scalability-series generators (paper Section 7.3).

The paper measures runtime versus series length on random walk, ECG, and
EEG data up to 160,000 points. These generators produce arbitrarily long
series with the same qualitative structure:

- :func:`random_walk` — integrated white noise (least compressible);
- :func:`synthetic_ecg` — concatenated PQRST beats with RR-interval and
  amplitude variability plus baseline wander (highly repetitive);
- :func:`synthetic_eeg` — 1/f background with band-limited alpha/theta/beta
  oscillations (intermediate regularity).
"""

from __future__ import annotations

import numpy as np
from scipy.fft import irfft, rfftfreq

from repro.utils.rng import RandomState, ensure_rng


def random_walk(length: int, seed: RandomState = None) -> np.ndarray:
    """Standard Gaussian random walk of the given length."""
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    rng = ensure_rng(seed)
    return np.cumsum(rng.standard_normal(length))


def noisy_sine(
    length: int,
    period: float = 100.0,
    noise: float = 0.05,
    seed: RandomState = None,
) -> np.ndarray:
    """Sine wave with additive Gaussian noise — the simplest periodic workload."""
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    rng = ensure_rng(seed)
    t = np.arange(length)
    return np.sin(2.0 * np.pi * t / period) + noise * rng.standard_normal(length)


def _ecg_beat(length: int, rng: np.random.Generator) -> np.ndarray:
    """One PQRST beat on ``length`` samples with small morphological jitter."""
    unit = np.linspace(0.0, 1.0, length)

    def bump(center: float, width: float, amplitude: float) -> np.ndarray:
        return amplitude * np.exp(-0.5 * ((unit - center) / width) ** 2)

    return (
        bump(0.18, 0.04, 0.15 * rng.uniform(0.9, 1.1))
        + bump(0.36, 0.012, -0.20)
        + bump(0.40, 0.014, 1.00 * rng.uniform(0.95, 1.05))
        + bump(0.44, 0.012, -0.25)
        + bump(0.62, 0.06, 0.30 * rng.uniform(0.9, 1.1))
    )


def synthetic_ecg(
    length: int,
    seed: RandomState = None,
    *,
    mean_beat_length: int = 160,
    beat_length_std: float = 8.0,
    noise: float = 0.03,
    wander: float = 0.1,
) -> np.ndarray:
    """Synthetic ECG: concatenated beats with RR variability and wander.

    Parameters
    ----------
    length:
        Output length in samples.
    mean_beat_length, beat_length_std:
        RR interval distribution, in samples.
    noise:
        Additive white noise level.
    wander:
        Amplitude of the slow baseline-wander sinusoid.
    """
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    rng = ensure_rng(seed)
    pieces: list[np.ndarray] = []
    total = 0
    while total < length:
        beat_length = max(32, int(rng.normal(mean_beat_length, beat_length_std)))
        pieces.append(_ecg_beat(beat_length, rng))
        total += beat_length
    series = np.concatenate(pieces)[:length]
    t = np.arange(length)
    baseline = wander * np.sin(2.0 * np.pi * t / (mean_beat_length * 13.7))
    return series + baseline + noise * rng.standard_normal(length)


def synthetic_eeg(
    length: int,
    seed: RandomState = None,
    *,
    sampling_rate: float = 128.0,
    pink_exponent: float = 1.0,
) -> np.ndarray:
    """Synthetic EEG: 1/f^k background plus alpha/theta/beta band activity.

    Synthesized in the frequency domain: the background spectrum has
    amplitude proportional to ``1 / f^(pink_exponent / 2)`` with random
    phases, boosted in the theta (4–8 Hz), alpha (8–13 Hz), and beta
    (13–30 Hz) bands, then inverse-transformed and standardized.
    """
    if length < 8:
        raise ValueError(f"length must be at least 8, got {length}")
    rng = ensure_rng(seed)
    frequencies = rfftfreq(length, d=1.0 / sampling_rate)
    amplitude = np.zeros_like(frequencies)
    positive = frequencies > 0
    amplitude[positive] = 1.0 / frequencies[positive] ** (pink_exponent / 2.0)
    for low, high, gain in ((4.0, 8.0, 2.0), (8.0, 13.0, 4.0), (13.0, 30.0, 1.5)):
        band = (frequencies >= low) & (frequencies <= high)
        amplitude[band] *= gain
    phases = rng.uniform(0.0, 2.0 * np.pi, size=len(frequencies))
    spectrum = amplitude * np.exp(1j * phases)
    series = irfft(spectrum, length)
    std = series.std()
    if std > 0:
        series = series / std
    return series
