"""Appliance power-usage simulators (paper Figure 1 and Section 7.4).

The paper motivates the parameter-selection problem on a dishwasher
electricity trace (Figure 1) and closes with a case study on ~600,000
points of REFIT fridge-freezer power data (Figure 9), where the method
finds (1) a cycle of unusual shape and (2) a spiky event. The real REFIT
data is not redistributable offline, so these simulators produce series
with the same structure: long sequences of compressor/wash duty cycles
with injected anomalies of exactly those two archetypes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class PowerAnomaly:
    """Ground truth for one injected power-usage anomaly."""

    position: int
    length: int
    kind: str


def _fridge_cycle(
    period: int,
    rng: np.random.Generator,
    *,
    duty: float = 0.45,
    on_level: float = 85.0,
    spike_level: float = 120.0,
    noise: float = 1.5,
) -> np.ndarray:
    """One compressor cycle: off plateau, start-up spike, decaying on plateau."""
    on_samples = max(8, int(duty * period))
    off_samples = period - on_samples
    off = np.zeros(off_samples)
    ramp = np.linspace(0.0, 1.0, on_samples)
    # Start-up surge decaying onto the steady compressor level.
    on = on_level + (spike_level - on_level) * np.exp(-ramp * 12.0)
    cycle = np.concatenate([off, on])
    return cycle + noise * rng.standard_normal(period)


def fridge_freezer_series(
    length: int = 600_000,
    seed: RandomState = 0,
    *,
    mean_period: int = 900,
    period_jitter: float = 0.08,
    anomaly_fractions: tuple[float, ...] = (0.35, 0.7),
) -> tuple[np.ndarray, list[PowerAnomaly]]:
    """Simulated fridge-freezer power trace with two injected anomalies.

    Parameters
    ----------
    length:
        Total number of samples (paper: ~600,000 = 100 days at 8 s
        resolution).
    mean_period, period_jitter:
        Compressor cycle period (paper: one cycle ~ 900 samples) and its
        relative jitter.
    anomaly_fractions:
        Relative positions at which the two anomaly archetypes are injected:
        the first is a *distorted cycle* (unusually short power-usage
        period), the second a *spiky event* overlaying normal cycles.

    Returns
    -------
    (series, anomalies):
        The power trace and the injected ground truth records.
    """
    if length < 4 * mean_period:
        raise ValueError(
            f"length={length} too short for mean_period={mean_period}; "
            "need at least 4 cycles"
        )
    rng = ensure_rng(seed)
    pieces: list[np.ndarray] = []
    total = 0
    while total < length:
        period = max(64, int(rng.normal(mean_period, period_jitter * mean_period)))
        pieces.append(_fridge_cycle(period, rng))
        total += period
    series = np.concatenate(pieces)[:length]

    anomalies: list[PowerAnomaly] = []
    # Archetype 1: a distorted cycle — the compressor runs at reduced power
    # for an unusually short stretch, with an odd double-hump shape.
    position = int(anomaly_fractions[0] * length)
    span = mean_period
    unit = np.linspace(0.0, 1.0, span)
    distorted = 45.0 * np.exp(-0.5 * ((unit - 0.3) / 0.08) ** 2)
    distorted += 55.0 * np.exp(-0.5 * ((unit - 0.6) / 0.05) ** 2)
    series[position : position + span] = distorted + 1.5 * rng.standard_normal(span)
    anomalies.append(PowerAnomaly(position, span, "distorted-cycle"))

    # Archetype 2: a spiky event — several short high-power spikes riding on
    # top of the normal signal (e.g. a defrost heater misfiring).
    position = int(anomaly_fractions[1] * length)
    span = int(1.5 * mean_period)
    for spike_start in np.linspace(0, span - 40, 6).astype(int):
        series[position + spike_start : position + spike_start + 25] += 180.0
    anomalies.append(PowerAnomaly(position, span, "spiky-event"))
    return series, anomalies


def dishwasher_series(
    n_cycles: int = 20,
    seed: RandomState = 0,
    *,
    cycle_length: int = 400,
    anomalous_cycle: int | None = None,
) -> tuple[np.ndarray, PowerAnomaly]:
    """Simulated dishwasher trace with one anomalous cycle (paper Figure 1).

    A normal wash cycle has two heating plateaus separated by a low-power
    wash phase; the anomalous cycle has an *unusually short power usage
    period* — its second heating plateau is missing, matching the anomaly
    highlighted in the paper's Figure 1.

    Parameters
    ----------
    n_cycles:
        Number of wash cycles in the trace.
    cycle_length:
        Samples per cycle.
    anomalous_cycle:
        Index of the distorted cycle (default: the middle one).

    Returns
    -------
    (series, anomaly):
        The trace and the anomalous cycle's ground truth record.
    """
    if n_cycles < 3:
        raise ValueError(f"need at least 3 cycles, got {n_cycles}")
    rng = ensure_rng(seed)
    if anomalous_cycle is None:
        anomalous_cycle = n_cycles // 2
    if not 0 <= anomalous_cycle < n_cycles:
        raise ValueError(f"anomalous_cycle={anomalous_cycle} outside 0..{n_cycles - 1}")
    unit = np.linspace(0.0, 1.0, cycle_length)

    def plateau(start: float, stop: float) -> np.ndarray:
        rise = 1.0 / (1.0 + np.exp(-(unit - start) / 0.008))
        fall = 1.0 / (1.0 + np.exp(-(unit - stop) / 0.008))
        return rise - fall

    cycles: list[np.ndarray] = []
    for index in range(n_cycles):
        heat_one = 2000.0 * plateau(0.08, 0.30)
        wash = 150.0 * plateau(0.30, 0.62)
        heat_two = 2000.0 * plateau(0.62, 0.82)
        cycle = heat_one + wash + heat_two
        if index == anomalous_cycle:
            # Unusually short power usage: the second heating never happens.
            cycle = heat_one + 150.0 * plateau(0.30, 0.55)
        cycle = cycle * rng.uniform(0.97, 1.03) + 20.0 * rng.standard_normal(cycle_length)
        cycles.append(cycle)
    series = np.concatenate(cycles)
    anomaly = PowerAnomaly(anomalous_cycle * cycle_length, cycle_length, "short-cycle")
    return series, anomaly
