"""Test-series construction (paper Section 7.1.1 and Section 7.5).

A test series is built by concatenating 20 randomly drawn *normal*
instances, then splicing one randomly drawn *anomalous* instance into the
result at a random position between 40% and 80% of the series. 25 such
series per dataset form the evaluation corpus behind Tables 4–14.

Section 7.5 extends this to multiple anomalies: 42 normal StarLightCurve
instances (series length 43,008) with two anomalous instances planted at
well-separated random positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import InstanceSource
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class AnomalyTestCase:
    """One generated test series with its planted ground truth.

    Attributes
    ----------
    series:
        The full test series (normal background + planted instance).
    gt_location:
        Start index of the planted anomalous instance.
    gt_length:
        Length of the planted instance (``na`` in the paper).
    dataset:
        Source dataset name.
    anomaly_class:
        Class id of the planted instance (always >= 2).
    """

    series: np.ndarray
    gt_location: int
    gt_length: int
    dataset: str
    anomaly_class: int

    def __post_init__(self) -> None:
        if not 0 <= self.gt_location <= len(self.series) - self.gt_length:
            raise ValueError(
                f"ground truth [{self.gt_location}, +{self.gt_length}) outside "
                f"series of length {len(self.series)}"
            )


@dataclass(frozen=True)
class MultiAnomalyTestCase:
    """A test series containing several planted anomalies (Section 7.5)."""

    series: np.ndarray
    gt_locations: tuple[int, ...]
    gt_length: int
    dataset: str

    def __post_init__(self) -> None:
        for location in self.gt_locations:
            if not 0 <= location <= len(self.series) - self.gt_length:
                raise ValueError(f"ground truth at {location} outside series")


def make_test_case(
    dataset: InstanceSource,
    seed: RandomState = None,
    *,
    n_normal: int = 20,
    position_range: tuple[float, float] = (0.4, 0.8),
) -> AnomalyTestCase:
    """Generate one test series per the paper's protocol.

    Parameters
    ----------
    dataset:
        Any :class:`repro.datasets.base.InstanceSource`.
    seed:
        Seed or generator; a fixed seed reproduces the series exactly.
    n_normal:
        Number of normal instances concatenated (paper: 20).
    position_range:
        The planted instance is spliced in at a uniformly random position
        within this fraction range of the normal series (paper: 40%–80%).
    """
    rng = ensure_rng(seed)
    low, high = position_range
    if not 0.0 <= low <= high <= 1.0:
        raise ValueError(f"position_range must satisfy 0 <= low <= high <= 1, got {position_range}")
    normal = np.concatenate(
        [dataset.generate_instance(1, rng) for _ in range(n_normal)]
    )
    anomaly_class = int(rng.integers(2, dataset.spec.n_classes + 1))
    planted = dataset.generate_instance(anomaly_class, rng)
    position = int(rng.uniform(low, high) * len(normal))
    series = np.concatenate([normal[:position], planted, normal[position:]])
    return AnomalyTestCase(
        series=series,
        gt_location=position,
        gt_length=len(planted),
        dataset=dataset.spec.name,
        anomaly_class=anomaly_class,
    )


def make_corpus(
    dataset: InstanceSource,
    n_cases: int = 25,
    seed: RandomState = 0,
    *,
    n_normal: int = 20,
    position_range: tuple[float, float] = (0.4, 0.8),
) -> list[AnomalyTestCase]:
    """The paper's per-dataset corpus: ``n_cases`` independent test series.

    Each case gets an independent child generator spawned from ``seed``, so
    corpora are reproducible and cases are statistically independent.
    """
    if n_cases < 1:
        raise ValueError(f"n_cases must be positive, got {n_cases}")
    children = spawn_rngs(seed, n_cases)
    return [
        make_test_case(dataset, child, n_normal=n_normal, position_range=position_range)
        for child in children
    ]


def make_multi_anomaly_case(
    dataset: InstanceSource,
    seed: RandomState = None,
    *,
    n_normal: int = 40,
    n_anomalies: int = 2,
    min_separation: float = 2.0,
) -> MultiAnomalyTestCase:
    """A series with several planted anomalies (Section 7.5 protocol).

    ``n_normal`` normal instances are concatenated and ``n_anomalies``
    anomalous instances spliced in at random positions at least
    ``min_separation * instance_length`` apart (and away from the edges).
    With the paper's StarLightCurve numbers (40 normal + 2 anomalies of
    length 1024) the resulting series has length 43,008.
    """
    if n_anomalies < 1:
        raise ValueError(f"n_anomalies must be positive, got {n_anomalies}")
    rng = ensure_rng(seed)
    length = dataset.spec.instance_length
    normal = np.concatenate(
        [dataset.generate_instance(1, rng) for _ in range(n_normal)]
    )
    separation = int(min_separation * length)
    margin = length  # keep anomalies off the series edges
    positions: list[int] = []
    attempts = 0
    while len(positions) < n_anomalies:
        attempts += 1
        if attempts > 10_000:
            raise RuntimeError(
                "could not place anomalies with the requested separation; "
                "reduce n_anomalies or min_separation"
            )
        candidate = int(rng.integers(margin, len(normal) - margin))
        if all(abs(candidate - existing) >= separation for existing in positions):
            positions.append(candidate)
    # Splice from the right so earlier insertion points stay valid, then
    # compute final locations accounting for the shifts of later splices.
    order = np.argsort(positions)[::-1]
    series = normal
    for index in order:
        planted = dataset.generate_instance(
            int(rng.integers(2, dataset.spec.n_classes + 1)), rng
        )
        at = positions[index]
        series = np.concatenate([series[:at], planted, series[at:]])
    sorted_positions = sorted(positions)
    final_locations = tuple(
        position + rank * length for rank, position in enumerate(sorted_positions)
    )
    return MultiAnomalyTestCase(
        series=series,
        gt_locations=final_locations,
        gt_length=length,
        dataset=dataset.spec.name,
    )
