"""Synthetic stand-ins for the six UCR datasets of the paper's Table 3.

Each dataset reproduces the *structure* the evaluation relies on — a normal
class and at least one structurally different anomalous class at the paper's
instance length — using parametric waveforms from the corresponding domain:

========== ====== ======= ==========================================
Name       Length Classes Shape family
========== ====== ======= ==========================================
TwoLeadECG     82       2 single ECG beat; anomalous = inverted T wave
ECGFiveDay    132       2 ECG beat; anomalous = ST elevation, small R
GunPoint      150       2 hand-lift motion; anomalous = draw overshoot
Wafer         150       2 process steps; anomalous = spike + level shift
Trace         275       4 transient step; anomalous = oscillation/dip/ramp
StarLightCurve 1024     3 periodic light curve; 3 stellar shape families
========== ====== ======= ==========================================

The exact UCR waveforms are not essential to the paper's claims (which
compare parameter-selection strategies on top of the same data); what
matters is that anomalous instances differ in *shape*, not offset/amplitude,
so detection requires the discretization to capture structure. See DESIGN.md
("Substitutions") for the full rationale.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetSpec, SyntheticUCRDataset


def _bump(unit: np.ndarray, center: float, width: float, amplitude: float) -> np.ndarray:
    """Gaussian bump on the unit time axis."""
    return amplitude * np.exp(-0.5 * ((unit - center) / width) ** 2)


def _sigmoid(unit: np.ndarray, center: float, steepness: float) -> np.ndarray:
    """Smooth step from 0 to 1 centred at ``center``."""
    return 1.0 / (1.0 + np.exp(-(unit - center) / steepness))


# ----------------------------------------------------------------------
# TwoLeadECG (length 82): a single heartbeat. Class 2 inverts the T wave
# and broadens/weakens the QRS complex — a classic conduction anomaly.
# ----------------------------------------------------------------------


def _two_lead_ecg_shape(class_id: int, unit: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    r_jitter = rng.uniform(-0.01, 0.01)
    beat = (
        _bump(unit, 0.18, 0.035, 0.15)  # P wave
        + _bump(unit, 0.36, 0.012, -0.20)  # Q
        + _bump(unit, 0.40 + r_jitter, 0.014, 1.00)  # R
        + _bump(unit, 0.44, 0.012, -0.25)  # S
    )
    if class_id == 1:
        beat += _bump(unit, 0.62, 0.060, 0.30)  # upright T wave
    else:
        beat += _bump(unit, 0.62, 0.070, -0.28)  # inverted T wave
        beat += _bump(unit, 0.40 + r_jitter, 0.030, -0.35)  # broadened QRS
    return beat


# ----------------------------------------------------------------------
# ECGFiveDay (length 132): a beat recorded days apart. Class 2 shows ST
# elevation between S and T and a diminished R peak.
# ----------------------------------------------------------------------


def _ecg_five_day_shape(class_id: int, unit: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    r_amp = 1.0 if class_id == 1 else 0.70
    beat = (
        _bump(unit, 0.15, 0.030, 0.18)
        + _bump(unit, 0.33, 0.010, -0.18)
        + _bump(unit, 0.37, 0.013, r_amp)
        + _bump(unit, 0.41, 0.011, -0.22)
        + _bump(unit, 0.60, 0.055, 0.28)
    )
    if class_id == 2:
        # ST-segment elevation: a plateau bridging S and T.
        plateau = _sigmoid(unit, 0.44, 0.015) * (1.0 - _sigmoid(unit, 0.57, 0.015))
        beat += 0.22 * plateau
    return beat


# ----------------------------------------------------------------------
# GunPoint (length 150): hand raised to a target and lowered. Class 2
# (draw from holster) adds a dip before the lift and an overshoot after.
# ----------------------------------------------------------------------


def _gun_point_shape(class_id: int, unit: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    rise = rng.uniform(0.23, 0.27)
    fall = rng.uniform(0.73, 0.77)
    motion = _sigmoid(unit, rise, 0.035) - _sigmoid(unit, fall, 0.035)
    if class_id == 2:
        motion += _bump(unit, rise - 0.09, 0.030, -0.22)  # reach-down dip
        motion += _bump(unit, fall + 0.09, 0.030, 0.22)  # re-holster bounce
        motion += 0.08 * np.sin(2.0 * np.pi * 3.0 * unit) * (
            _sigmoid(unit, rise, 0.02) * (1.0 - _sigmoid(unit, fall, 0.02))
        )  # aim tremor on the plateau
    return motion


# ----------------------------------------------------------------------
# Wafer (length 150): semiconductor process sensor, piecewise plateaus.
# Class 2 injects a transient spike and shifts one plateau level/timing.
# ----------------------------------------------------------------------


def _wafer_shape(class_id: int, unit: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    steepness = 0.010
    profile = (
        1.20 * (_sigmoid(unit, 0.10, steepness) - _sigmoid(unit, 0.30, steepness))
        + 0.50 * (_sigmoid(unit, 0.30, steepness) - _sigmoid(unit, 0.55, steepness))
        + 1.00 * (_sigmoid(unit, 0.55, steepness) - _sigmoid(unit, 0.85, steepness))
    )
    profile += 0.04 * np.sin(2.0 * np.pi * 12.0 * unit) * (
        _sigmoid(unit, 0.10, steepness) - _sigmoid(unit, 0.30, steepness)
    )
    if class_id == 2:
        profile += _bump(unit, 0.45, 0.012, 1.40)  # transient spike
        profile += 0.35 * (_sigmoid(unit, 0.30, steepness) - _sigmoid(unit, 0.55, steepness))
    return profile


# ----------------------------------------------------------------------
# Trace (length 275): synthetic nuclear-instrument transients (4 classes,
# as in UCR). Class 1 is a clean step; the others vary the transient.
# ----------------------------------------------------------------------


def _trace_shape(class_id: int, unit: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    onset = rng.uniform(0.52, 0.58)
    step = _sigmoid(unit, onset, 0.012)
    if class_id == 1:
        return step
    if class_id == 2:
        # Damped ring-down after the step.
        after = np.maximum(unit - onset, 0.0)
        return step + 0.35 * np.sin(2.0 * np.pi * 9.0 * after) * np.exp(-after * 9.0)
    if class_id == 3:
        # Undershoot dip just before the step settles.
        return step - _bump(unit, onset + 0.05, 0.02, 0.55)
    # Class 4: slow ramp instead of a sharp step.
    ramp = np.clip((unit - (onset - 0.15)) / 0.35, 0.0, 1.0)
    return ramp


# ----------------------------------------------------------------------
# StarLightCurve (length 1024): phase-folded stellar brightness. Three
# canonical variable-star families (as in UCR's 3 classes).
# ----------------------------------------------------------------------


def _star_light_curve_shape(
    class_id: int, unit: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    phase = unit + rng.uniform(-0.02, 0.02)
    if class_id == 1:
        # Cepheid-like: fast rise, slow decline (asymmetric harmonics).
        return (
            np.sin(2.0 * np.pi * phase)
            + 0.35 * np.sin(4.0 * np.pi * phase + 0.6)
            + 0.15 * np.sin(6.0 * np.pi * phase + 1.2)
        )
    if class_id == 2:
        # Eclipsing binary: flat with a deep primary and shallow secondary dip.
        return (
            0.1 * np.sin(2.0 * np.pi * phase)
            - _bump(np.mod(phase, 1.0), 0.25, 0.035, 1.6)
            - _bump(np.mod(phase, 1.0), 0.75, 0.035, 0.7)
        )
    # RR Lyrae-like: sharp sawtooth pulse.
    saw = np.mod(phase, 1.0)
    return np.exp(-((saw - 0.15) % 1.0) * 4.0) * 1.8 - 0.9


#: Registry of the paper's six datasets (Table 3 properties).
DATASETS: dict[str, SyntheticUCRDataset] = {
    "TwoLeadECG": SyntheticUCRDataset(
        DatasetSpec("TwoLeadECG", 82, 2, "ECG"),
        _two_lead_ecg_shape,
        noise=0.04,
        warp=0.02,
    ),
    "ECGFiveDay": SyntheticUCRDataset(
        DatasetSpec("ECGFiveDay", 132, 2, "ECG"),
        _ecg_five_day_shape,
        noise=0.04,
        warp=0.02,
    ),
    "GunPoint": SyntheticUCRDataset(
        DatasetSpec("GunPoint", 150, 2, "Motion"),
        _gun_point_shape,
        noise=0.02,
        warp=0.03,
    ),
    "Wafer": SyntheticUCRDataset(
        DatasetSpec("Wafer", 150, 2, "Sensor"),
        _wafer_shape,
        noise=0.03,
        warp=0.01,
    ),
    "Trace": SyntheticUCRDataset(
        DatasetSpec("Trace", 275, 4, "Sensor"),
        _trace_shape,
        noise=0.02,
        warp=0.015,
    ),
    "StarLightCurve": SyntheticUCRDataset(
        DatasetSpec("StarLightCurve", 1024, 3, "Sensor"),
        _star_light_curve_shape,
        noise=0.03,
        warp=0.01,
    ),
}


def dataset_by_name(name: str) -> SyntheticUCRDataset:
    """Look up a dataset from :data:`DATASETS` with a helpful error."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; available: {known}") from None
