"""Result caching for the serving layer.

Two pieces:

- :func:`series_digest` — a stable content hash of a float64 series
  (BLAKE2b over the raw little-endian bytes plus the length). Two requests
  carrying bitwise-equal series collide on purpose: that is the cache key's
  job. The digest is what lets the service key results by *content* rather
  than by request identity, so a million users polling the same dashboard
  series hit one cache line.
- :class:`LRUCache` — a small thread-safe LRU map. The serving core keys it
  by ``(series digest, detector config fingerprint, k, seed)`` for one-shot
  detects and by ``(session epoch, stream version, k)`` for streaming
  polls, so identical requests and repeated polls without new data skip
  recomputation entirely. Thread-safe because entries are written from the
  micro-batcher's worker threads while the event loop reads.

Cached values are returned as-is (no deep copy): the service stores only
immutable-by-convention payloads (tuples of frozen :class:`~repro.core.anomaly.Anomaly`
records, response dicts that handlers serialize without mutating).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Hashable

import numpy as np

__all__ = ["LRUCache", "series_digest"]


def series_digest(series: np.ndarray) -> str:
    """Stable content hash of a 1-D float64 series (hex string).

    Bitwise-equal series produce equal digests on every platform this
    library supports (the bytes are hashed in little-endian order
    regardless of host endianness).
    """
    series = np.ascontiguousarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-dimensional, got shape {series.shape}")
    if series.dtype.byteorder == ">":  # pragma: no cover — big-endian hosts
        series = series.astype("<f8")
    h = hashlib.blake2b(digest_size=16)
    h.update(len(series).to_bytes(8, "little"))
    h.update(series.tobytes())
    return h.hexdigest()


class LRUCache:
    """A bounded, thread-safe least-recently-used cache.

    ``max_entries=0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — the switch the parity tests use to compare cached
    against uncached serving.
    """

    def __init__(self, max_entries: int = 256) -> None:
        max_entries = int(max_entries)
        if max_entries < 0:
            raise ValueError(f"max_entries must be non-negative, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        """Whether caching is on (``max_entries=0`` disables it)."""
        return self.max_entries > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, value)`` and refreshes recency."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return True, self._entries[key]
            self.misses += 1
            return False, None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry when full."""
        if not self.enabled:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every cached entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss/eviction counters for the ``/stats`` endpoint."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
