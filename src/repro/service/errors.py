"""Service-level error taxonomy with an HTTP status mapping.

Every failure the serving core can produce is a :class:`ServiceError`
subclass carrying a stable machine-readable ``code`` and the HTTP status
the front end maps it to. The core raises these from plain ``async``
methods (it knows nothing about HTTP); the front end turns them into JSON
error responses, and embedded callers can catch them directly.
"""

from __future__ import annotations

__all__ = [
    "BadRequest",
    "DeadlineExceeded",
    "MemoryBudgetExceeded",
    "NodeUnavailable",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "SessionExists",
    "SessionGone",
    "SessionNotFound",
    "TenantQuotaExceeded",
    "error_payload",
]


class ServiceError(Exception):
    """Base class of every serving-layer failure.

    Attributes
    ----------
    status:
        The HTTP status code the front end responds with.
    code:
        Stable machine-readable error identifier (kebab-case), independent
        of the human-readable message.
    retry_after:
        Seconds after which retrying the same request may succeed, or
        ``None`` when retrying cannot help (the client must change the
        request). Carried in the uniform ``/v1`` error envelope and, when
        set, in a ``Retry-After`` header.
    """

    status = 500
    code = "internal-error"
    retry_after: float | None = None


class BadRequest(ServiceError):
    """The request is malformed or carries invalid parameters."""

    status = 400
    code = "bad-request"


class SessionNotFound(ServiceError):
    """No live streaming session under the requested name."""

    status = 404
    code = "session-not-found"


class SessionGone(SessionNotFound):
    """The session existed but was closed, evicted, or migrated away.

    A refinement of :class:`SessionNotFound` (so ``except SessionNotFound``
    handlers keep working) that lets clients tell "you never created this"
    (404 — probably a typo) from "this existed and is gone" (410 —
    recreate or restore it, do not retry blindly).
    """

    status = 410
    code = "session-gone"


class SessionExists(ServiceError):
    """A streaming session with the requested name already exists."""

    status = 409
    code = "session-exists"


class ServiceOverloaded(ServiceError):
    """Backpressure: the pending-request queue is full (retry later)."""

    status = 429
    code = "overloaded"
    retry_after = 0.05


class TenantQuotaExceeded(ServiceError):
    """The tenant already runs its allowed number of sessions."""

    status = 429
    code = "tenant-quota-exceeded"


class ServiceClosed(ServiceError):
    """The service is shutting down and no longer accepts work."""

    status = 503
    code = "service-closed"


class DeadlineExceeded(ServiceError):
    """The request's deadline passed before a result was produced."""

    status = 504
    code = "deadline-exceeded"


class MemoryBudgetExceeded(ServiceError):
    """Admitting the request would exceed the global session memory budget."""

    status = 507
    code = "memory-budget-exceeded"
    retry_after = 1.0


class NodeUnavailable(ServiceError):
    """The router could not reach any node able to serve the request."""

    status = 504
    code = "node-unavailable"
    retry_after = 1.0


def error_payload(error: BaseException) -> dict:
    """JSON-shaped description of an error (the front end's response body).

    The envelope is uniform across every failure: ``code`` and ``message``
    always, plus ``retry_after`` (seconds) when retrying the identical
    request may succeed.
    """
    if isinstance(error, ServiceError):
        body = {"code": error.code, "message": str(error)}
        if error.retry_after is not None:
            body["retry_after"] = error.retry_after
        return {"error": body}
    return {
        "error": {
            "code": "detection-failed",
            "message": f"{type(error).__name__}: {error}",
        }
    }
