"""Service-level error taxonomy with an HTTP status mapping.

Every failure the serving core can produce is a :class:`ServiceError`
subclass carrying a stable machine-readable ``code`` and the HTTP status
the front end maps it to. The core raises these from plain ``async``
methods (it knows nothing about HTTP); the front end turns them into JSON
error responses, and embedded callers can catch them directly.
"""

from __future__ import annotations

__all__ = [
    "BadRequest",
    "DeadlineExceeded",
    "MemoryBudgetExceeded",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "SessionExists",
    "SessionNotFound",
    "error_payload",
]


class ServiceError(Exception):
    """Base class of every serving-layer failure.

    Attributes
    ----------
    status:
        The HTTP status code the front end responds with.
    code:
        Stable machine-readable error identifier (kebab-case), independent
        of the human-readable message.
    """

    status = 500
    code = "internal-error"


class BadRequest(ServiceError):
    """The request is malformed or carries invalid parameters."""

    status = 400
    code = "bad-request"


class SessionNotFound(ServiceError):
    """No live streaming session under the requested name."""

    status = 404
    code = "session-not-found"


class SessionExists(ServiceError):
    """A streaming session with the requested name already exists."""

    status = 409
    code = "session-exists"


class ServiceOverloaded(ServiceError):
    """Backpressure: the pending-request queue is full (retry later)."""

    status = 429
    code = "overloaded"


class ServiceClosed(ServiceError):
    """The service is shutting down and no longer accepts work."""

    status = 503
    code = "service-closed"


class DeadlineExceeded(ServiceError):
    """The request's deadline passed before a result was produced."""

    status = 504
    code = "deadline-exceeded"


class MemoryBudgetExceeded(ServiceError):
    """Admitting the request would exceed the global session memory budget."""

    status = 507
    code = "memory-budget-exceeded"


def error_payload(error: BaseException) -> dict:
    """JSON-shaped description of an error (the front end's response body)."""
    if isinstance(error, ServiceError):
        return {"error": {"code": error.code, "message": str(error)}}
    return {
        "error": {
            "code": "detection-failed",
            "message": f"{type(error).__name__}: {error}",
        }
    }
