"""Async serving subsystem: micro-batched detection as a long-lived service.

The deployment mode the ROADMAP's "heavy traffic from millions of users"
north star implies: one long-lived process that

- **coalesces** concurrent one-shot ``detect`` requests into micro-batches
  on a single shared executor pool
  (:class:`~repro.service.batching.MicroBatcher`), with backpressure and
  per-request deadlines;
- **hosts** many named multi-tenant streaming sessions
  (:class:`~repro.service.sessions.StreamSessionManager`) with idle
  eviction and a global memory budget;
- **caches** results by series content digest and detector configuration
  (:class:`~repro.service.cache.LRUCache`), and answers repeated streaming
  polls from the stream-version memoization;
- serves it all over a dependency-free stdlib HTTP front end
  (:mod:`repro.service.http`; CLI: ``python -m repro serve``).

Served results are **bitwise identical** to the equivalent direct
``detect()``/streaming calls — the parity suite enforces it across every
executor backend. The transport-agnostic core
(:class:`~repro.service.core.DetectService`) is also the seam a future
cross-machine dispatch backend plugs into: replace the in-process executor
with a cluster one and the batching/session/caching layers carry over.
"""

from repro.service.batching import MicroBatcher
from repro.service.cache import LRUCache, series_digest
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.config import DetectorConfig
from repro.service.core import DetectResult, DetectService
from repro.service.errors import (
    BadRequest,
    DeadlineExceeded,
    MemoryBudgetExceeded,
    NodeUnavailable,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    SessionExists,
    SessionGone,
    SessionNotFound,
    TenantQuotaExceeded,
)
from repro.service.http import BaseHTTPServer, ServiceHTTPServer, serve
from repro.service.sessions import StreamSessionManager
from repro.service.snapshot import (
    LocalSnapshotStore,
    SnapshotStore,
    decode_snapshot,
    encode_snapshot,
)

__all__ = [
    "BadRequest",
    "BaseHTTPServer",
    "DeadlineExceeded",
    "DetectResult",
    "DetectService",
    "DetectorConfig",
    "LRUCache",
    "LocalSnapshotStore",
    "MemoryBudgetExceeded",
    "MicroBatcher",
    "NodeUnavailable",
    "ServiceClient",
    "ServiceClientError",
    "ServiceClosed",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceOverloaded",
    "SessionExists",
    "SessionGone",
    "SessionNotFound",
    "SnapshotStore",
    "StreamSessionManager",
    "TenantQuotaExceeded",
    "decode_snapshot",
    "encode_snapshot",
    "serve",
    "series_digest",
]
