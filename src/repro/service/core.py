"""The transport-agnostic serving core: batching + sessions + caching.

:class:`DetectService` is the object a front end (the stdlib HTTP server in
:mod:`repro.service.http`, or any other transport) drives. It owns:

- one **executor** (any :class:`~repro.core.executors.MemberExecutor`
  backend, or the inline ``n_jobs`` semantics) shared by *every* request —
  the consolidation a long-lived service exists for: one pool, spawned
  once, amortized across all callers;
- a :class:`~repro.service.batching.MicroBatcher` that coalesces concurrent
  ``detect`` requests with equal detector configurations into single
  ``detect_batch`` calls with per-request seeds, bounded queueing
  (429-style rejection) and per-request deadlines;
- a :class:`~repro.service.sessions.StreamSessionManager` hosting named
  streaming sessions with idle eviction and a global memory budget;
- an :class:`~repro.service.cache.LRUCache` keyed by series digest +
  config fingerprint (one-shot detects) and stream version (polls).

Parity contract
---------------
A served request is **bitwise identical** to the equivalent direct call:

- ``await service.detect(series, window=w, seed=s, k=k)`` equals
  ``EnsembleGrammarDetector(window=w, seed=s, ...).detect(series, k)`` —
  the batch runner passes each request's seed verbatim through
  ``detect_batch(..., seeds=...)``, so coalescing never changes results;
- ``await service.detect_many(series_list, seed=s)`` equals
  ``EnsembleGrammarDetector(seed=s, ...).detect_batch(series_list)`` — the
  same ``SeedSequence.spawn`` derivation, submitted per item;
- session ``append``/``poll`` equals driving one
  :class:`~repro.core.streaming.StreamingEnsembleDetector` with the same
  chunks — the session *is* that detector.

The parity suite (``tests/test_service.py``/``tests/test_service_http.py``)
enforces all three across the serial/thread/process backends.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.anomaly import Anomaly
from repro.core.engine import detect_batch
from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.executors import (
    BatchItemError,
    MemberExecutor,
    as_executor,
    validate_executor_spec,
)
from repro.obs import stages
from repro.obs.context import bind_request_id, get_request_id
from repro.obs.logging import get_logger
from repro.service.batching import MicroBatcher
from repro.service.cache import LRUCache, series_digest
from repro.service.config import DETECT_FIELDS, DetectorConfig
from repro.service.errors import BadRequest
from repro.service.sessions import StreamSessionManager
from repro.service.snapshot import SnapshotStore
from repro.utils.rng import spawn_rngs

__all__ = ["DetectResult", "DetectService"]

_UNSET = object()

_log = get_logger("service.core")


@dataclass(frozen=True)
class DetectResult:
    """One served detection: the ranked candidates plus cache provenance.

    ``timings`` (present only when the request asked for it) holds the
    per-stage durations of the micro-batch this request ran in — batch
    level, not per item, because coalesced items share the stages.
    """

    anomalies: tuple[Anomaly, ...]
    cached: bool
    timings: dict | None = None

    def payload(self) -> dict:
        """JSON-shaped response body."""
        document = {
            "anomalies": [
                {"rank": a.rank, "position": a.position, "length": a.length, "score": a.score}
                for a in self.anomalies
            ],
            "cached": self.cached,
        }
        if self.timings is not None:
            document["timings"] = self.timings
        return document


class _DetectItem:
    """One request inside a coalesced batch: series, exact seed, and spec.

    The detector kwargs/k ride on the item (one shared dict per config —
    cheap references) rather than in a service-level registry, so serving
    a long tail of distinct configurations leaves no permanent per-config
    state behind.

    ``request_id`` is captured at submit time because the batcher's drain
    task runs in its own ``contextvars`` context — the id must ride on the
    item to reach the batch runner (and, through it, cluster envelopes).
    """

    __slots__ = ("series", "seed", "kwargs", "k", "request_id")

    def __init__(
        self, series: np.ndarray, seed, kwargs: dict, k: int, request_id: str | None = None
    ) -> None:
        self.series = series
        self.seed = seed
        self.kwargs = kwargs
        self.k = k
        self.request_id = request_id


class DetectService:
    """Async, multi-tenant serving core over the detection engine.

    Parameters
    ----------
    executor:
        Execution backend shared by every request: a spec string from
        :data:`~repro.core.executors.EXECUTOR_SPECS` — including
        ``"cluster:HOST:PORT"``, which puts a worker fleet behind the
        service with no other change — (the service creates and owns it),
        a live :class:`~repro.core.executors.MemberExecutor` (borrowed;
        the caller closes it), or ``None`` for the inline ``n_jobs``
        semantics.
    n_jobs:
        Pool size for a spec-built executor (and the ``n_jobs`` passed to
        the batch engine when ``executor`` is ``None``).
    batch_window, max_batch_size, max_pending:
        Micro-batching knobs — see
        :class:`~repro.service.batching.MicroBatcher`.
    cache_entries:
        LRU result-cache capacity (0 disables caching).
    max_sessions, idle_timeout, memory_budget:
        Streaming-session policies — see
        :class:`~repro.service.sessions.StreamSessionManager`.
    snapshot_store, snapshot_interval:
        Session checkpointing — see
        :class:`~repro.service.sessions.StreamSessionManager`. With a
        store attached, sessions survive crashes and can migrate between
        nodes sharing the store.
    node_id:
        Stable identity this node reports under ``GET /v1/nodes`` (the
        router uses it to tell nodes apart); defaults to ``host:pid``-less
        ``"node"``.
    default_timeout:
        Deadline (seconds) applied to requests that do not carry their own;
        ``None`` waits indefinitely.
    """

    def __init__(
        self,
        *,
        executor: MemberExecutor | str | None = None,
        n_jobs: int | None = 1,
        batch_window: float = 0.002,
        max_batch_size: int = 16,
        max_pending: int = 128,
        cache_entries: int = 256,
        max_sessions: int = 64,
        idle_timeout: float | None = None,
        memory_budget: int | None = None,
        snapshot_store: SnapshotStore | None = None,
        snapshot_interval: int | None = None,
        node_id: str | None = None,
        default_timeout: float | None = 30.0,
    ) -> None:
        validate_executor_spec(executor)
        self.n_jobs = n_jobs
        self._owns_executor = isinstance(executor, str)
        if isinstance(executor, str):
            self._executor: MemberExecutor | None = as_executor(
                executor, None if n_jobs in (None, 1) else n_jobs
            )
        else:
            self._executor = executor
        self.default_timeout = default_timeout
        self.cache = LRUCache(cache_entries)
        self.batcher = MicroBatcher(
            self._run_batch,
            batch_window=batch_window,
            max_batch_size=max_batch_size,
            max_pending=max_pending,
        )
        self.sessions = StreamSessionManager(
            max_sessions=max_sessions,
            idle_timeout=idle_timeout,
            memory_budget=memory_budget,
            executor=self._executor,
            cache=self.cache if self.cache.enabled else None,
            snapshot_store=snapshot_store,
            snapshot_interval=snapshot_interval,
        )
        self.node_id = str(node_id) if node_id is not None else "node"
        self._closed = False

    # ------------------------------------------------------------------
    # Request normalization.
    # ------------------------------------------------------------------

    @staticmethod
    def _normalize_config(config: dict) -> tuple[dict, tuple]:
        """Validate a request's detector configuration; return (kwargs, fingerprint).

        The request mapping is parsed into the canonical
        :class:`~repro.service.config.DetectorConfig` (unknown fields
        rejected loudly) and resolved through the engine, so two requests
        spelling the same configuration differently share one fingerprint —
        and one micro-batch group and cache line.
        """
        try:
            parsed = DetectorConfig.from_mapping(dict(config), allowed=DETECT_FIELDS)
            return parsed.resolve()
        except (ValueError, TypeError) as error:
            raise BadRequest(f"invalid detector configuration: {error}") from error

    @staticmethod
    def _normalize_series(series) -> np.ndarray:
        series = np.ascontiguousarray(series, dtype=np.float64)
        if series.ndim != 1:
            raise BadRequest(f"series must be 1-dimensional, got shape {series.shape}")
        if series.size < 2:
            raise BadRequest(f"series must hold at least 2 observations, got {series.size}")
        return series

    # ------------------------------------------------------------------
    # One-shot detection.
    # ------------------------------------------------------------------

    async def detect(
        self,
        series,
        *,
        k: int = 3,
        seed=0,
        timeout=_UNSET,
        use_cache: bool = True,
        timings: bool = False,
        **config: Any,
    ) -> DetectResult:
        """Detect anomalies in one series (micro-batched, cached, deadlined).

        ``config`` holds the :class:`~repro.core.ensemble.EnsembleGrammarDetector`
        parameters (``window`` is required). Bitwise identical to
        ``EnsembleGrammarDetector(**config, seed=seed).detect(series, k)``.
        ``timings=True`` attaches the micro-batch's per-stage durations to
        the result (empty for cache hits or stages run in worker
        processes); it never changes the detection itself.
        """
        kwargs, fingerprint = self._normalize_config(config)
        return await self._submit_detect(
            series,
            kwargs,
            fingerprint,
            k=k,
            seed=seed,
            timeout=timeout,
            use_cache=use_cache,
            want_timings=timings,
        )

    async def _submit_detect(
        self,
        series,
        kwargs: dict,
        fingerprint: tuple,
        *,
        k,
        seed,
        timeout,
        use_cache,
        want_timings: bool = False,
    ) -> DetectResult:
        """The post-config-normalization half of :meth:`detect`.

        Split out so :meth:`detect_many` can validate one shared
        configuration once and submit every series through it.
        """
        series = self._normalize_series(series)
        k = int(k)
        if k < 1:
            raise BadRequest(f"k must be positive, got {k}")
        if timeout is _UNSET:
            timeout = self.default_timeout
        # Generator seeds are neither hashable-stable nor reusable; only
        # int/None-seeded requests are cacheable.
        cache_key = None
        if use_cache and self.cache.enabled and (seed is None or isinstance(seed, int)):
            cache_key = ("detect", series_digest(series), fingerprint, k, seed)
            hit, value = self.cache.get(cache_key)
            if hit:
                return DetectResult(
                    anomalies=value, cached=True, timings={} if want_timings else None
                )
        group = (fingerprint, k)
        anomalies, batch_timings = await self.batcher.submit(
            group, _DetectItem(series, seed, kwargs, k, get_request_id()), timeout=timeout
        )
        anomalies = tuple(anomalies)
        if cache_key is not None:
            self.cache.put(cache_key, anomalies)
        return DetectResult(
            anomalies=anomalies, cached=False, timings=batch_timings if want_timings else None
        )

    async def detect_many(
        self,
        series_list: Sequence,
        *,
        k: int = 3,
        seed=0,
        timeout=_UNSET,
        **config: Any,
    ) -> list[DetectResult | BatchItemError]:
        """Detect over many series as one request (partial results on failure).

        Per-item seeds derive from ``seed`` exactly like
        :func:`repro.core.engine.detect_batch` derives them, so the result
        list is bitwise identical to a direct
        ``EnsembleGrammarDetector(seed=seed, **config).detect_batch(series_list, k)``
        — except that a failing series yields a
        :class:`~repro.core.executors.BatchItemError` in its slot instead
        of failing the whole request.
        """
        series_list = list(series_list)
        seeds = spawn_rngs(seed, len(series_list))
        # One shared configuration: validate and fingerprint it once, not
        # once per series.
        kwargs, fingerprint = self._normalize_config(config)
        results = await asyncio.gather(
            *(
                self._submit_detect(
                    series,
                    kwargs,
                    fingerprint,
                    k=k,
                    seed=child,
                    timeout=timeout,
                    use_cache=False,
                )
                for series, child in zip(series_list, seeds)
            ),
            return_exceptions=True,
        )
        out: list[DetectResult | BatchItemError] = []
        for index, result in enumerate(results):
            if isinstance(result, BaseException):
                if not isinstance(result, Exception):
                    raise result
                if isinstance(result, BatchItemError):
                    # Re-attribute: the wrapped index points into whatever
                    # micro-batch the item landed in, not this request.
                    result = BatchItemError(index, None, result.cause_message)
                else:
                    result = BatchItemError(index, None, result)
                out.append(result)
            else:
                out.append(result)
        return out

    def _batch_chunksize(self, count: int) -> int:
        """Task granularity for one coalesced batch.

        Aim for ~2 chunks per worker so the pool stays balanced while the
        per-task dispatch overhead is amortized across the chunk — the
        knob that makes micro-batching of *small* requests pay (see
        ``chunksize`` in :func:`repro.core.engine.iter_detect_batch`).
        """
        if self._executor is None or self._executor.kind == "serial":
            return 1
        workers = max(1, self._executor.max_workers)
        return max(1, -(-count // (2 * workers)))

    def _run_batch(self, group: tuple, items: Sequence[_DetectItem]) -> list[tuple[int, Any]]:
        """Blocking batch runner (worker thread): one coalesced detect batch.

        Every item runs with *its own* seed through the engine's explicit
        ``seeds=`` path on the shared executor; a per-item failure comes
        back as that slot's :class:`~repro.core.executors.BatchItemError`.
        All items share the group's config by construction, so the first
        item's spec speaks for the batch.

        Telemetry rides along without touching results: the coalesced
        items' request ids are re-bound here (the drain task has its own
        context) so engine/cluster log lines and task envelopes name the
        originating requests, and the stage durations of the batch are
        captured and returned with each successful slot.
        """
        kwargs, k = items[0].kwargs, items[0].k
        request_ids = sorted({item.request_id for item in items if item.request_id})
        template = EnsembleGrammarDetector(**kwargs, seed=0)
        with bind_request_id(",".join(request_ids) or None), stages.capture() as timings:
            results = detect_batch(
                template,
                [item.series for item in items],
                k,
                n_jobs=self.n_jobs,
                executor=self._executor,
                seeds=[item.seed for item in items],
                return_exceptions=True,
                chunksize=self._batch_chunksize(len(items)),
            )
            _log.debug(
                "micro-batch of %d item(s) ran",
                len(items),
                extra={"batch_size": len(items), "k": k},
            )
        return [
            (index, result if isinstance(result, BaseException) else (result, dict(timings)))
            for index, result in enumerate(results)
        ]

    # ------------------------------------------------------------------
    # Streaming sessions (delegation).
    # ------------------------------------------------------------------

    async def create_session(self, name: str, **config: Any) -> dict:
        """Create a named streaming session (see :class:`StreamSessionManager`)."""
        return await self.sessions.create(name, **config)

    async def append(self, name: str, values) -> dict:
        """Feed a chunk into a session (507 semantics on budget breach)."""
        return await self.sessions.append(name, values)

    async def poll(self, name: str, k: int = 3) -> dict:
        """Snapshot-detect on a session; cached per stream version."""
        return await self.sessions.poll(name, k)

    async def close_session(
        self, name: str, *, drop_snapshots: bool = True, reason: str = "closed"
    ) -> dict:
        """Close a session and release its stream state.

        ``drop_snapshots=False`` keeps stored checkpoints (migration /
        planned-restart semantics); the ``reason`` lands in the tombstone
        a later request's 410 reports.
        """
        return await self.sessions.close(name, drop_snapshots=drop_snapshots, reason=reason)

    async def snapshot_session(self, name: str) -> dict:
        """Checkpoint one session to the snapshot store on demand."""
        return await self.sessions.snapshot(name)

    async def restore_session(self, name: str) -> dict:
        """Restore a session from its latest stored checkpoint."""
        return await self.sessions.restore(name)

    def session_info(self, name: str) -> dict:
        """Info document of one live session (410/404 when gone/unknown)."""
        return self.sessions.info(name)

    def list_sessions(self) -> list[dict]:
        """Summaries of every live streaming session."""
        return self.sessions.list()

    # ------------------------------------------------------------------
    # Introspection / lifecycle.
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Operational counters for the ``/stats`` endpoint."""
        if self._executor is None:
            executor_info: dict = {"kind": "inline", "n_jobs": self.n_jobs}
        else:
            executor_info = {
                "kind": self._executor.kind,
                "max_workers": self._executor.max_workers,
                "worker_pids": list(self._executor.worker_pids()),
            }
        return {
            "closed": self._closed,
            "node": self.node_id,
            "executor": executor_info,
            "batcher": self.batcher.stats(),
            "cache": self.cache.stats(),
            "sessions": self.sessions.stats(),
        }

    async def aclose(self) -> None:
        """Graceful shutdown: drain batches, close sessions, release the pool.

        Order matters for the leak guarantees: the batcher is closed first
        (in-flight batches finish on their worker threads, releasing every
        shared-memory segment they published), then sessions, then — only
        once nothing can submit new work — the owned executor pool is shut
        down, reaping its worker processes. Idempotent.
        """
        self._closed = True
        await self.batcher.aclose()
        await self.sessions.aclose()
        if self._executor is not None and self._owns_executor:
            await asyncio.to_thread(self._executor.close)

    async def __aenter__(self) -> "DetectService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
