"""Versioned session snapshots: wire encoding and pluggable stores.

The distributed-state layer of the serving tier rests on two small pieces:

- :func:`encode_snapshot` / :func:`decode_snapshot` — a self-describing
  container for the state dict
  :meth:`~repro.core.streaming.StreamingEnsembleDetector.snapshot` returns:
  a zip archive holding ``manifest.json`` (every JSON scalar) plus one
  ``.npy`` entry per numpy array, referenced from the manifest by path.
  Floats ride in the arrays' native binary representation, so a decoded
  snapshot restores **bitwise identical** detector state — the property the
  crash-recovery contract ("resume elsewhere with identical detections")
  reduces to. The container itself is versioned independently of the state
  structure; either version mismatching raises a clear
  :class:`~repro.core.streaming.SnapshotVersionError` instead of garbage.

- :class:`SnapshotStore` — where encoded snapshots live.
  :class:`LocalSnapshotStore` keeps them under a directory (one
  subdirectory per session, monotonically numbered, pruned to the newest
  few); serve nodes sharing one such directory (or any future object-store
  implementation of the same five methods) give the router a recovery
  substrate: any surviving node can restore any session's latest snapshot.
"""

from __future__ import annotations

import io
import json
import os
import re
import zipfile
from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

from repro.core.streaming import SnapshotVersionError

__all__ = [
    "CONTAINER_VERSION",
    "LocalSnapshotStore",
    "SnapshotStore",
    "decode_snapshot",
    "encode_snapshot",
]

#: Version of the zip container layout (independent of the detector-state
#: structure version stamped inside the state dict itself).
CONTAINER_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_ARRAY_KEY = "__ndarray__"
_NONE_KEY = "__none__"

#: Store-level session-name guard: path-safe and never a traversal token.
_STORE_NAME = re.compile(r"^(?!\.\.?$)[A-Za-z0-9._-]{1,64}$")


def _strip(value, arrays: list[np.ndarray]):
    """Replace numpy arrays in a JSON-ish tree by manifest references."""
    if isinstance(value, np.ndarray):
        arrays.append(value)
        return {_ARRAY_KEY: len(arrays) - 1}
    if isinstance(value, dict):
        return {key: _strip(item, arrays) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_strip(item, arrays) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _restore(value, arrays: dict[int, np.ndarray]):
    """Inverse of :func:`_strip`: swap references back for their arrays."""
    if isinstance(value, dict):
        if set(value) == {_ARRAY_KEY}:
            return arrays[int(value[_ARRAY_KEY])]
        return {key: _restore(item, arrays) for key, item in value.items()}
    if isinstance(value, list):
        return [_restore(item, arrays) for item in value]
    return value


def encode_snapshot(state: dict) -> bytes:
    """Serialize a snapshot state dict into the versioned zip container."""
    arrays: list[np.ndarray] = []
    manifest = {"container_version": CONTAINER_VERSION, "state": _strip(state, arrays)}
    buffer = io.BytesIO()
    # Deflate trades a little CPU for much smaller stored/transferred
    # snapshots (token-id and offset arrays compress well).
    with zipfile.ZipFile(buffer, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        archive.writestr(_MANIFEST_NAME, json.dumps(manifest))
        for index, array in enumerate(arrays):
            payload = io.BytesIO()
            np.save(payload, np.ascontiguousarray(array), allow_pickle=False)
            archive.writestr(f"arrays/{index}.npy", payload.getvalue())
    return buffer.getvalue()


def decode_snapshot(data: bytes) -> dict:
    """Parse a container produced by :func:`encode_snapshot`.

    Raises :class:`~repro.core.streaming.SnapshotVersionError` on a
    malformed or version-skewed container — corrupt or future snapshots are
    rejected loudly, never partially restored.
    """
    try:
        with zipfile.ZipFile(io.BytesIO(data)) as archive:
            manifest = json.loads(archive.read(_MANIFEST_NAME))
            version = manifest.get("container_version")
            if version != CONTAINER_VERSION:
                raise SnapshotVersionError(
                    f"snapshot container version {version!r} is not supported "
                    f"by this build (supports {CONTAINER_VERSION})"
                )
            arrays = {
                int(name[len("arrays/") : -len(".npy")]): np.load(
                    io.BytesIO(archive.read(name)), allow_pickle=False
                )
                for name in archive.namelist()
                if name.startswith("arrays/") and name.endswith(".npy")
            }
    except SnapshotVersionError:
        raise
    except (zipfile.BadZipFile, KeyError, json.JSONDecodeError, ValueError) as error:
        raise SnapshotVersionError(f"not a readable snapshot container: {error}") from error
    return _restore(manifest["state"], arrays)


class SnapshotStore(ABC):
    """Durable home of encoded session snapshots.

    The interface is deliberately tiny — save/latest/list/delete keyed by
    ``(session, seq)`` — so an object-store implementation (S3-style
    put/get/list/delete) slots in without touching the serving layer.
    ``seq`` is a per-session monotone checkpoint number; ``latest`` returns
    the highest one.
    """

    @abstractmethod
    def save(self, session: str, seq: int, data: bytes) -> None:
        """Durably store snapshot ``seq`` of ``session``."""

    @abstractmethod
    def latest(self, session: str) -> tuple[int, bytes] | None:
        """Newest stored ``(seq, data)`` of ``session``, or ``None``."""

    @abstractmethod
    def seqs(self, session: str) -> list[int]:
        """Stored checkpoint numbers of ``session``, ascending."""

    @abstractmethod
    def delete(self, session: str) -> int:
        """Drop every snapshot of ``session``; returns how many existed."""


def _check_store_name(session: str) -> str:
    if not isinstance(session, str) or not _STORE_NAME.match(session):
        raise ValueError(f"invalid snapshot session name {session!r}")
    return session


class LocalSnapshotStore(SnapshotStore):
    """Filesystem store: ``root/<session>/<seq>.snap``, atomic, pruned.

    Writes go through a temp file + ``os.replace`` so a crash mid-write can
    never leave a truncated snapshot where ``latest`` would find it, and
    only the newest ``keep`` checkpoints per session are retained. Several
    serve nodes may point at one shared directory (network filesystem) —
    that shared root is what lets a router restore a dead node's sessions
    on the survivors.
    """

    def __init__(self, root: str | os.PathLike, *, keep: int = 2) -> None:
        keep = int(keep)
        if keep < 1:
            raise ValueError(f"keep must be a positive integer, got {keep}")
        self.root = Path(root)
        self.keep = keep
        self.root.mkdir(parents=True, exist_ok=True)

    def _session_dir(self, session: str) -> Path:
        return self.root / _check_store_name(session)

    def _paths(self, session: str) -> list[tuple[int, Path]]:
        directory = self._session_dir(session)
        if not directory.is_dir():
            return []
        found = []
        for path in directory.glob("*.snap"):
            try:
                found.append((int(path.stem), path))
            except ValueError:  # pragma: no cover — foreign file in the dir
                continue
        return sorted(found)

    def save(self, session: str, seq: int, data: bytes) -> None:
        seq = int(seq)
        if seq < 0:
            raise ValueError(f"seq must be non-negative, got {seq}")
        directory = self._session_dir(session)
        directory.mkdir(parents=True, exist_ok=True)
        final = directory / f"{seq:012d}.snap"
        temporary = directory / f".{seq:012d}.{os.getpid()}.tmp"
        temporary.write_bytes(data)
        os.replace(temporary, final)
        for old_seq, path in self._paths(session)[: -self.keep]:
            if old_seq != seq:
                path.unlink(missing_ok=True)

    def latest(self, session: str) -> tuple[int, bytes] | None:
        for seq, path in reversed(self._paths(session)):
            try:
                return seq, path.read_bytes()
            except OSError:  # pragma: no cover — pruned concurrently
                continue
        return None

    def seqs(self, session: str) -> list[int]:
        return [seq for seq, _path in self._paths(session)]

    def delete(self, session: str) -> int:
        paths = self._paths(session)
        for _seq, path in paths:
            path.unlink(missing_ok=True)
        directory = self._session_dir(session)
        if directory.is_dir():
            try:
                directory.rmdir()
            except OSError:  # pragma: no cover — new snapshot raced in
                pass
        return len(paths)
