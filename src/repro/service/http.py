"""Thin asyncio HTTP/1.1 front end over :class:`~repro.service.core.DetectService`.

Pure stdlib (``asyncio.start_server`` + ``json``) — the library adds no
server dependency; the front end is deliberately minimal (JSON in/out,
keep-alive, content-length bodies) and every behaviour that matters lives
in the transport-agnostic core where it is unit-tested directly.

Endpoints (v1)
--------------
The canonical surface lives under ``/v1``; every route is also reachable
without the prefix as a **deprecated alias** (answered with a
``Deprecation: true`` header) so pre-v1 clients keep working.

==========  ==================================  ===================================
Method      Path                                Meaning
==========  ==================================  ===================================
GET         ``/v1/healthz``                     liveness probe
GET         ``/v1/stats``                       batcher/cache/session/executor counters
GET         ``/v1/metrics``                     Prometheus text exposition (registry +
                                                ``stats()`` re-exported as gauges)
GET         ``/v1/nodes``                       this node's identity (router: all nodes)
POST        ``/v1/detect``                      one series; micro-batched + cached
POST        ``/v1/detect_batch``                many series; partial results on failure
GET         ``/v1/sessions``                    list live streaming sessions
POST        ``/v1/sessions``                    create a named streaming session
GET         ``/v1/sessions/{name}``             one session's info document
POST        ``/v1/sessions/{name}/append``      feed a chunk into a session
GET/POST    ``/v1/sessions/{name}/anomalies``   ranked anomalies (``?k=3`` / body ``k``;
                                                alias ``/poll``)
POST        ``/v1/sessions/{name}/snapshot``    checkpoint the session now
POST        ``/v1/sessions/{name}/restore``     bring it back from the latest snapshot
DELETE      ``/v1/sessions/{name}``             close (``?keep_snapshots=1`` for
                                                migration semantics)
==========  ==================================  ===================================

Errors use one uniform envelope —
``{"error": {"code", "message"[, "retry_after"]}}`` — and retryable
failures (429/503/507) also carry a ``Retry-After`` header. A name that
*was* a session answers 410 (``session-gone``), distinct from the 404 a
never-created name gets.

Request/response floats survive bitwise: ``json`` serializes via
``float.__repr__`` (shortest round-tripping form), so a served score
compares equal to the directly computed one.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import os
import signal
import time
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from repro.core.executors import BatchItemError
from repro.obs.context import bind_request_id, ensure_request_id
from repro.obs.expfmt import EXPOSITION_CONTENT_TYPE, render_registry
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY, stats_families
from repro.service.core import DetectService
from repro.service.errors import BadRequest, ServiceError, error_payload

__all__ = ["BaseHTTPServer", "ServiceHTTPServer", "serve"]

_log = get_logger("service.http")

#: Requests slower than this (seconds) get a WARNING log line; the CLI
#: ``--slow-request-ms`` flag and ``REPRO_SLOW_REQUEST_MS`` override it.
DEFAULT_SLOW_REQUEST_SECONDS = 1.0

_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by role/method/normalized path/status",
    labelnames=("role", "method", "path", "status"),
)
_LATENCY = REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request latency in seconds, by role/method/normalized path",
    labelnames=("role", "method", "path"),
)

#: First path segments with bounded cardinality; anything else (scanner
#: noise, typos) is folded into ``other`` so the label set stays small.
_KNOWN_SEGMENTS = frozenset(
    ("healthz", "stats", "nodes", "metrics", "detect", "detect_batch", "sessions")
)


def _metric_path(path: str) -> str:
    """Normalize a request path for metric labels (bounded cardinality)."""
    sub = path[len("/v1") :] or "/" if path == "/v1" or path.startswith("/v1/") else path
    segments = [segment for segment in sub.split("/") if segment]
    if not segments or segments[0] not in _KNOWN_SEGMENTS:
        return "other"
    if segments[0] == "sessions" and len(segments) >= 2:
        segments[1] = "{name}"
    return "/" + "/".join(segments[:3])

#: Largest accepted request body (a 64 MiB JSON series is ~4M points).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Header lines accepted per request (past this the request is rejected).
MAX_HEADER_COUNT = 256

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    507: "Insufficient Storage",
}

#: Detector-configuration keys a detect request may carry (everything else
#: in the body is rejected, catching typos early).
CONFIG_KEYS = (
    "window",
    "max_paa_size",
    "max_alphabet_size",
    "ensemble_size",
    "selectivity",
    "combiner",
    "numerosity",
    "znorm_threshold",
)

#: Session-configuration keys accepted by ``POST /sessions``.
SESSION_CONFIG_KEYS = CONFIG_KEYS + ("capacity", "policy", "segments", "seed")


class _HttpError(Exception):
    """Protocol-level failure mapped straight to a status/body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _split_config(payload: dict, allowed: tuple[str, ...], reserved: tuple[str, ...]) -> dict:
    """Extract detector config keys from a request body; reject strays."""
    config = {key: payload[key] for key in allowed if key in payload}
    strays = set(payload) - set(allowed) - set(reserved)
    if strays:
        raise BadRequest(f"unknown request field(s): {sorted(strays)}")
    return config


class BaseHTTPServer:
    """Connection handling + request parsing shared by every front end.

    Subclasses implement :meth:`_route` (and their handlers); the base owns
    the asyncio server lifecycle, HTTP/1.1 parsing with bounded headers and
    bodies, the uniform error envelope, keep-alive, and response writing.
    The router front end (:mod:`repro.service.router`) reuses all of it.
    """

    #: Metric label distinguishing the front ends sharing one registry.
    metrics_role = "serve"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        slow_request_ms: float | None = None,
    ) -> None:
        self.host = host
        self.port = port
        if slow_request_ms is None:
            slow_request_ms = float(
                os.environ.get("REPRO_SLOW_REQUEST_MS", DEFAULT_SLOW_REQUEST_SECONDS * 1000.0)
            )
        self.slow_request_seconds = slow_request_ms / 1000.0
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> None:
        """Bind and start accepting; ``port=0`` resolves to the bound port."""
        self._server = await asyncio.start_server(self._client_connected, self.host, self.port)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        """Stop accepting, then drop connections parked between requests."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    def _client_connected(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.get_running_loop().create_task(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as error:
                    await self._respond(
                        writer,
                        error.status,
                        {"error": {"code": "http", "message": str(error)}},
                        keep_alive=False,
                    )
                    return
                except (ValueError, asyncio.LimitOverrunError):
                    # A request or header line over the StreamReader limit
                    # (64 KiB) surfaces as ValueError from readline();
                    # answer with a status instead of dropping the socket.
                    await self._respond(
                        writer,
                        431,
                        {
                            "error": {
                                "code": "http",
                                "message": "request line or header section too large",
                            }
                        },
                        keep_alive=False,
                    )
                    return
                if request is None:
                    return
                method, path, query, payload, keep_alive, req_headers = request
                request_id = ensure_request_id(req_headers.get("x-request-id"))
                started = time.perf_counter()
                with bind_request_id(request_id):
                    status, body, headers = await self._dispatch(method, path, query, payload)
                    elapsed = time.perf_counter() - started
                    headers.setdefault("X-Request-Id", request_id)
                    label_path = _metric_path(path)
                    _REQUESTS.labels(self.metrics_role, method, label_path, status).inc()
                    _LATENCY.labels(self.metrics_role, method, label_path).observe(elapsed)
                    log = _log.warning if elapsed >= self.slow_request_seconds else _log.info
                    log(
                        "%s %s -> %d in %.1f ms%s",
                        method,
                        path,
                        status,
                        elapsed * 1000.0,
                        " (slow)" if elapsed >= self.slow_request_seconds else "",
                        extra={
                            "role": self.metrics_role,
                            "method": method,
                            "path": path,
                            "status": status,
                            "duration_ms": round(elapsed * 1000.0, 3),
                        },
                    )
                await self._respond(writer, status, body, keep_alive=keep_alive, headers=headers)
                if not keep_alive:
                    return
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):  # client went away mid-request/response
            return
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` on a cleanly closed connection."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= MAX_HEADER_COUNT:
                raise _HttpError(431, f"more than {MAX_HEADER_COUNT} header lines")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        payload: Any = None
        if body:
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as error:
                raise _HttpError(400, f"request body is not valid JSON: {error}") from None
        parts = urlsplit(target)
        query = {key: values[-1] for key, values in parse_qs(parts.query).items()}
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        return method.upper(), parts.path, query, payload, keep_alive, headers

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, query: dict, payload
    ) -> tuple[int, dict, dict]:
        headers: dict[str, str] = {}
        try:
            handler, args, deprecated = self._route(method, path)
            if deprecated:
                # Legacy (pre-/v1) alias: still served, but flagged so
                # clients can find the canonical path before it goes away.
                headers["Deprecation"] = "true"
            status, body = await handler(payload, query, *args)
            return status, body, headers
        except ServiceError as error:
            if error.retry_after is not None:
                headers["Retry-After"] = str(max(1, math.ceil(error.retry_after)))
            return error.status, error_payload(error), headers
        except BatchItemError as error:
            return 422, error_payload(error), headers
        except (ValueError, TypeError, KeyError) as error:
            return 400, error_payload(BadRequest(str(error))), headers
        except asyncio.CancelledError:
            raise
        except Exception as error:
            # Last-resort guard: even a handler bug answers with the
            # uniform envelope, and the traceback lands in the log with
            # the request id so it can be correlated with the response.
            _log.exception(
                "unhandled error in %s %s handler: %s",
                method,
                path,
                error,
                extra={"method": method, "path": path},
            )
            body = {
                "error": {
                    "code": "internal",
                    "message": f"{type(error).__name__}: {error}",
                }
            }
            return 500, body, headers

    def _route(self, method: str, path: str) -> tuple[Callable, tuple, bool]:
        raise NotImplementedError  # pragma: no cover — subclasses route

    @staticmethod
    def _split_version(path: str) -> tuple[str, bool]:
        """Strip the ``/v1`` prefix; returns ``(sub_path, deprecated)``."""
        if path == "/v1" or path.startswith("/v1/"):
            return path[len("/v1") :] or "/", False
        return path, True

    @staticmethod
    def _require_object(payload) -> dict:
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    @staticmethod
    def _query_flag(query: dict, key: str) -> bool:
        return query.get(key, "").lower() in ("1", "true", "yes")

    # ------------------------------------------------------------------
    # Response writing.
    # ------------------------------------------------------------------

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        body: dict | str,
        *,
        keep_alive: bool,
        headers: dict[str, str] | None = None,
    ) -> None:
        headers = dict(headers or {})
        if isinstance(body, str):
            # Non-JSON payload: only the /metrics exposition text today.
            data = body.encode("utf-8")
            content_type = headers.pop("Content-Type", EXPOSITION_CONTENT_TYPE)
        else:
            data = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        extra = "".join(f"{name}: {value}\r\n" for name, value in headers.items())
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()


class ServiceHTTPServer(BaseHTTPServer):
    """One bound HTTP server over a :class:`DetectService`."""

    def __init__(
        self,
        service: DetectService,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        slow_request_ms: float | None = None,
    ) -> None:
        super().__init__(host, port, slow_request_ms=slow_request_ms)
        self.service = service

    def _route(self, method: str, path: str) -> tuple[Callable, tuple, bool]:
        """Resolve ``(handler, args, deprecated)`` for a request path.

        ``/v1/...`` is the canonical surface; the same routes without the
        prefix are deprecated aliases kept for pre-v1 clients.
        """
        path, deprecated = self._split_version(path)
        segments = [segment for segment in path.split("/") if segment]
        if path == "/healthz" and method == "GET":
            return self._handle_healthz, (), deprecated
        if path == "/stats" and method == "GET":
            return self._handle_stats, (), deprecated
        if path == "/metrics" and method == "GET":
            return self._handle_metrics, (), deprecated
        if path == "/nodes" and method == "GET":
            return self._handle_nodes, (), deprecated
        if path == "/detect" and method == "POST":
            return self._handle_detect, (), deprecated
        if path == "/detect_batch" and method == "POST":
            return self._handle_detect_batch, (), deprecated
        if path == "/sessions":
            if method == "GET":
                return self._handle_sessions_list, (), deprecated
            if method == "POST":
                return self._handle_session_create, (), deprecated
            raise _MethodNotAllowed()
        if len(segments) == 2 and segments[0] == "sessions":
            if method == "DELETE":
                return self._handle_session_close, (segments[1],), deprecated
            if method == "GET":
                return self._handle_session_get, (segments[1],), deprecated
            raise _MethodNotAllowed()
        if len(segments) == 3 and segments[0] == "sessions":
            name, action = segments[1], segments[2]
            if action == "append" and method == "POST":
                return self._handle_session_append, (name,), deprecated
            if action in ("anomalies", "poll") and method in ("GET", "POST"):
                return self._handle_session_poll, (name,), deprecated
            if action == "snapshot" and method == "POST":
                return self._handle_session_snapshot, (name,), deprecated
            if action == "restore" and method == "POST":
                return self._handle_session_restore, (name,), deprecated
        raise _NotFound(method, path)

    # ------------------------------------------------------------------
    # Handlers.
    # ------------------------------------------------------------------

    async def _handle_healthz(self, payload, query) -> tuple[int, dict]:
        return 200, {"status": "ok"}

    async def _handle_stats(self, payload, query) -> tuple[int, dict]:
        return 200, self.service.stats()

    async def _handle_metrics(self, payload, query) -> tuple[int, str]:
        """Prometheus text exposition: registry + stats() gauges."""
        extra = stats_families("repro_service", self.service.stats())
        return 200, render_registry(REGISTRY, extra)

    async def _handle_nodes(self, payload, query) -> tuple[int, dict]:

        """This node's identity document (a router answers with its fleet)."""
        return 200, {
            "nodes": [
                {
                    "node": self.service.node_id,
                    "role": "serve",
                    "alive": True,
                    "sessions": len(self.service.sessions),
                }
            ]
        }

    async def _handle_detect(self, payload, query) -> tuple[int, dict]:
        payload = self._require_object(payload)
        if "series" not in payload:
            raise BadRequest("missing required field 'series'")
        config = _split_config(
            payload, CONFIG_KEYS, ("series", "k", "seed", "timeout", "timings")
        )
        if "window" not in config:
            raise BadRequest("missing required field 'window'")
        kwargs: dict = {}
        if "timeout" in payload and payload["timeout"] is not None:
            kwargs["timeout"] = float(payload["timeout"])
        result = await self.service.detect(
            payload["series"],
            k=payload.get("k", 3),
            seed=payload.get("seed", 0),
            timings=bool(payload.get("timings", False)),
            **kwargs,
            **config,
        )
        return 200, result.payload()

    async def _handle_detect_batch(self, payload, query) -> tuple[int, dict]:
        payload = self._require_object(payload)
        series_list = payload.get("series")
        if not isinstance(series_list, list) or not series_list:
            raise BadRequest("'series' must be a non-empty list of series arrays")
        config = _split_config(payload, CONFIG_KEYS, ("series", "k", "seed", "timeout"))
        if "window" not in config:
            raise BadRequest("missing required field 'window'")
        kwargs = {}
        if "timeout" in payload and payload["timeout"] is not None:
            kwargs["timeout"] = float(payload["timeout"])
        results = await self.service.detect_many(
            series_list,
            k=payload.get("k", 3),
            seed=payload.get("seed", 0),
            **kwargs,
            **config,
        )
        documents = []
        failed = 0
        for result in results:
            if isinstance(result, BatchItemError):
                failed += 1
                documents.append(error_payload(result))
            else:
                documents.append(result.payload())
        return 200, {"results": documents, "failed": failed}

    async def _handle_sessions_list(self, payload, query) -> tuple[int, dict]:
        return 200, {"sessions": self.service.list_sessions()}

    async def _handle_session_create(self, payload, query) -> tuple[int, dict]:
        payload = self._require_object(payload)
        name = payload.get("name")
        if not isinstance(name, str):
            raise BadRequest("missing required string field 'name'")
        config = _split_config(payload, SESSION_CONFIG_KEYS, ("name",))
        if "window" not in config:
            raise BadRequest("missing required field 'window'")
        return 200, await self.service.create_session(name, **config)

    async def _handle_session_append(self, payload, query, name: str) -> tuple[int, dict]:
        payload = self._require_object(payload)
        values = payload.get("values")
        if not isinstance(values, list) or not values:
            raise BadRequest("'values' must be a non-empty list of numbers")
        return 200, await self.service.append(name, values)

    async def _handle_session_poll(self, payload, query, name: str) -> tuple[int, dict]:
        k = 3
        if isinstance(payload, dict) and "k" in payload:
            k = payload["k"]
        elif "k" in query:
            k = query["k"]
        return 200, await self.service.poll(name, int(k))

    async def _handle_session_get(self, payload, query, name: str) -> tuple[int, dict]:
        return 200, self.service.session_info(name)

    async def _handle_session_snapshot(self, payload, query, name: str) -> tuple[int, dict]:
        return 200, await self.service.snapshot_session(name)

    async def _handle_session_restore(self, payload, query, name: str) -> tuple[int, dict]:
        return 200, await self.service.restore_session(name)

    async def _handle_session_close(self, payload, query, name: str) -> tuple[int, dict]:
        keep = self._query_flag(query, "keep_snapshots")
        reason = query.get("reason", "migrated" if keep else "closed")
        if reason not in ("closed", "migrated", "evicted"):
            raise BadRequest(f"invalid close reason {reason!r}")
        info = await self.service.close_session(name, drop_snapshots=not keep, reason=reason)
        return 200, {"closed": info}


class _NotFound(ServiceError):
    status = 404
    code = "not-found"

    def __init__(self, method: str, path: str) -> None:
        super().__init__(f"no route for {method} {path}")


class _MethodNotAllowed(ServiceError):
    status = 405
    code = "method-not-allowed"

    def __init__(self) -> None:
        super().__init__("method not allowed on this path")


async def serve(
    service: DetectService,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    ready: Callable[["ServiceHTTPServer"], None] | None = None,
    slow_request_ms: float | None = None,
) -> None:
    """Run the HTTP front end until SIGTERM/SIGINT, then shut down gracefully.

    Graceful means leak-free: stop accepting, drain in-flight micro-batches
    (their worker threads release every shared-memory segment), close all
    streaming sessions, shut the executor pool down (reaping its worker
    processes), and only then return. ``ready`` is called once the socket
    is bound — the CLI uses it to print the resolved address.
    """
    server = ServiceHTTPServer(service, host, port, slow_request_ms=slow_request_ms)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    registered: list[signal.Signals] = []
    for signame in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signame, stop.set)
            registered.append(signame)
        except (NotImplementedError, RuntimeError):  # pragma: no cover — non-Unix
            pass
    try:
        if ready is not None:
            ready(server)
        await stop.wait()
    finally:
        for signame in registered:
            loop.remove_signal_handler(signame)
        await server.aclose()
        await service.aclose()
