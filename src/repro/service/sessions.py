"""Multi-tenant streaming sessions: many named detectors, one process.

A *session* is one live
:class:`~repro.core.streaming.StreamingEnsembleDetector` hosted under a
caller-chosen name, fed incrementally through ``append`` and queried
through ``poll``. The manager hosts many such sessions at once — the
deployment shape where one serving process watches thousands of independent
feeds — and enforces the global resource policies a long-lived multi-tenant
process needs:

- **Capacity** — at most ``max_sessions`` live sessions; creating more
  fails with 409/429-style errors rather than growing unboundedly.
- **Idle eviction** — sessions untouched for ``idle_timeout`` seconds are
  closed by a background reaper, so abandoned tenants release their memory.
- **Memory budget** — the summed
  :meth:`~repro.core.streaming.StreamingEnsembleDetector.memory_bytes`
  estimate across live sessions is kept under ``memory_budget`` bytes:
  session creation and appends that would blow the budget are rejected
  with :class:`~repro.service.errors.MemoryBudgetExceeded`. Bounded
  sessions (``capacity=``, PR 3) have flat retention, so the budget chiefly
  polices unbounded ones.
- **Durability** — with a :class:`~repro.service.snapshot.SnapshotStore`
  attached, sessions are checkpointed every ``snapshot_interval`` appended
  points (plus on demand, on idle eviction, and on graceful shutdown), and
  :meth:`restore` brings a session back from its latest snapshot with
  bitwise-identical future detections — on this node or, with a shared
  store, on any other node (crash recovery and migration).

Closed, evicted, and migrated names leave *tombstones*: touching one
answers :class:`~repro.service.errors.SessionGone` (410 — "this existed
and is gone, recreate or restore it") instead of the 404 a never-created
name gets.

Per-session operations are serialized by an ``asyncio.Lock`` (appends and
polls on *different* sessions overlap freely; the heavy work runs on worker
threads), and results are bitwise identical to driving the same
``StreamingEnsembleDetector`` directly — the session *is* that detector.
"""

from __future__ import annotations

import asyncio
import itertools
import re
from typing import Any

import numpy as np

from repro.core.executors import MemberExecutor
from repro.core.streaming import SnapshotVersionError, StreamingEnsembleDetector
from repro.obs.logging import get_logger
from repro.service.cache import LRUCache
from repro.service.config import DetectorConfig
from repro.service.errors import (
    BadRequest,
    MemoryBudgetExceeded,
    ServiceClosed,
    ServiceOverloaded,
    SessionExists,
    SessionGone,
    SessionNotFound,
)
from repro.service.snapshot import SnapshotStore, decode_snapshot, encode_snapshot

__all__ = ["StreamSessionManager"]

#: Session names must be URL-path-safe (they appear in endpoint paths).
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

_log = get_logger("service.sessions")

#: How many departed names keep a tombstone (FIFO-capped so a churny
#: tenant cannot grow the map without bound; the oldest fall back to 404).
_TOMBSTONE_CAP = 256

_session_epochs = itertools.count()


def _anomalies_payload(anomalies) -> list[dict]:
    """JSON-shaped ranked candidates (scores round-trip bitwise via repr)."""
    return [
        {"rank": a.rank, "position": a.position, "length": a.length, "score": a.score}
        for a in anomalies
    ]


class _Session:
    """One live streaming session (a detector plus bookkeeping)."""

    __slots__ = (
        "name",
        "detector",
        "config",
        "lock",
        "epoch",
        "created_at",
        "last_used",
        "appended",
        "polls",
        "snapshot_seq",
        "snapshotted_length",
        "snapshots",
    )

    def __init__(
        self, name: str, detector: StreamingEnsembleDetector, config: DetectorConfig
    ) -> None:
        self.name = name
        self.detector = detector
        self.config = config
        self.lock = asyncio.Lock()
        #: Distinguishes reincarnations of one name in cache keys.
        self.epoch = next(_session_epochs)
        loop = asyncio.get_running_loop()
        self.created_at = loop.time()
        self.last_used = self.created_at
        self.appended = 0
        self.polls = 0
        #: Last checkpoint number written (0 = none yet) and the stream
        #: length it covered — clients replay only the tail past this.
        self.snapshot_seq = 0
        self.snapshotted_length = 0
        self.snapshots = 0

    def info(self) -> dict:
        detector = self.detector
        return {
            "name": self.name,
            "config": self.config.to_json(),
            "length": len(detector),
            "appended": self.appended,
            "polls": self.polls,
            "horizon_start": detector.horizon_start,
            "live_length": detector.state.live_length,
            "bounded": detector.bounded,
            "version": detector.state.version,
            "memory_bytes": detector.memory_bytes(),
            "snapshot_seq": self.snapshot_seq,
            "snapshotted_length": self.snapshotted_length,
        }


class StreamSessionManager:
    """Host and police many named streaming sessions.

    Parameters
    ----------
    max_sessions:
        Live-session cap.
    idle_timeout:
        Seconds of inactivity before the reaper evicts a session
        (``None`` disables idle eviction).
    memory_budget:
        Global byte budget across all live sessions (``None`` = unlimited),
        accounted with the detectors' O(1) ``memory_bytes()`` estimates.
    executor:
        Optional shared :class:`~repro.core.executors.MemberExecutor` given
        to every session's detector for snapshot fan-out. Borrowed, never
        closed here.
    cache:
        Optional :class:`~repro.service.cache.LRUCache` for poll responses,
        keyed by ``(session epoch, stream version, k)`` — a poll with no
        new data since the last one is answered without touching the
        detector at all.
    snapshot_store:
        Optional :class:`~repro.service.snapshot.SnapshotStore` holding
        session checkpoints. Without one, :meth:`snapshot`/:meth:`restore`
        answer 400 and nothing is persisted.
    snapshot_interval:
        Checkpoint automatically once a session grows this many points past
        its last checkpoint (``None`` = only on demand / evict / shutdown).
    """

    def __init__(
        self,
        *,
        max_sessions: int = 64,
        idle_timeout: float | None = None,
        memory_budget: int | None = None,
        executor: MemberExecutor | None = None,
        cache: LRUCache | None = None,
        snapshot_store: SnapshotStore | None = None,
        snapshot_interval: int | None = None,
    ) -> None:
        max_sessions = int(max_sessions)
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be positive, got {max_sessions}")
        if idle_timeout is not None:
            idle_timeout = float(idle_timeout)
            if idle_timeout <= 0:
                raise ValueError(f"idle_timeout must be positive, got {idle_timeout}")
        if memory_budget is not None:
            memory_budget = int(memory_budget)
            if memory_budget < 1:
                raise ValueError(f"memory_budget must be positive, got {memory_budget}")
        if snapshot_interval is not None:
            snapshot_interval = int(snapshot_interval)
            if snapshot_interval < 1:
                raise ValueError(f"snapshot_interval must be positive, got {snapshot_interval}")
        self.max_sessions = max_sessions
        self.idle_timeout = idle_timeout
        self.memory_budget = memory_budget
        self.snapshot_interval = snapshot_interval
        self._executor = executor
        self._cache = cache
        self._snapshot_store = snapshot_store
        self._sessions: dict[str, _Session] = {}
        self._tombstones: dict[str, str] = {}
        self._reaper: asyncio.Task | None = None
        self._closed = False
        self.evicted_idle = 0
        self.snapshots_written = 0

    # ------------------------------------------------------------------
    # Lookup / accounting.
    # ------------------------------------------------------------------

    def _get(self, name: str) -> _Session:
        try:
            return self._sessions[name]
        except KeyError:
            reason = self._tombstones.get(name)
            if reason is not None:
                raise SessionGone(f"streaming session {name!r} was {reason}") from None
            raise SessionNotFound(f"no streaming session named {name!r}") from None

    def _check_still_registered(self, name: str, session: _Session) -> None:
        """Re-validate after acquiring a session lock.

        A close/evict racing this request may have won the lock first and
        removed the session; operating on the orphaned detector would
        silently discard the caller's data behind a 200. The identity check
        also refuses a same-named session created in between.
        """
        if self._sessions.get(name) is not session:
            reason = self._tombstones.get(name)
            if name not in self._sessions and reason is not None:
                raise SessionGone(f"streaming session {name!r} was {reason}")
            raise SessionNotFound(f"streaming session {name!r} was closed")

    def _tombstone(self, name: str, reason: str) -> None:
        self._tombstones.pop(name, None)
        self._tombstones[name] = reason
        while len(self._tombstones) > _TOMBSTONE_CAP:
            self._tombstones.pop(next(iter(self._tombstones)))

    def memory_used(self) -> int:
        """Summed memory estimate of every live session (bytes)."""
        return sum(session.detector.memory_bytes() for session in self._sessions.values())

    def _check_admission(self, verb: str) -> None:
        """Shared create/restore admission control (capacity and budget)."""
        if self._closed:
            raise ServiceClosed("service is shutting down")
        if len(self._sessions) >= self.max_sessions:
            raise ServiceOverloaded(
                f"{len(self._sessions)} live sessions (limit {self.max_sessions}); "
                f"cannot {verb} another"
            )
        if self.memory_budget is not None and self.memory_used() >= self.memory_budget:
            raise MemoryBudgetExceeded(
                f"session memory budget exhausted ({self.memory_used()} of "
                f"{self.memory_budget} bytes in use)"
            )

    def __len__(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------------
    # Session lifecycle.
    # ------------------------------------------------------------------

    async def create(self, name: str, **config: Any) -> dict:
        """Create a named session; returns its info document.

        ``config`` is canonicalized through
        :class:`~repro.service.config.DetectorConfig` (window, ensemble
        parameters, ``capacity``/``policy``/``segments`` for bounded
        retention, ``seed``); unknown or invalid parameters surface as
        :class:`~repro.service.errors.BadRequest`. Stale snapshots left by
        an earlier same-named session are dropped — a create means a fresh
        stream, not a resumption (that is :meth:`restore`).
        """
        if not isinstance(name, str) or not _NAME_PATTERN.match(name):
            raise BadRequest(
                "session names must be 1-64 characters from [A-Za-z0-9._-], "
                f"got {name!r}"
            )
        if name in self._sessions:
            raise SessionExists(f"streaming session {name!r} already exists")
        self._check_admission("create")
        try:
            parsed = DetectorConfig.from_mapping(dict(config))
            detector = StreamingEnsembleDetector(
                executor=self._executor, **parsed.session_kwargs()
            )
        except (ValueError, TypeError) as error:
            raise BadRequest(f"invalid session configuration: {error}") from error
        if self._snapshot_store is not None:
            await asyncio.to_thread(self._snapshot_store.delete, name)
        session = _Session(name, detector, parsed)
        self._sessions[name] = session
        self._tombstones.pop(name, None)
        self._ensure_reaper()
        _log.info("session %s created", name, extra={"session": name})
        return session.info()

    def _drop_locked(
        self, name: str, session: _Session, *, reason: str, drop_snapshots: bool
    ) -> dict:
        """Unregister a session (its lock held) and leave a tombstone."""
        self._sessions.pop(name, None)
        info = session.info()
        session.detector.close()
        self._tombstone(name, reason)
        if drop_snapshots and self._snapshot_store is not None:
            self._snapshot_store.delete(name)
        info["closed"] = reason
        _log.info(
            "session %s dropped (%s) at length %d",
            name,
            reason,
            info.get("length", 0),
            extra={"session": name, "reason": reason},
        )
        return info

    async def close(self, name: str, *, drop_snapshots: bool = True, reason: str = "closed") -> dict:
        """Close and drop one session; returns its final info document.

        ``drop_snapshots=False`` keeps stored checkpoints so the session can
        be :meth:`restore`-d later (here or on another node sharing the
        store) — the migration half of a move is exactly ``snapshot`` +
        ``close(drop_snapshots=False, reason="migrated")``.
        """
        session = self._get(name)
        async with session.lock:
            self._check_still_registered(name, session)
            return self._drop_locked(name, session, reason=reason, drop_snapshots=drop_snapshots)

    async def aclose(self) -> None:
        """Checkpoint and close every session, stop the reaper (idempotent).

        Snapshots are *kept*: a graceful shutdown leaves every session
        restorable, which is what lets a restarted (or replacement) node
        pick the streams back up.
        """
        self._closed = True
        reaper, self._reaper = self._reaper, None
        if reaper is not None:
            reaper.cancel()
            try:
                await reaper
            except asyncio.CancelledError:
                pass
        for name in list(self._sessions):
            session = self._sessions.get(name)
            if session is None:  # pragma: no cover — concurrent close
                continue
            async with session.lock:
                if self._sessions.get(name) is not session:  # pragma: no cover
                    continue
                if (
                    self._snapshot_store is not None
                    and len(session.detector) > session.snapshotted_length
                ):
                    try:
                        await self._checkpoint_locked(session)
                    except Exception:  # pragma: no cover — best effort
                        pass
                self._drop_locked(name, session, reason="closed", drop_snapshots=False)

    # ------------------------------------------------------------------
    # Snapshots.
    # ------------------------------------------------------------------

    def _require_store(self) -> SnapshotStore:
        if self._snapshot_store is None:
            raise BadRequest(
                "this node has no snapshot store configured (start it with "
                "--snapshot-dir to enable checkpoints)"
            )
        return self._snapshot_store

    async def _checkpoint_locked(self, session: _Session) -> dict:
        """Persist the session's current state (its lock must be held)."""
        store = self._snapshot_store
        seq = session.snapshot_seq + 1

        def _persist() -> int:
            data = encode_snapshot(session.detector.snapshot())
            store.save(session.name, seq, data)
            return len(data)

        size = await asyncio.to_thread(_persist)
        session.snapshot_seq = seq
        session.snapshotted_length = len(session.detector)
        session.snapshots += 1
        self.snapshots_written += 1
        _log.info(
            "session %s checkpointed: seq %d, %d bytes at length %d",
            session.name,
            seq,
            size,
            session.snapshotted_length,
            extra={"session": session.name, "snapshot_seq": seq, "snapshot_bytes": size},
        )
        return {
            "name": session.name,
            "snapshot_seq": seq,
            "snapshot_bytes": size,
            "snapshotted_length": session.snapshotted_length,
        }

    async def snapshot(self, name: str) -> dict:
        """Checkpoint one session on demand; returns the checkpoint record."""
        self._require_store()
        session = self._get(name)
        async with session.lock:
            self._check_still_registered(name, session)
            session.last_used = asyncio.get_running_loop().time()
            return await self._checkpoint_locked(session)

    async def restore(self, name: str) -> dict:
        """Bring a session back from its latest stored checkpoint.

        The restored detector's future appends and polls are bitwise
        identical to the original's — this is the recovery path after a
        node crash (shared store) and the landing half of a migration. The
        caller replays any points appended after ``snapshotted_length``.
        """
        store = self._require_store()
        if not isinstance(name, str) or not _NAME_PATTERN.match(name):
            raise BadRequest(
                "session names must be 1-64 characters from [A-Za-z0-9._-], "
                f"got {name!r}"
            )
        if name in self._sessions:
            raise SessionExists(f"streaming session {name!r} is already live on this node")
        self._check_admission("restore")
        found = await asyncio.to_thread(store.latest, name)
        if found is None:
            raise SessionNotFound(f"no stored snapshot of session {name!r}")
        seq, data = found

        def _rebuild() -> tuple[dict, StreamingEnsembleDetector]:
            state = decode_snapshot(data)
            return state["config"], StreamingEnsembleDetector.restore(
                state, executor=self._executor
            )

        try:
            snapshot_config, detector = await asyncio.to_thread(_rebuild)
        except SnapshotVersionError as error:
            raise BadRequest(f"cannot restore session {name!r}: {error}") from error
        config = DetectorConfig.from_mapping(
            {
                **{k: v for k, v in snapshot_config.items() if v is not None},
                "ensemble_size": detector.ensemble_size,
            }
        )
        session = _Session(name, detector, config)
        session.snapshot_seq = seq
        session.snapshotted_length = len(detector)
        self._sessions[name] = session
        self._tombstones.pop(name, None)
        self._ensure_reaper()
        info = session.info()
        info["restored_from"] = seq
        _log.info(
            "session %s restored from snapshot seq %d at length %d",
            name,
            seq,
            len(detector),
            extra={"session": name, "snapshot_seq": seq},
        )
        return info

    # ------------------------------------------------------------------
    # Data plane.
    # ------------------------------------------------------------------

    async def append(self, name: str, values) -> dict:
        """Feed a chunk into a session (vectorized ingest on a worker thread)."""
        session = self._get(name)
        chunk = np.ascontiguousarray(values, dtype=np.float64)
        if chunk.ndim != 1:
            raise BadRequest(f"chunks must be 1-dimensional, got shape {chunk.shape}")
        async with session.lock:
            self._check_still_registered(name, session)
            if self.memory_budget is not None:
                # Bounded sessions retain a flat window, so only the
                # transient chunk counts; unbounded sessions grow by the
                # chunk plus its prefix sums and tokens (upper estimate).
                growth = chunk.nbytes if session.detector.bounded else 4 * chunk.nbytes
                projected = self.memory_used() + growth
                if projected > self.memory_budget:
                    raise MemoryBudgetExceeded(
                        f"append of {len(chunk)} points would use ~{projected} bytes "
                        f"(budget {self.memory_budget}); close sessions or use "
                        "bounded retention (capacity=)"
                    )
            try:
                await asyncio.to_thread(session.detector.extend, chunk)
            except ValueError as error:
                raise BadRequest(str(error)) from error
            session.appended += len(chunk)
            session.last_used = asyncio.get_running_loop().time()
            if (
                self._snapshot_store is not None
                and self.snapshot_interval is not None
                and len(session.detector) - session.snapshotted_length
                >= self.snapshot_interval
            ):
                await self._checkpoint_locked(session)
            return {
                "name": name,
                "appended": int(len(chunk)),
                "length": len(session.detector),
                "horizon_start": session.detector.horizon_start,
                "live_length": session.detector.state.live_length,
                "version": session.detector.state.version,
                "snapshotted_length": session.snapshotted_length,
            }

    async def poll(self, name: str, k: int = 3) -> dict:
        """Snapshot-detect on a session; absolute stream positions.

        Responses are cached keyed by the session's stream version — a
        repeated poll with no appends in between is answered from the LRU
        (and even on a miss, the detector-level snapshot memoization makes
        the recompute O(1) when nothing changed).
        """
        session = self._get(name)
        k = int(k)
        if k < 1:
            raise BadRequest(f"k must be positive, got {k}")
        async with session.lock:
            self._check_still_registered(name, session)
            session.polls += 1
            session.last_used = asyncio.get_running_loop().time()
            cache_key = None
            if self._cache is not None:
                cache_key = ("poll", session.epoch, session.detector.state.version, k)
                hit, value = self._cache.get(cache_key)
                if hit:
                    return dict(value, cached=True)
            try:
                anomalies = await asyncio.to_thread(session.detector.detect, k)
            except ValueError as error:
                raise BadRequest(str(error)) from error
            payload = {
                "name": name,
                "anomalies": _anomalies_payload(anomalies),
                "length": len(session.detector),
                "horizon_start": session.detector.horizon_start,
                "live_length": session.detector.state.live_length,
                "version": session.detector.state.version,
            }
            if cache_key is not None:
                self._cache.put(cache_key, payload)
            return dict(payload, cached=False)

    # ------------------------------------------------------------------
    # Idle eviction.
    # ------------------------------------------------------------------

    def _ensure_reaper(self) -> None:
        if self.idle_timeout is None or self._closed:
            return
        if self._reaper is None or self._reaper.done():
            self._reaper = asyncio.get_running_loop().create_task(self._reap_idle())

    async def _reap_idle(self) -> None:
        interval = max(self.idle_timeout / 4.0, 0.05)
        while self._sessions and not self._closed:
            await asyncio.sleep(interval)
            await self.evict_idle()

    async def evict_idle(self) -> list[str]:
        """Evict sessions idle past the timeout; returns the evicted names.

        Eviction takes each candidate's lock and *re-checks idleness under
        it*: a request that slipped in between the unlocked scan and the
        lock acquisition refreshed ``last_used``, and evicting on the stale
        reading would tear a session down mid-conversation. Evicted
        sessions are checkpointed first (when a store is attached), so an
        accidental eviction is recoverable via :meth:`restore`.
        """
        if self.idle_timeout is None:
            return []
        now = asyncio.get_running_loop().time()
        evicted = []
        for name, session in list(self._sessions.items()):
            if session.lock.locked():  # in use right now — not idle
                continue
            if now - session.last_used <= self.idle_timeout:
                continue
            async with session.lock:
                # Re-validate under the lock: an in-flight append/poll may
                # have won the lock first and refreshed last_used, or a
                # close may have removed the session entirely.
                if self._sessions.get(name) is not session:
                    continue
                if (
                    asyncio.get_running_loop().time() - session.last_used
                    <= self.idle_timeout
                ):
                    continue
                if (
                    self._snapshot_store is not None
                    and len(session.detector) > session.snapshotted_length
                ):
                    try:
                        await self._checkpoint_locked(session)
                    except Exception:  # pragma: no cover — evict regardless
                        pass
                self._drop_locked(name, session, reason="evicted", drop_snapshots=False)
            evicted.append(name)
            self.evicted_idle += 1
        return evicted

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def info(self, name: str) -> dict:
        """Info document of one live session (:class:`SessionGone` when gone)."""
        return self._get(name).info()

    def list(self) -> list[dict]:
        """Summaries of every live session (name, length, memory)."""
        return [session.info() for session in self._sessions.values()]

    def stats(self) -> dict:
        """Session counts and memory accounting for the ``/stats`` endpoint."""
        return {
            "sessions": len(self._sessions),
            "max_sessions": self.max_sessions,
            "memory_used": self.memory_used(),
            "memory_budget": self.memory_budget,
            "idle_timeout": self.idle_timeout,
            "evicted_idle": self.evicted_idle,
            "snapshots_written": self.snapshots_written,
            "snapshot_interval": self.snapshot_interval,
            "tombstones": len(self._tombstones),
        }
