"""One canonical detector configuration for the whole serving stack.

Before this module, "a detector configuration" existed in four ad-hoc
shapes: the raw config dict a request carried, the ``clone_kwargs()``
canonicalization the cache/batcher fingerprinted, the kwargs dict a session
stored, and the argparse namespace the CLI sampled from. They agreed by
convention only. :class:`DetectorConfig` is the single definition all of
them derive from now: cache keys, micro-batch coalescing groups, session
records, snapshots, and the CLI all speak this type.

A ``None`` field means "use the engine constructor's default" — the config
is *sparse*, so requests that omit a knob keep the exact defaults of
:class:`~repro.core.ensemble.EnsembleGrammarDetector` (one-shot) and
:class:`~repro.core.streaming.StreamingEnsembleDetector` (sessions), which
differ on ``ensemble_size`` on purpose (50 vs 20). :meth:`to_fingerprint`
canonicalizes through the engine's own ``clone_kwargs()``, so two requests
spelling the same configuration differently share one fingerprint — and one
cache line and one coalescing batch.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from repro.core.engine import EVICTION_POLICIES

__all__ = ["DETECT_FIELDS", "SESSION_FIELDS", "DetectorConfig"]

#: Fields a one-shot detect request may set (the batch detector's knobs).
DETECT_FIELDS = (
    "window",
    "max_paa_size",
    "max_alphabet_size",
    "ensemble_size",
    "selectivity",
    "combiner",
    "numerosity",
    "znorm_threshold",
)

#: Fields a session-create request may set: the detect knobs plus bounded
#: retention and the parameter-sampling seed.
SESSION_FIELDS = DETECT_FIELDS + ("capacity", "policy", "segments", "seed")

_INT_FIELDS = frozenset(
    {"window", "max_paa_size", "max_alphabet_size", "ensemble_size", "capacity", "segments", "seed"}
)
_FLOAT_FIELDS = frozenset({"selectivity", "znorm_threshold"})
_STR_FIELDS = frozenset({"combiner", "numerosity", "policy"})


def _coerce(name: str, value):
    """Deterministic scalar coercion so equal configs compare equal.

    JSON, argparse, and python callers deliver the same knob as ``5``,
    ``5.0``, or ``"median"`` variants; coercing at construction means two
    spellings of one configuration are *equal dataclasses* — which is what
    lets sessions, snapshots, and routers compare configs directly.
    """
    if value is None:
        return None
    if name in _INT_FIELDS:
        if isinstance(value, bool) or (isinstance(value, float) and not value.is_integer()):
            raise ValueError(f"{name} must be an integer, got {value!r}")
        return int(value)
    if name in _FLOAT_FIELDS:
        return float(value)
    if name in _STR_FIELDS:
        if not isinstance(value, str):
            raise ValueError(f"{name} must be a string, got {value!r}")
        return value
    raise ValueError(f"unknown configuration field {name!r}")


@dataclass(frozen=True)
class DetectorConfig:
    """A frozen, sparse detector configuration (``None`` = engine default)."""

    window: int
    max_paa_size: int | None = None
    max_alphabet_size: int | None = None
    ensemble_size: int | None = None
    selectivity: float | None = None
    combiner: str | None = None
    numerosity: str | None = None
    znorm_threshold: float | None = None
    #: Streaming-only retention knobs (ignored by one-shot detection).
    capacity: int | None = None
    policy: str | None = None
    segments: int | None = None
    #: Parameter-sampling seed for streaming sessions. Restricted to
    #: ``int | None`` so every config JSON-round-trips (generators do not).
    seed: int | None = None

    def __post_init__(self) -> None:
        for field in fields(self):
            object.__setattr__(self, field.name, _coerce(field.name, getattr(self, field.name)))
        if self.window is None:
            raise ValueError("missing required field 'window'")
        if self.policy is not None and self.policy not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.policy!r}; expected one of {EVICTION_POLICIES}"
            )

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_mapping(cls, payload: dict, *, allowed: tuple[str, ...] = SESSION_FIELDS) -> "DetectorConfig":
        """Build from a request-shaped mapping, rejecting unknown fields.

        ``allowed`` narrows the accepted keys (:data:`DETECT_FIELDS` for
        one-shot requests, :data:`SESSION_FIELDS` for sessions) so typos
        fail loudly instead of silently running with defaults.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"configuration must be a mapping, got {type(payload).__name__}")
        strays = set(payload) - set(allowed)
        if strays:
            raise ValueError(f"unknown configuration field(s): {sorted(strays)}")
        if "window" not in payload:
            raise ValueError("missing required field 'window'")
        return cls(**payload)

    @classmethod
    def from_cli_args(cls, args) -> "DetectorConfig":
        """Build from an argparse namespace using the CLI's flag names.

        Maps ``--wmax``/``--amax``/``--ensemble-size``/``--selectivity``/
        ``--seed`` (and, when the subcommand has them, ``--stream-capacity``
        ``--eviction-policy`` ``--segments``) onto the canonical fields.
        """
        capacity = getattr(args, "stream_capacity", None)
        return cls(
            window=args.window,
            max_paa_size=getattr(args, "wmax", None),
            max_alphabet_size=getattr(args, "amax", None),
            ensemble_size=getattr(args, "ensemble_size", None),
            selectivity=getattr(args, "selectivity", None),
            capacity=capacity,
            policy=None if capacity is None else getattr(args, "eviction_policy", None),
            segments=None if capacity is None else getattr(args, "segments", None),
            seed=getattr(args, "seed", None),
        )

    @classmethod
    def from_json(cls, document: dict) -> "DetectorConfig":
        """Inverse of :meth:`to_json` (accepts any sparse field mapping)."""
        return cls.from_mapping(dict(document))

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-shaped sparse mapping (only explicitly set fields).

        ``DetectorConfig.from_json(config.to_json()) == config`` — the
        round trip snapshots, session records, and the router rely on.
        """
        return {
            field.name: getattr(self, field.name)
            for field in fields(self)
            if getattr(self, field.name) is not None
        }

    def detect_kwargs(self) -> dict:
        """Constructor kwargs for a one-shot :class:`EnsembleGrammarDetector`."""
        return {
            name: getattr(self, name) for name in DETECT_FIELDS if getattr(self, name) is not None
        }

    def session_kwargs(self) -> dict:
        """Constructor kwargs for a :class:`StreamingEnsembleDetector`."""
        return {
            name: getattr(self, name)
            for name in SESSION_FIELDS
            if getattr(self, name) is not None
        }

    def resolve(self) -> tuple[dict, tuple]:
        """Validate through the engine; return ``(clone_kwargs, fingerprint)``.

        Constructing the (cheap, lazy) template runs the full engine
        validation; ``clone_kwargs()`` then fills every default, so the
        fingerprint is total — two sparse configs meaning the same detector
        get the same fingerprint, the identity under which the LRU cache
        and the micro-batcher coalesce requests.
        """
        from repro.core.ensemble import EnsembleGrammarDetector

        template = EnsembleGrammarDetector(**self.detect_kwargs())
        kwargs = template.clone_kwargs()
        return kwargs, tuple(sorted(kwargs.items()))

    def to_fingerprint(self) -> tuple:
        """Canonical hashable identity of the *detection* configuration."""
        return self.resolve()[1]

    def describe(self) -> dict:
        """Full field mapping including unset (``None``) fields."""
        return asdict(self)
