"""Session router: consistent-hash placement, crash recovery, migration.

The sharded deployment shape: N independent serve nodes (``python -m repro
serve``), each hosting a disjoint set of streaming sessions, behind one
thin router (``python -m repro router``) that clients talk to instead of
any node directly. The router

- **places** every session on a node by consistent hashing over the static
  node list (:class:`HashRing` — blake2b points, virtual nodes), so
  placement is deterministic, balanced, and survives router restarts
  without a placement database;
- **proxies** the full ``/v1`` session surface plus one-shot detects
  (round-robin) to the owning node, passing response bodies through
  verbatim — scores stay bitwise identical because the router never
  re-encodes results;
- **recovers**: when a node stops answering, the session is re-placed on
  the next surviving node of its preference walk, restored there from its
  latest snapshot (shared :class:`~repro.service.snapshot.SnapshotStore`
  directory), and the router replays its buffered *tail* — the appends
  past the last checkpoint — so the resumed session is bitwise identical
  to one that never crashed;
- **migrates** on demand (``POST /v1/sessions/{name}/migrate``): snapshot
  on the source, close keeping snapshots, restore on the target, replay
  the tail;
- enforces **per-tenant quotas**: the tenant is the session-name prefix
  before the first ``.`` and may hold at most ``--tenant-quota`` live
  sessions (429 ``tenant-quota-exceeded`` past that).

The tail buffer is the client-side half of the durability story: chunks
are kept until the owning node reports (in every append response) that a
checkpoint covers them. Nodes running without ``--snapshot-dir`` never
checkpoint, so the router keeps the whole stream and recovery falls back
to recreate-and-replay-everything — still bitwise identical, just slower
and memory-heavier.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import json
import signal
from typing import Callable

from repro.obs.context import get_request_id
from repro.obs.expfmt import render_registry
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY, stats_families
from repro.service.errors import (
    BadRequest,
    NodeUnavailable,
    SessionNotFound,
    TenantQuotaExceeded,
)
from repro.service.http import BaseHTTPServer, _MethodNotAllowed, _NotFound

_log = get_logger("service.router")

__all__ = ["HashRing", "RouterHTTPServer", "SessionRouter", "serve_router", "tenant_of"]

#: Virtual points per node on the ring: enough that removing one node of a
#: small fleet spreads its keys ~evenly over the survivors.
DEFAULT_REPLICAS = 64

#: Seconds allowed for a liveness probe (kept well under request timeouts).
PROBE_TIMEOUT = 2.0


def tenant_of(name: str) -> str:
    """Tenant a session belongs to: the name prefix before the first ``.``."""
    return name.split(".", 1)[0]


class HashRing:
    """Consistent hashing with virtual nodes (blake2b points).

    ``preference(key)`` returns *all* nodes in deterministic walk order
    from the key's ring position: index 0 is the home node, the rest are
    the fallbacks recovery walks when earlier choices are dead. Placement
    depends only on (key, node list), so any router instance — including a
    restarted one — computes the same homes.
    """

    def __init__(self, nodes: list[str], *, replicas: int = DEFAULT_REPLICAS) -> None:
        nodes = list(dict.fromkeys(str(node) for node in nodes))
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        replicas = int(replicas)
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.nodes = nodes
        self.replicas = replicas
        self._points: list[tuple[int, str]] = sorted(
            (self._hash(f"{node}#{index}"), node)
            for node in nodes
            for index in range(replicas)
        )

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")

    def preference(self, key: str) -> list[str]:
        """Every node, in this key's deterministic failover order."""
        start = bisect.bisect_left(self._points, (self._hash(key), ""))
        seen: set[str] = set()
        order: list[str] = []
        count = len(self._points)
        for step in range(count):
            _point, node = self._points[(start + step) % count]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(order) == len(self.nodes):
                    break
        return order

    def place(self, key: str) -> str:
        """The key's home node (first of its preference walk)."""
        return self.preference(key)[0]


class _NodeDown(Exception):
    """Transport-level failure talking to one node (connection/timeout)."""

    def __init__(self, addr: str, cause: BaseException) -> None:
        super().__init__(f"node {addr} unreachable: {cause}")
        self.addr = addr


async def _http_request(
    addr: str,
    method: str,
    path: str,
    payload=None,
    *,
    timeout: float = 30.0,
    headers: dict[str, str] | None = None,
):
    """One stdlib-asyncio HTTP/1.1 request to ``host:port``; JSON in/out.

    One connection per request (``Connection: close``) — the router's
    traffic is low-rate control-plane plus streaming chunks, where the
    simplicity beats pooling. Any transport failure raises
    :class:`_NodeDown` so callers can treat "cannot talk to the node" as
    one condition, distinct from an HTTP error the node itself produced.
    """
    host, _, port = addr.rpartition(":")
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host or "127.0.0.1", int(port)), timeout
        )
    except (OSError, asyncio.TimeoutError, ValueError) as error:
        raise _NodeDown(addr, error) from error
    try:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        extra = "".join(f"{name}: {value}\r\n" for name, value in (headers or {}).items())
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {addr}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            f"{extra}"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

        async def _read_response():
            status_line = await reader.readline()
            if not status_line:
                raise ConnectionResetError("empty response")
            status = int(status_line.split()[1])
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value)
            data = await reader.readexactly(length) if length else b""
            return status, json.loads(data) if data else None

        return await asyncio.wait_for(_read_response(), timeout)
    except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as error:
        raise _NodeDown(addr, error) from error
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # pragma: no cover — peer already gone
            pass


class SessionRouter:
    """Place, proxy, recover, and migrate sessions across serve nodes."""

    def __init__(
        self,
        nodes: list[str],
        *,
        tenant_quota: int | None = None,
        replicas: int = DEFAULT_REPLICAS,
        request_timeout: float = 30.0,
    ) -> None:
        self.ring = HashRing(nodes, replicas=replicas)
        self.nodes = self.ring.nodes
        if tenant_quota is not None:
            tenant_quota = int(tenant_quota)
            if tenant_quota < 1:
                raise ValueError(f"tenant_quota must be positive, got {tenant_quota}")
        self.tenant_quota = tenant_quota
        self.request_timeout = float(request_timeout)
        self.alive: dict[str, bool] = {node: True for node in self.nodes}
        #: session -> node currently hosting it.
        self._placements: dict[str, str] = {}
        #: session -> original create config (recreate-without-snapshot path).
        self._configs: dict[str, dict] = {}
        #: session -> [(absolute start offset, values, request_id)] past
        #: the last checkpoint the owning node reported; the id names the
        #: append that delivered the chunk, so a recovery replay is
        #: traceable back to the original client request.
        self._tails: dict[str, list[tuple[int, list, str]]] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        self._rr = itertools.count()
        self.proxied = 0
        self.recoveries = 0
        self.migrations = 0

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------

    def _lock(self, name: str) -> asyncio.Lock:
        lock = self._locks.get(name)
        if lock is None:
            lock = self._locks[name] = asyncio.Lock()
        return lock

    async def _call(
        self,
        addr: str,
        method: str,
        path: str,
        payload=None,
        *,
        timeout=None,
        request_id: str | None = None,
    ):
        """Proxy one request to a node, forwarding the correlation id.

        The forwarded ``X-Request-Id`` defaults to the id bound in this
        context (the client's request); recovery passes ``request_id=``
        explicitly so a replayed append carries the id of the request
        that *originally* delivered those points.
        """
        self.proxied += 1
        request_id = request_id or get_request_id()
        headers = {"X-Request-Id": request_id} if request_id else None
        return await _http_request(
            addr, method, path, payload, timeout=timeout or self.request_timeout, headers=headers
        )

    def _forget(self, name: str) -> None:
        self._placements.pop(name, None)
        self._configs.pop(name, None)
        self._tails.pop(name, None)
        self._locks.pop(name, None)

    def _prune_tail(self, name: str, snapshotted_length) -> None:
        """Drop tail chunks a node-side checkpoint now fully covers."""
        if not snapshotted_length:
            return
        tail = self._tails.get(name)
        if tail:
            self._tails[name] = [
                chunk for chunk in tail if chunk[0] + len(chunk[1]) > snapshotted_length
            ]

    def tail_points(self, name: str) -> int:
        """Buffered points awaiting a covering checkpoint (tests/stats)."""
        return sum(len(values) for _start, values, _rid in self._tails.get(name, []))

    # ------------------------------------------------------------------
    # Session control plane.
    # ------------------------------------------------------------------

    async def create(self, payload: dict):
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise BadRequest("missing required string field 'name'")
        if self.tenant_quota is not None:
            tenant = tenant_of(name)
            held = sum(1 for other in self._placements if tenant_of(other) == tenant)
            if held >= self.tenant_quota and name not in self._placements:
                raise TenantQuotaExceeded(
                    f"tenant {tenant!r} already holds {held} of "
                    f"{self.tenant_quota} allowed sessions"
                )
        async with self._lock(name):
            for addr in self.ring.preference(name):
                if not self.alive.get(addr, False):
                    continue
                try:
                    status, body = await self._call(addr, "POST", "/v1/sessions", payload)
                except _NodeDown:
                    self.alive[addr] = False
                    continue
                if status == 200:
                    self._placements[name] = addr
                    self._configs[name] = {
                        key: value for key, value in payload.items() if key != "name"
                    }
                    self._tails[name] = []
                return status, body
        raise NodeUnavailable(f"no serve node reachable to create session {name!r}")

    async def close(self, name: str, query: dict):
        async with self._lock(name):
            addr = self._require_placed(name)
            suffix = ""
            if query:
                suffix = "?" + "&".join(f"{key}={value}" for key, value in query.items())
            try:
                status, body = await self._call(
                    addr, "DELETE", f"/v1/sessions/{name}{suffix}"
                )
            except _NodeDown:
                # The node is gone and so is the session; drop our records.
                self.alive[addr] = False
                status, body = 200, {"closed": {"name": name, "node_lost": True}}
        if status in (200, 404, 410):
            # Closed — or the node already dropped it (evicted); either
            # way the router must not keep routing the name.
            self._forget(name)
        return status, body

    async def forward(self, name: str, method: str, path: str, payload=None):
        """Proxy one session-scoped request, recovering placement on failure."""
        async with self._lock(name):
            return await self._forward_locked(name, method, path, payload)

    async def _forward_locked(self, name: str, method: str, path: str, payload=None):
        addr = self._require_placed(name)
        try:
            status, body = await self._call(addr, method, path, payload)
        except _NodeDown:
            self.alive[addr] = False
            await self._recover_locked(name)
            replacement = self._placements[name]
            try:
                status, body = await self._call(replacement, method, path, payload)
            except _NodeDown as error:
                self.alive[replacement] = False
                raise NodeUnavailable(
                    f"replacement node {replacement} for session {name!r} "
                    "died before answering"
                ) from error
        return status, body

    async def append(self, name: str, payload: dict):
        values = payload.get("values")
        if not isinstance(values, list) or not values:
            raise BadRequest("'values' must be a non-empty list of numbers")
        async with self._lock(name):
            status, body = await self._forward_locked(
                name, "POST", f"/v1/sessions/{name}/append", payload
            )
            if status == 200:
                # Buffer the chunk at its absolute offset until a node
                # checkpoint covers it; these are the points recovery
                # replays on a surviving node.
                start = int(body["length"]) - int(body["appended"])
                self._tails.setdefault(name, []).append(
                    (start, list(values), get_request_id() or "")
                )
                self._prune_tail(name, body.get("snapshotted_length"))
            return status, body

    def _require_placed(self, name: str) -> str:
        addr = self._placements.get(name)
        if addr is None:
            raise SessionNotFound(f"no routed session named {name!r}")
        return addr

    # ------------------------------------------------------------------
    # Recovery and migration.
    # ------------------------------------------------------------------

    async def recover(self, name: str):
        """Re-place a session after its node died; returns the new info."""
        async with self._lock(name):
            if name not in self._placements:
                raise SessionNotFound(f"no routed session named {name!r}")
            await self._recover_locked(name)
            return 200, {
                "name": name,
                "node": self._placements[name],
                "recoveries": self.recoveries,
            }

    async def _recover_locked(self, name: str) -> None:
        """Restore ``name`` on the best surviving node and replay its tail."""
        self.recoveries += 1
        dead_home = self._placements.get(name)
        _log.warning(
            "recovering session %s: node %s unreachable (recovery #%d)",
            name,
            dead_home,
            self.recoveries,
            extra={"session": name, "dead_node": dead_home},
        )
        for addr in self.ring.preference(name):
            if addr == dead_home or not self.alive.get(addr, False):
                continue
            try:
                restored = await self._restore_on(name, addr)
            except _NodeDown:
                self.alive[addr] = False
                continue
            if restored is None:
                continue
            self._placements[name] = addr
            await self._replay_tail(name, addr, restored)
            _log.info(
                "session %s recovered on %s (restored length %d)",
                name,
                addr,
                restored,
                extra={"session": name, "node": addr, "restored_length": restored},
            )
            return
        raise NodeUnavailable(f"no surviving node can host session {name!r}")

    async def _restore_on(self, name: str, addr: str) -> int | None:
        """Restore (or recreate) ``name`` on ``addr``; returns its length.

        ``None`` means this node cannot host the session (unexpected
        refusal) — the caller tries the next preference. A node without a
        matching snapshot falls back to recreating from the recorded
        create config and replaying the full tail.
        """
        status, body = await self._call(addr, "POST", f"/v1/sessions/{name}/restore")
        if status == 200:
            return int(body["length"])
        if status in (400, 404) and name in self._configs:
            # No snapshot (or no store on that node): recreate from the
            # original config; the tail holds the full stream in this mode.
            status, body = await self._call(
                addr, "POST", "/v1/sessions", {"name": name, **self._configs[name]}
            )
            if status == 200:
                return 0
        return None

    async def _replay_tail(self, name: str, addr: str, restored_length: int) -> None:
        """Re-append every buffered point past the restored length.

        Each replayed append is sent (and logged) under the request id of
        the append that originally delivered the chunk, so the recovery
        trail in the node's logs correlates back to the client requests.
        """
        for start, values, origin_id in sorted(
            self._tails.get(name, []), key=lambda chunk: chunk[0]
        ):
            if start + len(values) <= restored_length:
                continue
            chunk = values[max(0, restored_length - start) :]
            _log.info(
                "replaying session %s chunk on %s: %d point(s) from offset %d "
                "(originating request %s)",
                name,
                addr,
                len(chunk),
                max(start, restored_length),
                origin_id or "-",
                extra={
                    "session": name,
                    "node": addr,
                    "points": len(chunk),
                    "origin_request_id": origin_id or "-",
                },
            )
            status, body = await self._call(
                addr,
                "POST",
                f"/v1/sessions/{name}/append",
                {"values": chunk},
                request_id=origin_id or None,
            )
            if status != 200:
                raise NodeUnavailable(
                    f"replaying session {name!r} on {addr} failed with {status}: {body}"
                )
            self._prune_tail(name, body.get("snapshotted_length"))

    async def migrate(self, name: str, payload) -> tuple[int, dict]:
        """Move a live session to an explicit target node."""
        payload = payload if isinstance(payload, dict) else {}
        target = payload.get("target")
        if not isinstance(target, str) or target not in self.alive:
            raise BadRequest(
                f"'target' must name a configured node, one of {self.nodes}"
            )
        async with self._lock(name):
            source = self._require_placed(name)
            if source == target:
                return 200, {"name": name, "node": target, "migrated": False}
            # Checkpoint on the source when it can, then close keeping the
            # snapshots — the restore on the target picks them up.
            snapshotted = False
            try:
                status, _body = await self._call(
                    addr=source, method="POST", path=f"/v1/sessions/{name}/snapshot"
                )
                snapshotted = status == 200
                await self._call(
                    source, "DELETE", f"/v1/sessions/{name}?keep_snapshots=1&reason=migrated"
                )
            except _NodeDown:
                # Source died mid-migration: recovery semantics take over.
                self.alive[source] = False
            restored = await self._restore_on(name, target)
            if restored is None:
                raise NodeUnavailable(
                    f"target node {target} refused session {name!r} "
                    f"(snapshotted={snapshotted})"
                )
            self._placements[name] = target
            await self._replay_tail(name, target, restored)
            self.migrations += 1
            _log.info(
                "session %s migrated %s -> %s",
                name,
                source,
                target,
                extra={"session": name, "source": source, "target": target},
            )
            return 200, {"name": name, "node": target, "migrated": True}

    # ------------------------------------------------------------------
    # Stateless proxying (one-shot detects).
    # ------------------------------------------------------------------

    async def proxy_detect(self, path: str, payload):
        """Round-robin a one-shot request over the surviving nodes."""
        for _attempt in range(2 * len(self.nodes)):
            addr = self.nodes[next(self._rr) % len(self.nodes)]
            if not self.alive.get(addr, False):
                continue
            try:
                return await self._call(addr, "POST", path, payload)
            except _NodeDown:
                self.alive[addr] = False
        raise NodeUnavailable("no serve node reachable for detection")

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    async def nodes_info(self) -> dict:
        """Probe every node (reviving recovered ones) and describe the fleet."""
        documents = []
        for addr in self.nodes:
            try:
                status, _body = await self._call(
                    addr, "GET", "/v1/healthz", timeout=PROBE_TIMEOUT
                )
                self.alive[addr] = status == 200
            except _NodeDown:
                self.alive[addr] = False
            documents.append(
                {
                    "node": addr,
                    "role": "serve",
                    "alive": self.alive[addr],
                    "sessions": sum(
                        1 for node in self._placements.values() if node == addr
                    ),
                }
            )
        return {"nodes": documents}

    def stats(self) -> dict:
        return {
            "role": "router",
            "nodes": dict(self.alive),
            "sessions": len(self._placements),
            "placements": dict(self._placements),
            "tenant_quota": self.tenant_quota,
            "proxied": self.proxied,
            "recoveries": self.recoveries,
            "migrations": self.migrations,
            "tail_points": sum(self.tail_points(name) for name in self._tails),
        }


class RouterHTTPServer(BaseHTTPServer):
    """HTTP front end exposing the ``/v1`` surface backed by a router."""

    metrics_role = "router"

    def __init__(
        self,
        router: SessionRouter,
        host: str = "127.0.0.1",
        port: int = 8766,
        *,
        slow_request_ms: float | None = None,
    ) -> None:
        super().__init__(host, port, slow_request_ms=slow_request_ms)
        self.router = router

    def _route(self, method: str, path: str) -> tuple[Callable, tuple, bool]:
        path, deprecated = self._split_version(path)
        segments = [segment for segment in path.split("/") if segment]
        if path == "/healthz" and method == "GET":
            return self._handle_healthz, (), deprecated
        if path == "/stats" and method == "GET":
            return self._handle_stats, (), deprecated
        if path == "/metrics" and method == "GET":
            return self._handle_metrics, (), deprecated
        if path == "/nodes" and method == "GET":
            return self._handle_nodes, (), deprecated
        if path in ("/detect", "/detect_batch") and method == "POST":
            return self._handle_detect, (f"/v1{path}",), deprecated
        if path == "/sessions":
            if method == "POST":
                return self._handle_session_create, (), deprecated
            raise _MethodNotAllowed()
        if len(segments) == 2 and segments[0] == "sessions":
            name = segments[1]
            if method == "DELETE":
                return self._handle_session_close, (name,), deprecated
            if method == "GET":
                return self._handle_forward, (name, "GET", f"/v1/sessions/{name}"), deprecated
            raise _MethodNotAllowed()
        if len(segments) == 3 and segments[0] == "sessions":
            name, action = segments[1], segments[2]
            if action == "append" and method == "POST":
                return self._handle_append, (name,), deprecated
            if action in ("anomalies", "poll") and method in ("GET", "POST"):
                return self._handle_poll, (name, action), deprecated
            if action == "snapshot" and method == "POST":
                return (
                    self._handle_forward,
                    (name, "POST", f"/v1/sessions/{name}/snapshot"),
                    deprecated,
                )
            if action == "restore" and method == "POST":
                return self._handle_restore, (name,), deprecated
            if action == "migrate" and method == "POST":
                return self._handle_migrate, (name,), deprecated
        raise _NotFound(method, path)

    # ------------------------------------------------------------------
    # Handlers (thin shims over the router; bodies pass through verbatim).
    # ------------------------------------------------------------------

    async def _handle_healthz(self, payload, query) -> tuple[int, dict]:
        return 200, {"status": "ok", "role": "router"}

    async def _handle_stats(self, payload, query) -> tuple[int, dict]:
        return 200, self.router.stats()

    async def _handle_metrics(self, payload, query) -> tuple[int, str]:
        """Prometheus text exposition: registry + router stats() gauges."""
        extra = stats_families("repro_router", self.router.stats())
        return 200, render_registry(REGISTRY, extra)

    async def _handle_nodes(self, payload, query) -> tuple[int, dict]:
        return 200, await self.router.nodes_info()

    async def _handle_detect(self, payload, query, path: str) -> tuple[int, dict]:
        return await self.router.proxy_detect(path, self._require_object(payload))

    async def _handle_session_create(self, payload, query) -> tuple[int, dict]:
        return await self.router.create(self._require_object(payload))

    async def _handle_session_close(self, payload, query, name: str) -> tuple[int, dict]:
        return await self.router.close(name, query)

    async def _handle_forward(
        self, payload, query, name: str, method: str, path: str
    ) -> tuple[int, dict]:
        return await self.router.forward(name, method, path, payload)

    async def _handle_append(self, payload, query, name: str) -> tuple[int, dict]:
        return await self.router.append(name, self._require_object(payload))

    async def _handle_poll(self, payload, query, name: str, action: str) -> tuple[int, dict]:
        k = None
        if isinstance(payload, dict) and "k" in payload:
            k = payload["k"]
        elif "k" in query:
            k = query["k"]
        suffix = f"?k={int(k)}" if k is not None else ""
        return await self.router.forward(
            name, "GET", f"/v1/sessions/{name}/anomalies{suffix}"
        )

    async def _handle_restore(self, payload, query, name: str) -> tuple[int, dict]:
        return await self.router.recover(name)

    async def _handle_migrate(self, payload, query, name: str) -> tuple[int, dict]:
        return await self.router.migrate(name, payload)


async def serve_router(
    router: SessionRouter,
    host: str = "127.0.0.1",
    port: int = 8766,
    *,
    ready: Callable[[RouterHTTPServer], None] | None = None,
    slow_request_ms: float | None = None,
) -> None:
    """Run the router front end until SIGTERM/SIGINT, then shut down."""
    server = RouterHTTPServer(router, host, port, slow_request_ms=slow_request_ms)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    registered: list[signal.Signals] = []
    for signame in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signame, stop.set)
            registered.append(signame)
        except (NotImplementedError, RuntimeError):  # pragma: no cover — non-Unix
            pass
    try:
        if ready is not None:
            ready(server)
        await stop.wait()
    finally:
        for signame in registered:
            loop.remove_signal_handler(signame)
        await server.aclose()
