"""Typed synchronous client for the ``/v1`` service and router APIs.

Pure stdlib (``urllib``): scripts, examples, and operational tooling get a
method-per-endpoint surface instead of hand-rolled request plumbing, and
service failures arrive as :class:`ServiceClientError` carrying the
envelope's machine-readable ``code`` (plus ``retry_after`` when the server
says retrying may help) instead of a bare ``HTTPError``.

The client speaks only canonical ``/v1`` paths; it works identically
against a single serve node and a router (which adds ``migrate`` and a
fleet-wide ``nodes``).

Every request carries an ``X-Request-Id`` header — pass ``request_id=`` to
pin one (it tags the server's structured logs, so a client-side trace id
lands in every log line the request touches); otherwise a fresh id is
minted per request. Error responses echo the id back on
:attr:`ServiceClientError.request_id`.

JSON floats round-trip bitwise (``repr`` shortest-form), so a score read
through this client compares equal to the directly computed one.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.obs.context import new_request_id

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """An error response from the service, decoded from the envelope.

    Attributes
    ----------
    status:
        HTTP status code.
    code:
        Machine-readable error code from the envelope (e.g.
        ``"session-gone"``), or ``"http"`` for non-envelope failures.
    retry_after:
        Seconds after which retrying may succeed, when the server sent one.
    request_id:
        The correlation id the server echoed back (``X-Request-Id``
        response header), for looking the failure up in server logs.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: float | None = None,
        request_id: str | None = None,
    ) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.request_id = request_id


class ServiceClient:
    """One service (or router) endpoint, spoken to over ``/v1``.

    ``request_id`` pins the ``X-Request-Id`` sent with every call from this
    client instance (useful for correlating a whole script run in server
    logs); when ``None`` each call mints its own id.
    """

    def __init__(
        self, base_url: str, *, timeout: float = 60.0, request_id: str | None = None
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.request_id = request_id

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def _call(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request_id = self.request_id or new_request_id()
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json", "X-Request-Id": request_id},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            body = error.read()
            echoed = error.headers.get("X-Request-Id") or request_id
            try:
                envelope = json.loads(body)["error"]
            except (json.JSONDecodeError, KeyError, TypeError):
                raise ServiceClientError(
                    error.code,
                    "http",
                    body.decode("utf-8", "replace") or str(error),
                    request_id=echoed,
                ) from error
            raise ServiceClientError(
                error.code,
                envelope.get("code", "http"),
                envelope.get("message", str(error)),
                envelope.get("retry_after"),
                request_id=echoed,
            ) from error

    # ------------------------------------------------------------------
    # Service-level endpoints.
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._call("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self._call("GET", "/v1/stats")

    def nodes(self) -> list[dict]:
        return self._call("GET", "/v1/nodes")["nodes"]

    def metrics(self) -> str:
        """The Prometheus text exposition from ``GET /v1/metrics``."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/metrics",
            method="GET",
            headers={"X-Request-Id": self.request_id or new_request_id()},
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    # ------------------------------------------------------------------
    # One-shot detection.
    # ------------------------------------------------------------------

    def detect(self, series, *, k: int = 3, seed: int = 0, **config) -> dict:
        """One series through ``POST /v1/detect`` (micro-batched, cached)."""
        return self._call(
            "POST", "/v1/detect", {"series": list(series), "k": k, "seed": seed, **config}
        )

    def detect_batch(self, series_list, *, k: int = 3, seed: int = 0, **config) -> dict:
        """Many series as one request; per-item errors in their slots."""
        return self._call(
            "POST",
            "/v1/detect_batch",
            {"series": [list(series) for series in series_list], "k": k, "seed": seed, **config},
        )

    # ------------------------------------------------------------------
    # Streaming sessions.
    # ------------------------------------------------------------------

    def create_session(self, name: str, **config) -> dict:
        return self._call("POST", "/v1/sessions", {"name": name, **config})

    def sessions(self) -> list[dict]:
        return self._call("GET", "/v1/sessions")["sessions"]

    def session(self, name: str) -> dict:
        return self._call("GET", f"/v1/sessions/{name}")

    def append(self, name: str, values) -> dict:
        return self._call("POST", f"/v1/sessions/{name}/append", {"values": list(values)})

    def anomalies(self, name: str, k: int = 3) -> dict:
        """Ranked anomalies over the session's live range (the poll)."""
        return self._call("GET", f"/v1/sessions/{name}/anomalies?k={int(k)}")

    def snapshot(self, name: str) -> dict:
        """Checkpoint the session to the node's snapshot store now."""
        return self._call("POST", f"/v1/sessions/{name}/snapshot")

    def restore(self, name: str) -> dict:
        """Restore from the latest checkpoint (router: re-place + replay)."""
        return self._call("POST", f"/v1/sessions/{name}/restore")

    def migrate(self, name: str, target: str) -> dict:
        """Move a session to an explicit node (router endpoints only)."""
        return self._call("POST", f"/v1/sessions/{name}/migrate", {"target": target})

    def close_session(self, name: str, *, keep_snapshots: bool = False) -> dict:
        suffix = "?keep_snapshots=1" if keep_snapshots else ""
        return self._call("DELETE", f"/v1/sessions/{name}{suffix}")
