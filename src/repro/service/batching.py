"""Micro-batching scheduler: coalesce concurrent requests into shared batches.

The serving problem this solves: many concurrent ``detect`` requests arrive
independently, but the engine's :func:`~repro.core.engine.detect_batch` is
far more efficient per request than one call per request — it amortizes the
executor round-trip, series publication, and pool packing across the whole
batch. :class:`MicroBatcher` is the piece in between: requests that arrive
within a small coalescing window and share a *group key* (in the service:
the detector-config fingerprint plus ``k``) are dispatched together as one
batch to a blocking runner executed on a worker thread, and each caller's
``await`` resolves with its own result.

Semantics:

- **Grouping** — only requests with equal group keys are batched together;
  each active group has one dispatch loop, so at most one batch per group
  is in flight at a time (batch-level parallelism comes from the executor
  *inside* the runner, not from racing batches).
- **Backpressure** — a bounded pending budget across all groups; when full,
  ``submit`` fails fast with :class:`~repro.service.errors.ServiceOverloaded`
  (the HTTP front end maps it to 429) instead of queueing unboundedly.
- **Deadlines** — ``submit(timeout=...)`` resolves with
  :class:`~repro.service.errors.DeadlineExceeded` if the result is not
  ready in time; a request that times out while still queued is skipped at
  dispatch (its slot is not computed).
- **Partial failure** — the runner returns one result per request; a result
  that is an exception instance fails only that caller's ``await``.

The batcher is transport-agnostic and engine-agnostic: it never imports the
detector stack. The serving core supplies a runner built on
``detect_batch(..., seeds=..., return_exceptions=True)``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Hashable, Sequence

from repro.service.errors import (
    DeadlineExceeded,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
)

__all__ = ["MicroBatcher"]

#: ``run_batch`` contract: called on a worker thread with the group key and
#: the payloads of one coalesced batch; returns ``(slot, result)`` pairs
#: where ``slot`` indexes into the given payload list and an exception
#: instance as ``result`` fails that slot's caller only.
BatchRunner = Callable[[Hashable, Sequence[Any]], Sequence[tuple[int, Any]]]


class _Pending:
    """One queued request: its payload and the caller's future."""

    __slots__ = ("payload", "future")

    def __init__(self, payload: Any, future: asyncio.Future) -> None:
        self.payload = payload
        self.future = future


class MicroBatcher:
    """Coalesce concurrent ``submit`` calls into batched runner invocations.

    Parameters
    ----------
    run_batch:
        Blocking batch runner (see :data:`BatchRunner`); executed via
        ``asyncio.to_thread`` so the event loop stays responsive.
    batch_window:
        Seconds to linger after picking up work, letting concurrent
        requests join the same batch. ``0`` dispatches whatever is queued
        immediately — the "no coalescing" baseline the throughput bench
        compares against.
    max_batch_size:
        Largest number of requests dispatched as one batch.
    max_pending:
        Backpressure bound: queued-but-undispatched requests across all
        groups. ``submit`` beyond it raises
        :class:`~repro.service.errors.ServiceOverloaded` immediately.
    """

    def __init__(
        self,
        run_batch: BatchRunner,
        *,
        batch_window: float = 0.002,
        max_batch_size: int = 16,
        max_pending: int = 128,
    ) -> None:
        batch_window = float(batch_window)
        if batch_window < 0:
            raise ValueError(f"batch_window must be non-negative, got {batch_window}")
        max_batch_size = int(max_batch_size)
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        max_pending = int(max_pending)
        if max_pending < 1:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        self._run_batch = run_batch
        self.batch_window = batch_window
        self.max_batch_size = max_batch_size
        self.max_pending = max_pending
        self._queues: dict[Hashable, deque[_Pending]] = {}
        self._workers: dict[Hashable, asyncio.Task] = {}
        self._pending = 0
        self._closed = False
        #: Counters surfaced through ``stats()``.
        self.submitted = 0
        self.dispatched = 0
        self.batches = 0
        self.rejected = 0
        self.expired = 0

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests queued but not yet picked up by a dispatch loop."""
        return self._pending

    @property
    def closed(self) -> bool:
        """Whether :meth:`aclose` has begun (new submissions are refused)."""
        return self._closed

    async def submit(self, key: Hashable, payload: Any, *, timeout: float | None = None):
        """Enqueue one request and await its result.

        Raises :class:`~repro.service.errors.ServiceOverloaded` when the
        pending budget is exhausted, :class:`~repro.service.errors.DeadlineExceeded`
        when ``timeout`` elapses first, and whatever exception the runner
        attributed to this request otherwise.
        """
        if self._closed:
            raise ServiceClosed("service is shutting down")
        if self._pending >= self.max_pending:
            self.rejected += 1
            raise ServiceOverloaded(
                f"{self._pending} requests pending (limit {self.max_pending}); retry later"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._queues.setdefault(key, deque()).append(_Pending(payload, future))
        self._pending += 1
        self.submitted += 1
        worker = self._workers.get(key)
        if worker is None or worker.done():
            self._workers[key] = loop.create_task(self._drain_group(key))
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            # wait_for cancelled the future; an undispatched request is
            # skipped at dispatch time, a dispatched one has its (already
            # computed) result dropped by the done() guard.
            self.expired += 1
            raise DeadlineExceeded(
                f"request did not complete within {timeout:.3f}s"
            ) from None

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    async def _drain_group(self, key: Hashable) -> None:
        """Dispatch loop of one group: coalesce, run, deliver, repeat."""
        queue = self._queues[key]
        try:
            while queue:
                if self.batch_window > 0.0 and len(queue) < self.max_batch_size:
                    # Linger once so concurrent submitters can pile on.
                    await asyncio.sleep(self.batch_window)
                batch: list[_Pending] = []
                while queue and len(batch) < self.max_batch_size:
                    batch.append(queue.popleft())
                self._pending -= len(batch)
                live = [entry for entry in batch if not entry.future.done()]
                if not live:
                    continue
                self.batches += 1
                self.dispatched += len(live)
                payloads = [entry.payload for entry in live]
                try:
                    results = await asyncio.to_thread(self._run_batch, key, payloads)
                except BaseException as error:
                    failure = (
                        error
                        if isinstance(error, Exception)
                        else ServiceClosed("batch dispatch interrupted")
                    )
                    for entry in live:
                        if not entry.future.done():
                            entry.future.set_exception(failure)
                    if not isinstance(error, Exception):
                        raise
                    continue
                delivered = set()
                for slot, result in results:
                    entry = live[slot]
                    delivered.add(slot)
                    if entry.future.done():
                        continue
                    if isinstance(result, BaseException):
                        entry.future.set_exception(result)
                    else:
                        entry.future.set_result(result)
                for slot, entry in enumerate(live):
                    if slot not in delivered and not entry.future.done():
                        entry.future.set_exception(
                            ServiceError("batch runner returned no result for this request")
                        )
        finally:
            # No await between the final emptiness check and this pop, so a
            # concurrent submit can never append to a queue whose worker is
            # gone without noticing (it re-checks worker.done()). Empty
            # queues are reaped with their worker — a long tail of distinct
            # group keys leaves no permanent state behind.
            if self._workers.get(key) is asyncio.current_task():
                self._workers.pop(key, None)
            if not self._queues.get(key):
                self._queues.pop(key, None)

    # ------------------------------------------------------------------
    # Lifecycle / introspection.
    # ------------------------------------------------------------------

    async def aclose(self) -> None:
        """Stop accepting work, fail queued requests, wait out in-flight batches.

        Requests already dispatched to the runner complete normally (their
        callers get real results); requests still queued fail with
        :class:`~repro.service.errors.ServiceClosed`. Idempotent.
        """
        if self._closed:
            workers = [task for task in self._workers.values() if not task.done()]
            if workers:
                await asyncio.gather(*workers, return_exceptions=True)
            return
        self._closed = True
        error = ServiceClosed("service is shutting down")
        for queue in list(self._queues.values()):
            while queue:
                entry = queue.popleft()
                self._pending -= 1
                if not entry.future.done():
                    entry.future.set_exception(error)
        self._queues.clear()
        workers = [task for task in self._workers.values() if not task.done()]
        if workers:
            await asyncio.gather(*workers, return_exceptions=True)

    def stats(self) -> dict:
        """Counters for the ``/stats`` endpoint and the throughput bench."""
        return {
            "submitted": self.submitted,
            "dispatched": self.dispatched,
            "batches": self.batches,
            "pending": self._pending,
            "rejected_overload": self.rejected,
            "expired_deadline": self.expired,
            "mean_batch_size": (self.dispatched / self.batches) if self.batches else 0.0,
            "batch_window": self.batch_window,
            "max_batch_size": self.max_batch_size,
            "max_pending": self.max_pending,
        }
