"""Terminal sparklines — how this library "plots" curves in text.

The examples and benches render time series and rule density curves as
density sparklines so a reader can see the troughs the detector ranks,
without any plotting dependency.
"""

from __future__ import annotations

import numpy as np

#: Glyphs from lightest to densest; index ~ relative level.
_BLOCKS = " .:-=+*#%@"


def sparkline(values, width: int = 72) -> str:
    """Render a 1-D array as a fixed-width character strip.

    The array is split into ``width`` equal chunks; each chunk's mean is
    mapped onto a density glyph. Constant input renders as the lightest
    glyph repeated.

    Example
    -------
    >>> sparkline([0, 0, 1, 1], width=4)
    '  @@'
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("sparkline needs a non-empty 1-D array")
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    width = min(width, array.size)
    chunks = np.array_split(array, width)
    means = np.array([float(np.mean(chunk)) for chunk in chunks])
    span = means.max() - means.min()
    if span <= 0:
        return _BLOCKS[0] * width
    levels = ((means - means.min()) / span * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[level] for level in levels)


def labelled_sparkline(label: str, values, width: int = 60) -> str:
    """``label  <sparkline>`` — the one-liner format the examples print."""
    return f"{label:14s}{sparkline(values, width)}"
