"""Wall-clock timing helpers: the `Timer` context manager and the
benchmark measurement core (warmup + repeats, median/IQR summaries).

`Timer` is the single-shot primitive the benches have always used.
:func:`measure` and :func:`collect` are the matrix runner's measurement
core: instead of one wall-clock sample per metric, every measurement is
``warmup`` discarded calls followed by ``repeats`` recorded ones, and the
reported value is the **median** with the **interquartile range** as the
noise estimate — a single scheduler hiccup moves the mean, not the median,
and the IQR is what the regression gate uses to tell jitter from a real
slowdown.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    if not ordered:
        raise ValueError("cannot take a quantile of an empty sample")
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    weight = position - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


@dataclass(frozen=True)
class Measurement:
    """Summary of one repeated measurement (the runner's record unit).

    ``samples`` are the raw per-repeat values in collection order; the
    derived fields are what lands in the NDJSON records: ``median`` is the
    reported value, ``iqr`` the noise band the regression gate widens its
    tolerance by.
    """

    samples: tuple[float, ...] = field(default_factory=tuple)

    @property
    def median(self) -> float:
        """The reported value: robust to one outlier repeat."""
        return _quantile(sorted(self.samples), 0.5)

    @property
    def iqr(self) -> float:
        """Interquartile range of the samples (0.0 for a single repeat)."""
        ordered = sorted(self.samples)
        return _quantile(ordered, 0.75) - _quantile(ordered, 0.25)

    @property
    def best(self) -> float:
        """The fastest (smallest) sample."""
        return min(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean (reported for context, never gated on)."""
        return sum(self.samples) / len(self.samples)

    def as_dict(self) -> dict:
        """JSON-ready summary used by the record schema."""
        return {
            "value": self.median,
            "iqr": self.iqr,
            "best": self.best,
            "mean": self.mean,
            "repeats": len(self.samples),
            "samples": list(self.samples),
        }


def measure(fn: Callable[[], object], *, warmup: int = 1, repeats: int = 3) -> Measurement:
    """Time ``fn`` with ``warmup`` discarded calls then ``repeats`` recorded ones.

    Returns the elapsed-seconds :class:`Measurement`. ``repeats`` must be
    at least 1; ``warmup`` may be 0 for workloads that are expensive enough
    to self-warm (the matrix spec decides per workload).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        samples.append(timer.elapsed)
    return Measurement(tuple(samples))


def collect(
    fn: Callable[[], Mapping[str, float]], *, warmup: int = 1, repeats: int = 3
) -> dict[str, Measurement]:
    """Repeat a self-measuring workload and summarize each metric it returns.

    ``fn`` runs once per repeat and returns ``{metric_name: value}`` — a
    workload that computes derived costs (us/token, ms/poll) internally.
    Every recorded repeat must report the same metric set; a drifting set
    means the workload is nondeterministic in *shape*, which would corrupt
    the record stream, so it raises instead of papering over.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    runs = [dict(fn()) for _ in range(repeats)]
    names = set(runs[0])
    for run in runs[1:]:
        if set(run) != names:
            raise ValueError(
                f"workload metric set changed between repeats: {sorted(names)} "
                f"vs {sorted(run)}"
            )
    return {
        name: Measurement(tuple(run[name] for run in runs)) for name in sorted(names)
    }
