"""Shared utilities: input validation, RNG handling, timing helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.sparkline import labelled_sparkline, sparkline
from repro.utils.timing import Timer
from repro.utils.validation import (
    ensure_time_series,
    validate_alphabet_size,
    validate_paa_size,
    validate_window,
)

__all__ = [
    "Timer",
    "ensure_rng",
    "ensure_time_series",
    "labelled_sparkline",
    "spawn_rngs",
    "sparkline",
    "validate_alphabet_size",
    "validate_paa_size",
    "validate_window",
]
