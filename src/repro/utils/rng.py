"""Deterministic random-number-generator plumbing.

All stochastic components in the library (ensemble parameter sampling,
dataset generators, corpus planting) accept either a seed or a ready
``numpy.random.Generator`` and normalize it through :func:`ensure_rng`, so a
single integer reproduces an entire experiment.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

RandomState = int | np.random.Generator | None


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``None`` yields a freshly seeded generator, an ``int`` a deterministic
    one, and an existing ``Generator`` is passed through unchanged (so
    callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Split one seed into ``count`` independent child generators.

    Uses ``SeedSequence.spawn`` so children are statistically independent and
    stable across NumPy versions for a fixed integer seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def iter_param_combinations(
    w_range: tuple[int, int],
    a_range: tuple[int, int],
) -> Iterator[tuple[int, int]]:
    """Yield every ``(w, a)`` combination in the inclusive ranges, row-major."""
    for w in range(w_range[0], w_range[1] + 1):
        for a in range(a_range[0], a_range[1] + 1):
            yield w, a
