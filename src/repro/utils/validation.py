"""Input validation helpers shared across the library.

Every public entry point funnels its array/parameter checks through these
functions so error messages are consistent and the numeric core can assume
well-formed inputs.
"""

from __future__ import annotations

import numpy as np

#: Alphabet sizes are limited by the symbol set (``a``–``z``); the paper never
#: uses more than 20.
MAX_ALPHABET_SIZE = 26


def ensure_time_series(values, *, name: str = "series", min_length: int = 1) -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D ``float64`` array.

    Parameters
    ----------
    values:
        Any sequence convertible to a numeric NumPy array.
    name:
        Parameter name used in error messages.
    min_length:
        Minimum number of observations required.

    Returns
    -------
    numpy.ndarray
        A C-contiguous ``float64`` copy (or view when already conforming).

    Raises
    ------
    TypeError
        If the input cannot be interpreted as a numeric array.
    ValueError
        If the input is not 1-D, too short, or contains NaN/inf.
    """
    try:
        array = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a numeric sequence, got {type(values).__name__}") from exc
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {array.shape}")
    if array.size < min_length:
        raise ValueError(f"{name} must contain at least {min_length} observations, got {array.size}")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must not contain NaN or infinite values")
    return np.ascontiguousarray(array)


def validate_window(window: int, series_length: int, *, name: str = "window") -> int:
    """Check that a sliding-window length fits inside the series."""
    window = int(window)
    if window < 2:
        raise ValueError(f"{name} must be at least 2, got {window}")
    if window > series_length:
        raise ValueError(f"{name}={window} exceeds the series length {series_length}")
    return window


def validate_paa_size(paa_size: int, window: int) -> int:
    """Check the PAA size ``w`` against the subsequence length ``n``.

    SAX requires ``1 <= w <= n``; the paper always uses ``w >= 2`` because a
    single-segment word carries no shape information.
    """
    paa_size = int(paa_size)
    if paa_size < 1:
        raise ValueError(f"paa_size must be positive, got {paa_size}")
    if paa_size > window:
        raise ValueError(f"paa_size={paa_size} exceeds the window length {window}")
    return paa_size


def validate_alphabet_size(alphabet_size: int) -> int:
    """Check the SAX alphabet size ``a`` (2..26)."""
    alphabet_size = int(alphabet_size)
    if alphabet_size < 2:
        raise ValueError(f"alphabet_size must be at least 2, got {alphabet_size}")
    if alphabet_size > MAX_ALPHABET_SIZE:
        raise ValueError(
            f"alphabet_size must be at most {MAX_ALPHABET_SIZE} (latin letters), got {alphabet_size}"
        )
    return alphabet_size
