"""HOTSAX (Keogh, Lin & Fu 2005 [9]) — heuristic discord discovery.

The original discord algorithm the paper cites as the predecessor of the
matrix-profile methods. It searches for the subsequence with the largest
1-NN distance using two SAX-guided heuristics:

- **outer loop order** — subsequences whose SAX word is rare are tried first
  (rare words are likely discords, raising the best-so-far early);
- **inner loop order** — for a candidate, subsequences sharing its SAX word
  are compared first (likely near neighbours, enabling early abandoning).

Worst case O(N^2 m), typically far less. Distances follow the same
z-normalized Euclidean conventions as :mod:`repro.discord.matrix_profile`,
so on any input the top discord matches the brute-force matrix profile's
maximum.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.anomaly import Anomaly
from repro.core.executors import StatelessBatchMixin
from repro.discord.discords import Discord
from repro.discord.matrix_profile import _is_constant, default_exclusion
from repro.sax.sax import discretize
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import ensure_time_series, validate_window


def _normalized_subsequences(series: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Z-normalized subsequence matrix and per-subsequence constancy mask.

    Constancy follows the same convention as :mod:`repro.discord.
    matrix_profile`, so HOTSAX and the matrix-profile methods agree exactly.
    """
    n_subs = len(series) - window + 1
    shape = (n_subs, window)
    strides = (series.strides[0], series.strides[0])
    windows = np.lib.stride_tricks.as_strided(series, shape=shape, strides=strides)
    means = windows.mean(axis=1)
    stds = windows.std(axis=1)
    constant = np.array([_is_constant(windows[i]) for i in range(n_subs)])
    safe = np.where(constant, 1.0, stds)
    normalized = (windows - means[:, None]) / safe[:, None]
    normalized[constant] = 0.0
    return normalized, constant


def _find_single_discord(
    normalized: np.ndarray,
    constant: np.ndarray,
    window: int,
    exclusion: int,
    outer_order: list[int],
    buckets: dict[str, list[int]],
    words: list[str],
    excluded: np.ndarray,
    rng: np.random.Generator,
) -> Discord | None:
    """One pass of the HOTSAX outer/inner loop over non-excluded positions."""
    best_distance = -1.0
    best_position = -1
    best_neighbour = -1
    sqrt_window = float(np.sqrt(window))
    n_subs = len(normalized)
    # One shared shuffled order for the inner "all others" scan; the original
    # reshuffles per candidate, but a fixed random order preserves the early
    # abandoning behaviour at a fraction of the cost.
    rest = rng.permutation(n_subs)
    for i in outer_order:
        if excluded[i]:
            continue
        # Inner loop: same-word positions first, then the rest shuffled.
        same_word = [j for j in buckets[words[i]] if abs(j - i) > exclusion]
        nearest = np.inf
        i_constant = bool(constant[i])

        def _distance(j: int) -> float:
            j_constant = bool(constant[j])
            if i_constant and j_constant:
                return 0.0
            if i_constant or j_constant:
                return sqrt_window
            diff = normalized[i] - normalized[j]
            return float(np.sqrt(np.dot(diff, diff)))

        abandoned = False
        for j in same_word:
            nearest = min(nearest, _distance(j))
            if nearest < best_distance:
                abandoned = True
                break
        if not abandoned:
            for j in rest:
                j = int(j)
                if abs(j - i) <= exclusion:
                    continue
                nearest = min(nearest, _distance(j))
                if nearest < best_distance:
                    abandoned = True
                    break
        if not abandoned and np.isfinite(nearest) and nearest > best_distance:
            best_distance = nearest
            best_position = i
            # Recover the actual neighbour index for reporting.
            best_neighbour = _nearest_index(normalized, constant, i, exclusion, window)
    if best_position < 0:
        return None
    return Discord(
        position=best_position,
        length=window,
        distance=best_distance,
        neighbour=best_neighbour,
    )


def _nearest_index(
    normalized: np.ndarray, constant: np.ndarray, i: int, exclusion: int, window: int
) -> int:
    distances = np.sqrt(np.sum((normalized - normalized[i]) ** 2, axis=1))
    if constant[i]:
        distances = np.where(constant, 0.0, np.sqrt(window))
    else:
        distances = np.where(constant, np.sqrt(window), distances)
    low = max(0, i - exclusion)
    high = min(len(distances), i + exclusion + 1)
    distances[low:high] = np.inf
    return int(np.argmin(distances))


def hotsax_discords(
    series: np.ndarray,
    window: int,
    k: int = 1,
    *,
    paa_size: int = 3,
    alphabet_size: int = 3,
    exclusion: int | None = None,
    seed: RandomState = 0,
) -> list[Discord]:
    """Find the top-``k`` non-overlapping discords with HOTSAX.

    Parameters
    ----------
    series, window:
        The series and the discord length.
    k:
        Number of non-overlapping discords (found by re-running the search
        with previous finds masked, as in the original paper).
    paa_size, alphabet_size:
        SAX parameters of the heuristic ordering (defaults follow [9]).
    exclusion:
        Self-match exclusion half-width; defaults to ``ceil(window / 4)``.
    seed:
        Seed for the randomized loop orders (results are deterministic for a
        fixed seed; the *discovered discords* are seed-independent, only the
        search speed varies).
    """
    series = ensure_time_series(series, name="series", min_length=2)
    window = validate_window(window, len(series))
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    exclusion = default_exclusion(window) if exclusion is None else int(exclusion)
    rng = ensure_rng(seed)
    words = discretize(series, window, paa_size, alphabet_size)
    buckets: dict[str, list[int]] = defaultdict(list)
    for position, word in enumerate(words):
        buckets[word].append(position)
    # Outer order: rarest words first, random inside each bucket-size class.
    order = sorted(range(len(words)), key=lambda i: (len(buckets[words[i]]), rng.random()))
    normalized, constant = _normalized_subsequences(series, window)
    excluded = np.zeros(len(words), dtype=bool)
    discords: list[Discord] = []
    for _ in range(k):
        found = _find_single_discord(
            normalized, constant, window, exclusion, order, buckets, words, excluded, rng
        )
        if found is None:
            break
        discords.append(found)
        low = max(0, found.position - window + 1)
        high = min(len(excluded), found.position + window)
        excluded[low:high] = True
    return discords


class HotSaxDetector(StatelessBatchMixin):
    """HOTSAX as a detector: the paper's historical discord comparator.

    Wraps :func:`hotsax_discords` behind the same ``detect``/``detect_batch``
    interface as every other method, so the evaluation harness (and the
    CLI's ``--method hotsax``) can run it through a shared executor pool.
    ``detect`` is a pure function of the constructor parameters and the
    series — a fresh generator is derived from ``seed`` per call — so batch
    fan-out across any backend reproduces the serial results exactly.

    Parameters
    ----------
    window:
        Discord length.
    paa_size, alphabet_size:
        SAX parameters of the heuristic loop ordering (defaults follow [9]).
    exclusion:
        Self-match exclusion half-width; defaults to ``ceil(window / 4)``.
    seed:
        Seed of the randomized loop orders (search speed only; the
        discovered discords are seed-independent).
    """

    def __init__(
        self,
        window: int,
        *,
        paa_size: int = 3,
        alphabet_size: int = 3,
        exclusion: int | None = None,
        seed: int = 0,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        self.window = int(window)
        self.paa_size = int(paa_size)
        self.alphabet_size = int(alphabet_size)
        self.exclusion = exclusion
        self.seed = int(seed)

    def detect(self, series: np.ndarray, k: int = 3) -> list[Anomaly]:
        """Top-``k`` non-overlapping HOTSAX discords as :class:`Anomaly` records."""
        discords = hotsax_discords(
            series,
            self.window,
            k,
            paa_size=self.paa_size,
            alphabet_size=self.alphabet_size,
            exclusion=self.exclusion,
            seed=self.seed,
        )
        return [
            Anomaly(position=d.position, length=d.length, score=d.distance, rank=rank)
            for rank, d in enumerate(discords, start=1)
        ]
