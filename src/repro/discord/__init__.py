"""Distance-based discord discovery — the paper's state-of-the-art comparator.

- :mod:`repro.discord.matrix_profile` — z-normalized all-subsequence 1-NN
  distances: brute force (reference), MASS (FFT distance profile), STAMP and
  STOMP [23] (the implementation the paper benchmarks against).
- :mod:`repro.discord.discords` — top-k non-overlapping discord extraction
  and the :class:`DiscordDetector` used as the "Discord" baseline.
- :mod:`repro.discord.hotsax` — HOTSAX [9], the original heuristic discord
  algorithm, included as the paper's historical comparator.
"""

from repro.discord.discords import Discord, DiscordDetector, top_discords
from repro.discord.hotsax import HotSaxDetector, hotsax_discords
from repro.discord.matrix_profile import (
    MatrixProfile,
    mass,
    matrix_profile_brute,
    matrix_profile_stamp,
    matrix_profile_stomp,
)

__all__ = [
    "Discord",
    "DiscordDetector",
    "HotSaxDetector",
    "MatrixProfile",
    "hotsax_discords",
    "mass",
    "matrix_profile_brute",
    "matrix_profile_stamp",
    "matrix_profile_stomp",
    "top_discords",
]
