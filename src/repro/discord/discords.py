"""Top-k discord extraction and the Discord baseline detector.

A *discord* (Keogh et al. [9]) is the subsequence with the largest 1-NN
distance. Given a matrix profile, the top-k discords are its k largest
values whose subsequences do not overlap — mirroring the paper's evaluation
protocol where each method reports three non-overlapping candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.anomaly import Anomaly
from repro.core.executors import StatelessBatchMixin
from repro.discord.matrix_profile import MatrixProfile, matrix_profile_stomp
from repro.utils.validation import ensure_time_series, validate_window


@dataclass(frozen=True)
class Discord:
    """One discord: a subsequence unusually far from its nearest neighbour."""

    position: int
    length: int
    distance: float
    neighbour: int

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ValueError(f"position must be non-negative, got {self.position}")
        if self.length < 1:
            raise ValueError(f"length must be positive, got {self.length}")
        if self.distance < 0:
            raise ValueError(f"distance must be non-negative, got {self.distance}")


def top_discords(profile: MatrixProfile, k: int = 3) -> list[Discord]:
    """The ``k`` largest non-overlapping matrix-profile entries.

    Greedy selection: take the global maximum, mask every start whose window
    would overlap it, repeat. Entries that are infinite (no valid neighbour)
    or already masked are skipped; fewer than ``k`` discords may be returned.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    values = profile.profile.astype(np.float64).copy()
    values[~np.isfinite(values)] = -np.inf
    discords: list[Discord] = []
    window = profile.window
    for _ in range(k):
        position = int(np.argmax(values))
        if not np.isfinite(values[position]):
            break
        discords.append(
            Discord(
                position=position,
                length=window,
                distance=float(profile.profile[position]),
                neighbour=int(profile.indices[position]),
            )
        )
        low = max(0, position - window + 1)
        high = min(len(values), position + window)
        values[low:high] = -np.inf
    return discords


class DiscordDetector(StatelessBatchMixin):
    """The paper's "Discord" baseline: STOMP matrix profile + top-k discords.

    Parameters
    ----------
    window:
        Subsequence (discord) length — the parameter the paper notes must be
        chosen in advance for distance-based methods.
    exclusion:
        Trivial-match exclusion half-width; defaults to ``ceil(window / 4)``.

    Example
    -------
    >>> import numpy as np
    >>> rng = np.random.default_rng(7)
    >>> series = np.sin(np.linspace(0, 40 * np.pi, 2000))
    >>> series[1000:1050] += 2.0  # plant a bump
    >>> detector = DiscordDetector(window=50)
    >>> top = detector.detect(series, k=1)[0]
    >>> 950 <= top.position <= 1050
    True
    """

    def __init__(self, window: int, exclusion: int | None = None) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        self.window = int(window)
        self.exclusion = exclusion

    def matrix_profile(self, series: np.ndarray) -> MatrixProfile:
        """Compute the STOMP matrix profile for ``series``."""
        series = ensure_time_series(series, name="series", min_length=2)
        validate_window(self.window, len(series))
        return matrix_profile_stomp(series, self.window, self.exclusion)

    def detect(self, series: np.ndarray, k: int = 3) -> list[Anomaly]:
        """Top-``k`` non-overlapping discords as :class:`Anomaly` records."""
        discords = top_discords(self.matrix_profile(series), k)
        return [
            Anomaly(position=d.position, length=d.length, score=d.distance, rank=rank)
            for rank, d in enumerate(discords, start=1)
        ]
