"""Matrix profile computation: brute force, MASS, STAMP [21], STOMP [23].

The matrix profile of a series ``T`` for subsequence length ``m`` stores, for
every subsequence, the z-normalized Euclidean distance to its nearest
non-trivial neighbour (1-NN). Discords — the paper's distance-based anomaly
baseline — are the subsequences with the largest profile values.

Conventions (matching the matrix-profile literature / STUMPY):

- z-normalization uses the population standard deviation (``ddof=0``);
- trivial matches are suppressed with an exclusion zone of ``ceil(m / 4)``
  around the diagonal;
- a pair of constant subsequences has distance 0; a constant vs non-constant
  pair has distance ``sqrt(m)``.

``matrix_profile_stomp`` is the O(N^2) dot-product-recurrence algorithm the
paper uses for its "Discord" baseline and scalability comparison;
``matrix_profile_brute`` is the O(N^2 m) reference used by the tests;
``mass``/``matrix_profile_stamp`` provide the FFT-based variant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.fft import irfft, rfft
from scipy.ndimage import maximum_filter1d, minimum_filter1d

from repro.utils.validation import ensure_time_series, validate_window

#: Subsequences whose std is below this fraction of their magnitude scale
#: are treated as constant (the prefix-sum variance is ill-conditioned past
#: this point, and the z-normalized distance is undefined for true constants).
_RELATIVE_STD_EPSILON = 1e-7


@dataclass(frozen=True)
class MatrixProfile:
    """A computed matrix profile.

    Attributes
    ----------
    profile:
        1-NN z-normalized Euclidean distance per subsequence start.
    indices:
        Position of each subsequence's nearest neighbour (-1 when the series
        is too short for any non-trivial neighbour).
    window:
        Subsequence length ``m``.
    exclusion:
        Half-width of the trivial-match exclusion zone used.
    """

    profile: np.ndarray
    indices: np.ndarray
    window: int
    exclusion: int

    def __len__(self) -> int:
        return len(self.profile)


def default_exclusion(window: int) -> int:
    """STUMPY-convention exclusion zone: ``ceil(m / 4)``."""
    return int(np.ceil(window / 4))


def _sliding_stats(
    series: np.ndarray, window: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rolling mean, population std, and constancy mask of every subsequence.

    The constancy mask combines an *exact* rolling-range test (O(N) via
    scipy's running min/max filters) with a relative std threshold, so
    exactly-flat windows are flagged regardless of magnitude and
    near-constant windows are flagged before the prefix-sum variance becomes
    ill-conditioned. All matrix-profile variants share this mask, which is
    part of the distance definition.
    """
    prefix = np.concatenate(([0.0], np.cumsum(series)))
    prefix_sq = np.concatenate(([0.0], np.cumsum(series**2)))
    totals = prefix[window:] - prefix[:-window]
    totals_sq = prefix_sq[window:] - prefix_sq[:-window]
    means = totals / window
    variances = np.maximum(totals_sq / window - means**2, 0.0)
    stds = np.sqrt(variances)
    n_subs = len(series) - window + 1
    shift = window // 2
    highs = maximum_filter1d(series, window, mode="nearest")[shift : shift + n_subs]
    lows = minimum_filter1d(series, window, mode="nearest")[shift : shift + n_subs]
    scale = np.maximum(np.abs(means), 1.0)
    constant = (highs - lows <= 0.0) | (stds <= _RELATIVE_STD_EPSILON * scale)
    return means, stds, constant


def _is_constant(values: np.ndarray) -> bool:
    """Single-subsequence constancy test, consistent with the rolling mask."""
    if np.ptp(values) <= 0.0:
        return True
    scale = max(abs(float(values.mean())), 1.0)
    return float(values.std()) <= _RELATIVE_STD_EPSILON * scale


def _pair_distances(
    dots: np.ndarray,
    mean_i: float,
    std_i: float,
    i_constant: bool,
    means: np.ndarray,
    stds: np.ndarray,
    constant: np.ndarray,
    window: int,
) -> np.ndarray:
    """Distances of one subsequence to all others, from raw dot products.

    ``d^2 = 2m (1 - (QT - m mu_i mu_j) / (m sigma_i sigma_j))`` with the
    constant-subsequence conventions described in the module docstring.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        correlations = (dots - window * mean_i * means) / (window * std_i * stds)
    squared = 2.0 * window * (1.0 - correlations)
    distances = np.sqrt(np.maximum(squared, 0.0))
    if i_constant:
        distances = np.where(constant, 0.0, np.sqrt(window))
    else:
        distances = np.where(constant, np.sqrt(window), distances)
    return distances


def sliding_dot_products(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Dot product of ``query`` with every same-length window of ``series``.

    FFT convolution, O(N log N) — the core of MASS.
    """
    query = ensure_time_series(query, name="query")
    series = ensure_time_series(series, name="series")
    m = len(query)
    n = len(series)
    if m > n:
        raise ValueError(f"query (len {m}) longer than series (len {n})")
    size = n + m - 1
    transform = rfft(series, size) * rfft(query[::-1], size)
    correlation = irfft(transform, size)
    return correlation[m - 1 : n]


def mass(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """MASS: z-normalized Euclidean distance profile of ``query`` vs ``series``.

    Mueen's Algorithm for Similarity Search — one FFT convolution plus O(N)
    arithmetic (Rakthanmanon et al. 2012). No exclusion zone is applied; use
    :func:`matrix_profile_stamp` for self-joins.
    """
    query = ensure_time_series(query, name="query")
    series = ensure_time_series(series, name="series")
    m = len(query)
    dots = sliding_dot_products(query, series)
    means, stds, constant = _sliding_stats(series, m)
    query_mean = float(query.mean())
    query_std = float(query.std())
    return _pair_distances(
        dots, query_mean, query_std, _is_constant(query), means, stds, constant, m
    )


def _apply_exclusion(distances: np.ndarray, center: int, exclusion: int) -> None:
    low = max(0, center - exclusion)
    high = min(len(distances), center + exclusion + 1)
    distances[low:high] = np.inf


def matrix_profile_brute(
    series: np.ndarray,
    window: int,
    exclusion: int | None = None,
) -> MatrixProfile:
    """Reference O(N^2 m) matrix profile; use only on small inputs (tests)."""
    series = ensure_time_series(series, name="series", min_length=2)
    window = validate_window(window, len(series))
    exclusion = default_exclusion(window) if exclusion is None else int(exclusion)
    n_subs = len(series) - window + 1
    constant = np.array([_is_constant(series[i : i + window]) for i in range(n_subs)])
    normalized = np.empty((n_subs, window))
    for i in range(n_subs):
        sub = series[i : i + window]
        if constant[i]:
            normalized[i] = 0.0
        else:
            normalized[i] = (sub - sub.mean()) / sub.std()
    profile = np.full(n_subs, np.inf)
    indices = np.full(n_subs, -1, dtype=np.int64)
    for i in range(n_subs):
        distances = np.sqrt(np.sum((normalized - normalized[i]) ** 2, axis=1))
        # Constant-subsequence conventions (shared with the fast variants).
        if constant[i]:
            distances = np.where(constant, 0.0, np.sqrt(window))
        else:
            distances = np.where(constant, np.sqrt(window), distances)
        _apply_exclusion(distances, i, exclusion)
        best = int(np.argmin(distances))
        if np.isfinite(distances[best]):
            profile[i] = distances[best]
            indices[i] = best
    return MatrixProfile(profile, indices, window, exclusion)


def matrix_profile_stamp(
    series: np.ndarray,
    window: int,
    exclusion: int | None = None,
) -> MatrixProfile:
    """STAMP [21]: one MASS distance profile per subsequence, O(N^2 log N)."""
    series = ensure_time_series(series, name="series", min_length=2)
    window = validate_window(window, len(series))
    exclusion = default_exclusion(window) if exclusion is None else int(exclusion)
    n_subs = len(series) - window + 1
    profile = np.full(n_subs, np.inf)
    indices = np.full(n_subs, -1, dtype=np.int64)
    for i in range(n_subs):
        distances = mass(series[i : i + window], series)
        _apply_exclusion(distances, i, exclusion)
        best = int(np.argmin(distances))
        if np.isfinite(distances[best]):
            profile[i] = distances[best]
            indices[i] = best
    return MatrixProfile(profile, indices, window, exclusion)


def matrix_profile_stomp(
    series: np.ndarray,
    window: int,
    exclusion: int | None = None,
) -> MatrixProfile:
    """STOMP [23]: O(N^2) matrix profile via the QT dot-product recurrence.

    ``QT_i[j] = QT_{i-1}[j-1] - T[i-1] T[j-1] + T[i+m-1] T[j+m-1]`` lets each
    row of the (never materialized) distance matrix be derived from the
    previous one with O(N) arithmetic. This is the implementation behind the
    "Discord" baseline in Tables 4–6 and the scalability curves of Figure 8.
    """
    series = ensure_time_series(series, name="series", min_length=2)
    window = validate_window(window, len(series))
    exclusion = default_exclusion(window) if exclusion is None else int(exclusion)
    m = window
    n_subs = len(series) - m + 1
    means, stds, constant = _sliding_stats(series, m)
    # First row exactly; every later row by the recurrence.
    first_row = sliding_dot_products(series[:m], series)
    dots = first_row.copy()
    profile = np.full(n_subs, np.inf)
    indices = np.full(n_subs, -1, dtype=np.int64)

    def _update(i: int, row_dots: np.ndarray) -> None:
        distances = _pair_distances(
            row_dots,
            float(means[i]),
            float(stds[i]),
            bool(constant[i]),
            means,
            stds,
            constant,
            m,
        )
        _apply_exclusion(distances, i, exclusion)
        best = int(np.argmin(distances))
        if np.isfinite(distances[best]):
            if distances[best] < profile[i]:
                profile[i] = distances[best]
                indices[i] = best

    _update(0, dots)
    head = series[: n_subs - 1]  # T[i-1] terms, aligned for the shifted row
    tail = series[m : m + n_subs - 1]  # T[i+m-1] terms
    for i in range(1, n_subs):
        # Shift right: entry j derives from entry j-1 of the previous row.
        dots[1:] = dots[:-1] - series[i - 1] * head + series[i + m - 1] * tail
        dots[0] = first_row[i]
        _update(i, dots)
    return MatrixProfile(profile, indices, window, exclusion)
