"""Pluggable member/batch executors: serial, thread, and process backends.

PR 1 made ensemble execution parallel, but every parallel ``detect()`` call
paid process-pool spawn/teardown and pickled the full series once per task.
This module makes the execution strategy a first-class, *reusable* object:

- :class:`SerialExecutor` — runs tasks inline, in submission order. The
  reference backend: every other backend must produce bitwise-identical
  results (the contract of ``tests/test_executor_parity.py``).
- :class:`ThreadExecutor` — a reusable thread pool. The right choice for
  GIL-releasing numpy-heavy tasks and for workloads dominated by many small
  tasks, where process spawn and argument pickling would dominate. Series
  are passed by reference (no copies at all).
- :class:`ProcessExecutor` — a reusable process pool that passes input
  series through POSIX shared memory (:mod:`multiprocessing.shared_memory`)
  instead of pickling them into every task payload. The pool is created
  lazily on first use and *kept alive* across repeated calls, so a detector
  that holds one pays spawn cost once, not per ``detect()``.

All backends implement the same :class:`MemberExecutor` interface::

    with ProcessExecutor(max_workers=4) as executor:
        detector = EnsembleGrammarDetector(window=100, executor=executor)
        detector.detect(series_a)   # pool spawns here
        detector.detect(series_b)   # ...and is reused here

Series passing
--------------
``share_series()`` publishes a float64 series to the executor's workers and
returns a handle whose picklable ``ref`` goes into task payloads; workers
call :func:`resolve_series` to get the array back. The serial and thread
backends hand the array over by reference; the process backend copies it
once into a shared-memory segment that every worker attaches to, so a
series scanned by many tasks crosses the process boundary zero times. On
platforms without usable shared memory the process backend silently falls
back to inline (pickled) payloads — results are identical either way.

Handles own their segment: ``close()`` (or the ``with`` block) unlinks it,
and the engine's callers close handles even when a worker raises, so no
``/dev/shm`` segments outlive a call.
"""

from __future__ import annotations

import abc
import itertools
import os
import threading
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "BatchItemError",
    "EXECUTOR_KINDS",
    "EXECUTOR_SPECS",
    "ExecutorOwnerMixin",
    "MemberExecutor",
    "ProcessExecutor",
    "SerialExecutor",
    "SeriesHandle",
    "SharedSeriesRef",
    "StatelessBatchMixin",
    "ThreadExecutor",
    "as_executor",
    "detect_many",
    "make_executor",
    "open_executor",
    "resolve_series",
]

#: The in-process executor backends (what the parity suite parametrizes
#: over by default; the distributed backends live in
#: :mod:`repro.core.cluster` and are named via :data:`EXECUTOR_SPECS`).
EXECUTOR_KINDS = ("serial", "thread", "process")

#: Every spec form :func:`as_executor` accepts — the single source of the
#: CLI help and of "unknown executor" error messages.
EXECUTOR_SPECS = ("serial", "thread", "process", "cluster[:HOST:PORT]", "dask[:ADDRESS]")

#: Prefix of every shared-memory segment this library creates (leak checks
#: in the test suite key on it).
SHM_PREFIX = "repro"

_shm_counter = itertools.count()


def _resolve_workers(max_workers: int | None) -> int:
    if max_workers is None:
        return max(os.cpu_count() or 1, 1)
    max_workers = int(max_workers)
    if max_workers < 1:
        raise ValueError(f"max_workers must be a positive integer or None, got {max_workers}")
    return max_workers


# ----------------------------------------------------------------------
# Series passing.
# ----------------------------------------------------------------------


def _as_series_1d(series) -> np.ndarray:
    """Contiguous float64 1-D view/copy of ``series``; rejects other shapes.

    Every detector consumes 1-D series; refusing other shapes here keeps the
    shared-memory path from silently flattening a 2-D input into a wrong
    series (the ref records only a length).
    """
    series = np.ascontiguousarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-dimensional, got shape {series.shape}")
    return series


@dataclass(frozen=True)
class SharedSeriesRef:
    """Picklable pointer to a series published in a shared-memory segment."""

    name: str
    length: int


def resolve_series(ref) -> np.ndarray:
    """Materialize the series behind a task payload's series reference.

    Inline references (plain arrays) are returned as-is; shared-memory
    references are attached, copied into a process-local array, and detached
    immediately — the copy is a bitwise-exact memcpy, so results never
    depend on how the series travelled.
    """
    if isinstance(ref, SharedSeriesRef):
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=ref.name)
        try:
            view = np.ndarray((ref.length,), dtype=np.float64, buffer=segment.buf)
            series = np.array(view)  # owned copy; outlives the segment
            del view
        finally:
            segment.close()
        return series
    resolver = getattr(ref, "resolve", None)
    if resolver is not None:
        # Self-resolving references (the cluster backend's content-addressed
        # blob refs) materialize themselves from worker-local storage.
        return np.asarray(resolver(), dtype=np.float64)
    return np.asarray(ref, dtype=np.float64)


class SeriesHandle:
    """A series published to an executor's workers.

    ``ref`` is what goes into task payloads (resolved by
    :func:`resolve_series` on the worker side); ``close()`` withdraws the
    series, releasing any shared-memory segment backing it. Handles are
    context managers and close is idempotent.
    """

    def __init__(self, ref) -> None:
        self.ref = ref

    def close(self) -> None:  # noqa: B027 — inline handles own nothing
        """Release whatever backs this handle (idempotent)."""

    def __enter__(self) -> "SeriesHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _SharedMemorySeriesHandle(SeriesHandle):
    """Owns one shared-memory segment holding a float64 series."""

    def __init__(self, series: np.ndarray) -> None:
        from multiprocessing import shared_memory

        series = _as_series_1d(series)
        name = f"{SHM_PREFIX}-{os.getpid()}-{next(_shm_counter)}"
        self._segment = shared_memory.SharedMemory(
            create=True, size=max(series.nbytes, 1), name=name
        )
        buffer = np.ndarray(series.shape, dtype=np.float64, buffer=self._segment.buf)
        buffer[:] = series
        del buffer
        super().__init__(SharedSeriesRef(self._segment.name, len(series)))

    def close(self) -> None:
        segment, self._segment = self._segment, None
        if segment is None:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover — already unlinked
            pass


# ----------------------------------------------------------------------
# The executor interface.
# ----------------------------------------------------------------------


class MemberExecutor(abc.ABC):
    """Strategy object for running independent detection tasks.

    Implementations must satisfy the parity contract: for a deterministic
    task function, ``map`` returns exactly what ``[fn(p) for p in payloads]``
    would, and ``imap_unordered`` yields the same ``(index, result)`` pairs
    in some completion order. Executors are context managers; ``close()``
    releases pooled resources and is idempotent, and a closed executor
    refuses further work.
    """

    #: Registry name of the backend (``"serial"``/``"thread"``/``"process"``).
    kind: str = "abstract"

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = _resolve_workers(max_workers)
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    @property
    def max_workers(self) -> int:
        """Upper bound on concurrently running tasks."""
        return self._max_workers

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (closed executors refuse work)."""
        return self._closed

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of live worker *processes* (empty for in-process backends).

        The serving subsystem exposes these through its ``/stats`` endpoint
        so operators (and the shutdown leak tests) can verify that closing
        the service leaves no orphaned workers behind.
        """
        return ()

    def close(self) -> None:
        """Release pooled resources (idempotent)."""
        self._closed = True

    def __enter__(self) -> "MemberExecutor":
        self._check_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"{type(self).__name__}(max_workers={self._max_workers}, {state})"

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    # -- series passing -------------------------------------------------

    def share_series(self, series: np.ndarray) -> SeriesHandle:
        """Publish ``series`` to this executor's workers.

        The default passes the array by reference (correct for in-process
        backends); the process backend overrides this with a shared-memory
        segment. Only 1-D series are accepted on any backend.
        """
        self._check_open()
        return SeriesHandle(_as_series_1d(series))

    # -- execution ------------------------------------------------------

    @abc.abstractmethod
    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list:
        """Run ``fn`` over ``payloads``; results in payload order."""

    @abc.abstractmethod
    def imap_unordered(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        return_exceptions: bool = False,
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, fn(payloads[index]))`` as tasks complete.

        Abandoning the iterator cancels tasks that have not started and
        waits for running ones, so resources published to the workers (e.g.
        shared-memory series) can be withdrawn safely afterwards.

        With ``return_exceptions=True`` a task failure does not abort the
        iteration: the raised exception is yielded as that task's result
        instead, and every remaining task still runs. This is what lets the
        batch layers report *partial* failures (one corrupt series in a
        batch fails that series, not the batch).
        """


class SerialExecutor(MemberExecutor):
    """Run every task inline, in submission order — the parity reference."""

    kind = "serial"

    def __init__(self, max_workers: int | None = 1) -> None:
        super().__init__(1 if max_workers is None else max_workers)

    def map(self, fn, payloads):
        """Run ``fn`` over ``payloads`` inline; the reference semantics."""
        self._check_open()
        return [fn(payload) for payload in payloads]

    def imap_unordered(self, fn, payloads, *, return_exceptions=False):
        """Yield ``(index, result)`` pairs lazily, in submission order."""
        self._check_open()  # at the call, as the interface promises
        if not return_exceptions:
            return ((index, fn(payload)) for index, payload in enumerate(payloads))

        def _iterate():
            for index, payload in enumerate(payloads):
                try:
                    result = fn(payload)
                except Exception as error:
                    result = error
                yield index, result

        return _iterate()


class _PooledExecutor(MemberExecutor):
    """Shared plumbing of the thread and process backends.

    The underlying pool is created lazily on first use and kept alive until
    ``close()`` — repeated calls through one executor reuse the same
    workers, which is what removes the per-call spawn cost that dominated
    PR 1 on short series.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        self._pool = None
        self._lock = threading.Lock()

    @abc.abstractmethod
    def _create_pool(self):
        """Build the backing ``concurrent.futures`` pool."""

    @property
    def pool_started(self) -> bool:
        """Whether the lazy pool has been spawned yet."""
        return self._pool is not None

    def _ensure_pool(self):
        with self._lock:
            # The closed check lives inside the lock (close() flips the flag
            # under the same lock), so a concurrent close() can never let a
            # straggler respawn a pool nobody will shut down.
            self._check_open()
            if self._pool is None:
                self._pool = self._create_pool()
            return self._pool

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def map(self, fn, payloads):
        pool = self._ensure_pool()
        futures = [pool.submit(fn, payload) for payload in payloads]
        try:
            return [future.result() for future in futures]
        finally:
            _drain_futures(futures)

    def imap_unordered(self, fn, payloads, *, return_exceptions=False):
        # Submit eagerly (and run the closed check at the call, as the
        # interface promises); only the draining is deferred to iteration.
        pool = self._ensure_pool()
        futures = {pool.submit(fn, payload): index for index, payload in enumerate(payloads)}
        return self._drain_unordered(futures, return_exceptions)

    @staticmethod
    def _drain_unordered(
        futures: dict, return_exceptions: bool = False
    ) -> Iterator[tuple[int, Any]]:
        try:
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    if return_exceptions:
                        error = future.exception()
                        yield futures[future], future.result() if error is None else error
                    else:
                        yield futures[future], future.result()
        finally:
            _drain_futures(list(futures))


def _drain_futures(futures: list[Future]) -> None:
    """Cancel unstarted futures and wait out running ones.

    Called on every exit path (success, worker error, abandoned iterator) so
    that by the time the caller withdraws shared resources, no task is still
    executing or about to start.
    """
    running = [future for future in futures if not future.cancel()]
    wait(running)


class ThreadExecutor(_PooledExecutor):
    """A reusable thread pool.

    Best when member work releases the GIL (numpy-heavy PAA/interval math)
    or when tasks are so small that pickling would dominate: payloads and
    series are passed by reference with zero serialization.
    """

    kind = "thread"

    def _create_pool(self):
        return ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="repro-member"
        )


class ProcessExecutor(_PooledExecutor):
    """A reusable process pool with shared-memory series passing.

    The pool is spawned lazily on first use and survives across calls
    (context-manager + lazy-reuse semantics); ``share_series`` publishes the
    input once per call through ``multiprocessing.shared_memory`` instead of
    pickling it into every task payload. Where shared memory is unavailable
    (no ``/dev/shm`` or an over-restrictive sandbox), series fall back to
    inline payloads transparently.
    """

    kind = "process"

    def __init__(self, max_workers: int | None = None, *, use_shared_memory: bool = True) -> None:
        super().__init__(max_workers)
        self._use_shared_memory = bool(use_shared_memory)

    def _create_pool(self):
        return ProcessPoolExecutor(max_workers=self._max_workers)

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of the live pool processes (empty before the lazy spawn)."""
        pool = self._pool
        processes = getattr(pool, "_processes", None) if pool is not None else None
        if not processes:
            return ()
        return tuple(sorted(processes))

    def share_series(self, series: np.ndarray) -> SeriesHandle:
        """Publish ``series`` once via shared memory (inline fallback off-POSIX)."""
        self._check_open()
        if self._use_shared_memory:
            series = _as_series_1d(series)  # input errors must raise, not disable shm
            try:
                return _SharedMemorySeriesHandle(series)
            except OSError:  # pragma: no cover — no usable /dev/shm
                self._use_shared_memory = False
        return super().share_series(series)


# ----------------------------------------------------------------------
# Construction helpers.
# ----------------------------------------------------------------------

_EXECUTOR_CLASSES = {
    SerialExecutor.kind: SerialExecutor,
    ThreadExecutor.kind: ThreadExecutor,
    ProcessExecutor.kind: ProcessExecutor,
}


def _split_spec(spec: str) -> tuple[str, str | None]:
    """Split an executor spec into ``(backend name, optional address)``."""
    base, sep, argument = spec.partition(":")
    return base, (argument if sep else None)


def _check_spec(spec: str) -> None:
    """Validate an executor spec string without constructing anything."""
    base, argument = _split_spec(spec)
    if base in _EXECUTOR_CLASSES:
        if argument is not None:
            raise ValueError(
                f"executor {base!r} takes no address; expected one of {EXECUTOR_SPECS}"
            )
        return
    if base == "cluster":
        if argument is not None:
            # Function-level import: cluster.py imports this module at load
            # time, so the reverse import must stay out of module scope.
            from repro.core.cluster import parse_address

            parse_address(argument)
        return
    if base == "dask":
        return
    raise ValueError(f"unknown executor {spec!r}; expected one of {EXECUTOR_SPECS}")


def as_executor(spec: str, max_workers: int | None = None) -> MemberExecutor:
    """Instantiate an executor backend from a spec string.

    Accepted forms (see :data:`EXECUTOR_SPECS`):

    - ``"serial"`` / ``"thread"`` / ``"process"`` — the in-process backends;
    - ``"cluster"`` — a self-contained localhost cluster: bind an ephemeral
      port and spawn ``max_workers`` local worker subprocesses;
    - ``"cluster:HOST:PORT"`` — bind ``HOST:PORT`` and wait for externally
      started ``python -m repro worker`` processes (fleet mode);
    - ``"dask"`` / ``"dask:ADDRESS"`` — the dask adapter (requires the
      ``distributed`` package; raises a clear error without it).

    Results are bitwise identical across every backend; the spec only
    chooses where the work runs.
    """
    _check_spec(spec)
    base, argument = _split_spec(spec)
    if base in _EXECUTOR_CLASSES:
        return _EXECUTOR_CLASSES[base](max_workers)
    if base == "cluster":
        from repro.core.cluster import ClusterExecutor

        if argument is None:
            return ClusterExecutor(max_workers)
        return ClusterExecutor(max_workers, bind=argument)
    from repro.core.cluster import DaskExecutor

    return DaskExecutor(argument, max_workers)


def make_executor(kind: str, max_workers: int | None = None) -> MemberExecutor:
    """Instantiate a registered executor backend by name (or full spec).

    The historical name for :func:`as_executor`; both accept every form in
    :data:`EXECUTOR_SPECS`.
    """
    if not isinstance(kind, str):
        raise TypeError(f"executor spec must be a string, got {type(kind).__name__}")
    return as_executor(kind, max_workers)


def validate_executor_spec(executor) -> None:
    """Reject anything that is not ``None``, a valid spec string, or an executor."""
    if executor is None or isinstance(executor, MemberExecutor):
        return
    if isinstance(executor, str):
        _check_spec(executor)
        return
    raise TypeError(
        f"executor must be None, one of {EXECUTOR_SPECS}, or a MemberExecutor, "
        f"got {type(executor).__name__}"
    )


def _resolve_n_jobs(n_jobs: int | None) -> int:
    try:
        return _resolve_workers(n_jobs)
    except ValueError:
        raise ValueError(f"n_jobs must be a positive integer or None, got {n_jobs}") from None


def _resolve_executor(
    executor: MemberExecutor | str | None,
    n_jobs: int,
    task_count: int,
) -> tuple[MemberExecutor | None, bool]:
    """Pick the executor for a call; returns ``(executor, owned)``.

    ``None`` as the first element means "run the legacy inline path".
    Without an explicit executor, ``n_jobs`` keeps its PR-1 meaning: 1 runs
    inline, more creates a temporary process pool for just this call (and
    ``owned`` says the caller must close it). Naming a backend is asking
    for parallelism, so with the do-nothing default ``n_jobs`` (1) the pool
    is sized to every core — the same rule the ensemble detector applies;
    pass a live executor instance to control the worker count exactly.
    """
    validate_executor_spec(executor)
    if executor is None:
        if n_jobs == 1 or task_count <= 1:
            return None, False
        return ProcessExecutor(max_workers=n_jobs), True
    if isinstance(executor, str):
        return make_executor(executor, None if n_jobs <= 1 else n_jobs), True
    return executor, False


@contextmanager
def open_executor(executor, max_workers: int | None = None):
    """Yield a ready executor; close it on exit only if created here.

    ``executor`` may be a live :class:`MemberExecutor` (caller keeps
    ownership — nothing is closed) or a backend name from
    :data:`EXECUTOR_KINDS` (a temporary executor is created and closed when
    the block exits).
    """
    if isinstance(executor, MemberExecutor):
        yield executor
        return
    if not isinstance(executor, str):
        raise TypeError(
            f"executor must be a MemberExecutor or one of {EXECUTOR_SPECS}, "
            f"got {type(executor).__name__}"
        )
    owned = make_executor(executor, max_workers)
    try:
        yield owned
    finally:
        owned.close()


# ----------------------------------------------------------------------
# Executor ownership (detectors that hold a backend).
# ----------------------------------------------------------------------


class ExecutorOwnerMixin:
    """Lifecycle of a detector-held executor: borrowed, or spec-built lazily.

    A detector may receive a live :class:`MemberExecutor` (borrowed — the
    caller owns and closes it) or a backend name (the detector builds it
    lazily on first use, reuses it across calls, and releases it in
    :meth:`close`). Subclasses call :meth:`_init_executor` from their
    constructor and may override :meth:`_executor_pool_size` to size
    spec-built pools.
    """

    def _init_executor(self, executor: "MemberExecutor | str | None") -> None:
        validate_executor_spec(executor)
        #: Backend name to build the owned executor from (``executor="..."``).
        self._executor_spec = executor if isinstance(executor, str) else None
        #: Live executor: borrowed when passed in, lazily created otherwise.
        self._executor = executor if isinstance(executor, MemberExecutor) else None
        self._owns_executor = False

    def _executor_pool_size(self) -> int | None:
        """Worker count for a spec-built pool (``None`` = every core)."""
        return None

    @property
    def executor(self) -> "MemberExecutor | None":
        """The execution backend, or ``None`` for serial/n_jobs semantics.

        A backend configured by name is created lazily here and then reused
        by every subsequent call, so a process pool pays its spawn cost once
        per detector, not once per call.
        """
        if self._executor is None and self._executor_spec is not None:
            self._executor = make_executor(self._executor_spec, self._executor_pool_size())
            self._owns_executor = True
        return self._executor

    def close(self) -> None:
        """Release the detector-owned executor, if any (idempotent).

        Borrowed executors are left untouched — their owner closes them.
        After ``close`` the detector falls back to its serial/n_jobs
        semantics (the backend spec is dropped, not resurrected lazily).
        """
        executor, self._executor = self._executor, None
        self._executor_spec = None
        if executor is not None and self._owns_executor:
            executor.close()
        self._owns_executor = False

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Live pools don't cross process boundaries: a pickled detector
        # (e.g. the evaluation harness shipping it to a worker) falls back
        # to serial/n_jobs semantics on the other side.
        state = self.__dict__.copy()
        state["_executor"] = None
        state["_executor_spec"] = None
        state["_owns_executor"] = False
        return state


# ----------------------------------------------------------------------
# Batch fan-out plumbing shared by the ensemble engine and the baselines.
# ----------------------------------------------------------------------


class BatchItemError(RuntimeError):
    """A batch worker failed; records *which* input series it was handling.

    Attributes
    ----------
    index:
        Position of the failing series in the input batch.
    label:
        Caller-supplied label for the series (e.g. its file path in the
        CLI), or ``None``.
    cause_message:
        ``"ExceptionType: message"`` of the underlying error (kept as a
        string so the exception survives the process boundary).
    """

    def __init__(self, index: int, label: str | None, cause) -> None:
        self.index = int(index)
        self.label = None if label is None else str(label)
        if isinstance(cause, BaseException):
            self.cause_message = f"{type(cause).__name__}: {cause}"
        else:
            self.cause_message = str(cause)
        where = f"series {self.index}" if self.label is None else f"series {self.index} ({self.label})"
        super().__init__(f"batch {where} failed: {self.cause_message}")

    def __reduce__(self):
        # Exceptions cross process pools by pickling; rebuild from the
        # primitive fields rather than BaseException's args-based default.
        return (type(self), (self.index, self.label, self.cause_message))


def _wrap_batch_error(index: int, label: str | None, error: BaseException) -> BatchItemError:
    if isinstance(error, BatchItemError):
        return error
    return BatchItemError(index, label, error)


def _check_labels(labels, count: int) -> list[str] | None:
    if labels is None:
        return None
    labels = [str(label) for label in labels]
    if len(labels) != count:
        raise ValueError(f"got {len(labels)} labels for {count} series")
    return labels


def _detect_many_task(payload) -> list:
    """Worker: run a stateless detector on one series."""
    detector, series_ref, k, index, label = payload
    try:
        return detector.detect(resolve_series(series_ref), k)
    except Exception as error:
        raise _wrap_batch_error(index, label, error) from error


def share_series_batch(pool: MemberExecutor, stack, series_list, labels) -> list[SeriesHandle]:
    """Publish every series of a batch, attributing share-time failures.

    Handles are registered on the caller's ``ExitStack``; a series the
    executor refuses (e.g. a 2-D array on the shared-memory path) raises
    :class:`BatchItemError` naming its index/label — the same error shape a
    worker-side validation failure produces, so callers see one contract
    regardless of where in the pipeline the input was rejected.
    """
    handles: list[SeriesHandle] = []
    for index, series in enumerate(series_list):
        try:
            handles.append(stack.enter_context(pool.share_series(series)))
        except (ValueError, TypeError) as error:
            label = None if labels is None else labels[index]
            raise _wrap_batch_error(index, label, error) from error
    return handles


class StatelessBatchMixin:
    """Adds ``detect_batch`` to detectors whose ``detect`` is a pure function.

    Correct exactly when ``detect(series, k)`` depends only on the
    constructor parameters and the series — which holds for the discord,
    HOT SAX, RRA, and fixed-parameter GI detectors. The fan-out runs through
    :func:`detect_many`, so these baselines share the exact executor
    machinery (and pools) the ensemble uses.
    """

    def detect_batch(
        self,
        series_iterable,
        k: int = 3,
        *,
        n_jobs: int | None = 1,
        executor: MemberExecutor | str | None = None,
        labels: Sequence[str] | None = None,
        return_exceptions: bool = False,
    ) -> list[list]:
        """Run :meth:`detect` over many independent series.

        Results are in input order and identical across executor backends;
        series reach process workers via shared memory, and a failing series
        raises :class:`BatchItemError` naming its index/label (or fills its
        result slot with the error under ``return_exceptions=True``). See
        :func:`detect_many`.
        """
        return detect_many(
            self,
            series_iterable,
            k,
            n_jobs=n_jobs,
            executor=executor,
            labels=labels,
            return_exceptions=return_exceptions,
        )


def detect_many(
    detector,
    series_iterable: Iterable[np.ndarray],
    k: int = 3,
    *,
    n_jobs: int | None = 1,
    executor: MemberExecutor | str | None = None,
    labels: Sequence[str] | None = None,
    return_exceptions: bool = False,
) -> list[list]:
    """Run a *stateless* detector over many independent series.

    The baselines' counterpart of the engine's ``detect_batch``: the
    detector object itself is applied to every series (no per-series
    reseeding), which is correct exactly when ``detect()`` is a pure
    function of the constructor parameters and the series — true for the
    discord, HOT SAX, RRA, and fixed-parameter GI detectors. The detector is
    pickled into process workers; the series travel via shared memory.
    Results are in input order and identical across backends; failures raise
    :class:`BatchItemError` — or, with ``return_exceptions=True``, land in
    the failing series' result slot as the :class:`BatchItemError` itself
    while every other series still completes.
    """
    series_list = [np.asarray(series, dtype=np.float64) for series in series_iterable]
    labels = _check_labels(labels, len(series_list))
    if not series_list:
        return []
    n_jobs = _resolve_n_jobs(n_jobs)
    pool, owned = _resolve_executor(executor, n_jobs, len(series_list))
    if pool is None:
        results = []
        for index, series in enumerate(series_list):
            label = None if labels is None else labels[index]
            payload = (detector, series, int(k), index, label)
            if return_exceptions:
                try:
                    results.append(_detect_many_task(payload))
                except BatchItemError as error:
                    results.append(error)
            else:
                results.append(_detect_many_task(payload))
        return results
    results = [None] * len(series_list)  # type: ignore[list-item]
    with ExitStack() as stack:
        if owned:
            stack.callback(pool.close)
        handles = share_series_batch(pool, stack, series_list, labels)
        payloads = [
            (
                detector,
                handle.ref,
                int(k),
                index,
                None if labels is None else labels[index],
            )
            for index, handle in enumerate(handles)
        ]
        for index, anomalies in pool.imap_unordered(
            _detect_many_task, payloads, return_exceptions=return_exceptions
        ):
            if isinstance(anomalies, BaseException):
                anomalies = _wrap_batch_error(
                    index, None if labels is None else labels[index], anomalies
                )
            results[index] = anomalies
    return results
