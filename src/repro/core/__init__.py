"""The paper's core contribution: grammar-induction anomaly detection and
its ensemble variant (Sections 5–6).

- :mod:`repro.core.anomaly` — anomaly records, candidate extraction from a
  density curve, and the detector protocol shared by all methods.
- :mod:`repro.core.detector` — single-run grammar-induction detector
  (discretize → Sequitur → rule density → rank minima).
- :mod:`repro.core.multiresolution` — shared-prefix-sum multi-resolution
  discretizer (Section 6.2) that the ensemble's members reuse.
- :mod:`repro.core.selection` — std-based member filtering and max
  normalization (Sections 6.1.1–6.1.2).
- :mod:`repro.core.combiners` — median/mean/max point-wise combination
  (Section 6.1.3).
- :mod:`repro.core.ensemble` — Algorithm 1, the ensemble rule density curve
  detector.
- :mod:`repro.core.engine` — the execution engine: shared stream state for
  streaming ensembles, process-pool member execution (``n_jobs``), and the
  :func:`~repro.core.engine.detect_batch` fan-out over independent series.
"""

from repro.core.anomaly import Anomaly, AnomalyDetector, extract_candidates
from repro.core.combiners import combine_curves
from repro.core.detector import GrammarAnomalyDetector
from repro.core.engine import SharedStreamState, detect_batch
from repro.core.ensemble import EnsembleGrammarDetector, EnsembleReport, combine_and_detect
from repro.core.multiresolution import MultiResolutionDiscretizer
from repro.core.selection import normalize_curve, select_by_std
from repro.core.streaming import StreamingEnsembleDetector, StreamingGrammarDetector

__all__ = [
    "Anomaly",
    "AnomalyDetector",
    "EnsembleGrammarDetector",
    "EnsembleReport",
    "GrammarAnomalyDetector",
    "MultiResolutionDiscretizer",
    "SharedStreamState",
    "StreamingEnsembleDetector",
    "StreamingGrammarDetector",
    "combine_and_detect",
    "combine_curves",
    "detect_batch",
    "extract_candidates",
    "normalize_curve",
    "select_by_std",
]
