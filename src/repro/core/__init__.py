"""The paper's core contribution: grammar-induction anomaly detection and
its ensemble variant (Sections 5–6).

- :mod:`repro.core.anomaly` — anomaly records, candidate extraction from a
  density curve, and the detector protocol shared by all methods.
- :mod:`repro.core.detector` — single-run grammar-induction detector
  (discretize → Sequitur → rule density → rank minima).
- :mod:`repro.core.multiresolution` — shared-prefix-sum multi-resolution
  discretizer (Section 6.2) that the ensemble's members reuse.
- :mod:`repro.core.selection` — std-based member filtering and max
  normalization (Sections 6.1.1–6.1.2).
- :mod:`repro.core.combiners` — median/mean/max point-wise combination
  (Section 6.1.3).
- :mod:`repro.core.ensemble` — Algorithm 1, the ensemble rule density curve
  detector.
- :mod:`repro.core.executors` — the pluggable execution backends
  (serial/thread/process) with shared-memory series passing and reusable
  pools.
- :mod:`repro.core.cluster` — the cross-machine backends behind the same
  interface: the stdlib TCP cluster executor (scheduler + ``repro worker``
  fleet) and the import-guarded dask adapter.
- :mod:`repro.core.engine` — the execution engine: shared stream state for
  streaming ensembles, executor-driven member execution, and the
  :func:`~repro.core.engine.detect_batch` /
  :func:`~repro.core.engine.iter_detect_batch` fan-out over independent
  series.
"""

from repro.core.anomaly import Anomaly, AnomalyDetector, extract_candidates
from repro.core.combiners import combine_curves
from repro.core.detector import GrammarAnomalyDetector
from repro.core.engine import (
    EVICTION_POLICIES,
    BatchItemError,
    SharedStreamState,
    detect_batch,
    detect_many,
    iter_detect_batch,
)
from repro.core.cluster import ClusterExecutor, DaskExecutor
from repro.core.ensemble import EnsembleGrammarDetector, EnsembleReport, combine_and_detect
from repro.core.executors import (
    EXECUTOR_KINDS,
    EXECUTOR_SPECS,
    MemberExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    as_executor,
    make_executor,
)
from repro.core.multiresolution import MultiResolutionDiscretizer
from repro.core.selection import normalize_curve, select_by_std
from repro.core.streaming import StreamingEnsembleDetector, StreamingGrammarDetector

__all__ = [
    "Anomaly",
    "AnomalyDetector",
    "BatchItemError",
    "ClusterExecutor",
    "DaskExecutor",
    "EVICTION_POLICIES",
    "EXECUTOR_KINDS",
    "EXECUTOR_SPECS",
    "EnsembleGrammarDetector",
    "EnsembleReport",
    "GrammarAnomalyDetector",
    "MemberExecutor",
    "MultiResolutionDiscretizer",
    "ProcessExecutor",
    "SerialExecutor",
    "SharedStreamState",
    "StreamingEnsembleDetector",
    "StreamingGrammarDetector",
    "ThreadExecutor",
    "as_executor",
    "combine_and_detect",
    "combine_curves",
    "detect_batch",
    "detect_many",
    "extract_candidates",
    "iter_detect_batch",
    "make_executor",
    "normalize_curve",
    "select_by_std",
]
