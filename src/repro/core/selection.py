"""Ensemble member quality filtering and normalization (Sections 6.1.1–6.1.2).

- :func:`select_by_std` ranks rule density curves by standard deviation
  (descending) and keeps the top ``tau`` fraction: a curve with near-uniform
  rule coverage says nothing about where anomalies are, while high variance
  means the grammar separated dense structure from sparse candidates
  (Figure 5 of the paper).
- :func:`normalize_curve` rescales a curve into [0, 1] by dividing by its
  maximum. The paper deliberately avoids min–max normalization so that
  zero density — the strongest anomaly signal — stays exactly zero.
"""

from __future__ import annotations

import math

import numpy as np


def curve_std(curve: np.ndarray) -> float:
    """Standard deviation of a curve (the member quality statistic)."""
    return float(np.asarray(curve, dtype=np.float64).std())


def select_by_std(
    curves: list[np.ndarray],
    selectivity: float,
) -> list[int]:
    """Indices of the top ``selectivity`` fraction of curves by std, descending.

    Parameters
    ----------
    curves:
        Candidate rule density curves.
    selectivity:
        The paper's ``tau`` in (0, 1]; at least one curve is always kept.

    Returns
    -------
    list[int]
        Indices into ``curves`` of the kept members, best (highest std)
        first. Ties are broken by original index for determinism.
    """
    if not curves:
        raise ValueError("no curves to select from")
    if not 0.0 < selectivity <= 1.0:
        raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
    # "Top tau fraction" means every member inside the fraction is kept, so
    # the count is the *ceiling* of tau * N — and, unlike banker's rounding,
    # ceil keeps the count monotonic in tau. The decimal pre-round absorbs
    # binary representation noise (0.4 * 50 is 20.000000000000004 in
    # floats, which must stay 20 kept members, not jump to 21).
    keep = min(len(curves), max(1, math.ceil(round(selectivity * len(curves), 9))))
    stds = np.array([curve_std(curve) for curve in curves])
    # argsort on (-std, index): descending std, stable on ties.
    order = np.lexsort((np.arange(len(curves)), -stds))
    return [int(i) for i in order[:keep]]


def normalize_curve(curve: np.ndarray) -> np.ndarray:
    """Scale a non-negative curve to [0, 1] by its maximum.

    A zero (or all-zero) curve is returned as zeros rather than dividing by
    zero; zero values stay exactly zero by construction, preserving "the
    significance of the locations where the rule density is zero".
    """
    array = np.asarray(curve, dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot normalize an empty curve")
    if np.any(array < 0):
        raise ValueError("rule density curves are non-negative by construction")
    peak = array.max()
    if peak <= 0.0:
        return np.zeros_like(array)
    return array / peak
