"""Anomaly records, the common detector protocol, and candidate extraction
from a rule density curve (paper Section 5.2, last step).

All detection methods in the library — single-run grammar induction, the
ensemble, and the discord comparators — return ranked lists of
:class:`Anomaly` so the evaluation harness can treat them uniformly.

Candidate extraction implements "find the local minima of the curve and rank
them by their rule density values" robustly on plateaus: every full window
start is scored by the mean curve value over the window, and the top-k
non-overlapping minima are returned in rank order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.utils.validation import ensure_time_series, validate_window


@dataclass(frozen=True)
class Anomaly:
    """One ranked anomaly candidate.

    Attributes
    ----------
    position:
        Start index of the candidate subsequence in the series.
    length:
        Candidate subsequence length (the sliding-window length ``n``).
    score:
        Anomalousness score — **higher is more anomalous**. Density-based
        detectors report the negated windowed mean density; distance-based
        detectors report the 1-NN distance.
    rank:
        1-based rank among the returned candidates (1 = most anomalous).
    """

    position: int
    length: int
    score: float
    rank: int

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ValueError(f"position must be non-negative, got {self.position}")
        if self.length < 1:
            raise ValueError(f"length must be positive, got {self.length}")
        if self.rank < 1:
            raise ValueError(f"rank must be 1-based, got {self.rank}")

    @property
    def end(self) -> int:
        """One past the last covered index."""
        return self.position + self.length

    def overlaps(self, other: "Anomaly") -> bool:
        """Whether two candidate intervals share any point."""
        return self.position < other.end and other.position < self.end


@runtime_checkable
class AnomalyDetector(Protocol):
    """The protocol every detection method implements."""

    def detect(self, series: np.ndarray, k: int = 3) -> list[Anomaly]:
        """Return the top-``k`` non-overlapping anomaly candidates."""
        ...


def windowed_means(curve: np.ndarray, window: int) -> np.ndarray:
    """Mean of ``curve[p:p+window]`` for every full window start ``p``.

    O(N) via a prefix sum; used to score candidate windows on the density
    curve.
    """
    curve = ensure_time_series(curve, name="curve")
    window = validate_window(window, len(curve))
    prefix = np.concatenate(([0.0], np.cumsum(curve)))
    return (prefix[window:] - prefix[:-window]) / window


def extract_candidates(
    curve: np.ndarray,
    window: int,
    k: int = 3,
    *,
    minimize: bool = True,
) -> list[Anomaly]:
    """Top-``k`` non-overlapping windows ranked by mean curve value.

    Parameters
    ----------
    curve:
        A per-point score curve (rule density, or a matrix profile padded to
        series length).
    window:
        Candidate subsequence length ``n``; candidates never overlap, which
        matches the paper's requirement that the reported top-3 do not
        overlap each other.
    k:
        Number of candidates to return (fewer if the series is too short to
        fit ``k`` disjoint windows).
    minimize:
        True ranks by *smallest* windowed mean (density curves), False by
        largest (distance profiles).

    Returns
    -------
    list[Anomaly]
        Candidates in rank order; ``score`` is the negated windowed mean when
        minimizing so that higher always means more anomalous.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    means = windowed_means(curve, window)
    objective = means.copy() if minimize else -means
    candidates: list[Anomaly] = []
    for rank in range(1, k + 1):
        position = int(np.argmin(objective))
        if not np.isfinite(objective[position]):
            break
        value = float(means[position])
        score = -value if minimize else value
        candidates.append(Anomaly(position=position, length=window, score=score, rank=rank))
        # Mask every start whose window would overlap the chosen one.
        low = max(0, position - window + 1)
        high = min(len(objective), position + window)
        objective[low:high] = np.inf
        if np.all(np.isinf(objective)):
            break
    return candidates
