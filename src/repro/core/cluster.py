"""Cross-machine dispatch: the cluster executor backend.

The local backends in :mod:`repro.core.executors` stop at the machine
boundary. This module crosses it: :class:`ClusterExecutor` implements the
same :class:`~repro.core.executors.MemberExecutor` interface but dispatches
tasks to *worker processes connected over TCP* — on the same host, or on
any machine that can reach the scheduler. Because every engine entry point
(``detect``, ``detect_batch``, ``iter_detect_batch``, ``evaluate_methods``,
streaming snapshots, and the serving subsystem) already runs through the
executor interface, they all gain cross-machine execution with zero
call-site changes.

Architecture
------------
The executor *is* the scheduler. It binds a TCP listener
(:class:`multiprocessing.connection.Listener`, stdlib, authenticated with a
shared key) and workers dial in with ``python -m repro worker --connect
HOST:PORT``. Dispatch is pull-based:

- a worker sends ``ready`` and the scheduler leases it the oldest eligible
  task (or replies ``idle`` after a short wait);
- the worker runs the task function and sends back ``result``;
- a heartbeat thread on the worker keeps its lease fresh while it computes.

Task envelopes carry a module-level function (pickled by reference — it
must be importable on the worker), its payload, and any *series blobs* the
payload references. Series are published once per executor call through
:meth:`ClusterExecutor.share_series`, which registers the raw float64 bytes
under a content digest; a worker receives each blob at most once per
connection and caches it by digest (the remote analogue of the process
backend's shared memory — falling back from zero-copy to send-once, since
remote workers cannot attach to local ``/dev/shm``). Blob bytes round-trip
exactly, so results are **bitwise identical** to the serial path — the same
parity contract every other backend honours, enforced for this one by
``tests/test_cluster_executor.py`` and ``pytest --executor cluster
tests/test_executor_parity.py``.

Fault tolerance
---------------
The scheduler tracks a lease per running task. A worker that dies (its
connection drops) or goes silent past ``lease_timeout`` is declared lost:
its connection is closed, and every task it was leased is requeued with the
lost worker excluded, up to ``max_task_attempts`` attempts — so killing a
worker mid-batch loses no series and duplicates none (late results for a
task that already completed elsewhere are ignored; task functions are
deterministic, so either result is the same). A task whose retries are
exhausted — or that waits longer than ``worker_wait`` with no workers
connected at all — fails with :class:`ClusterWorkerLost`, which the batch
layers wrap into the usual :class:`~repro.core.executors.BatchItemError`
naming the failing series.

Deployment shapes
-----------------
- **Self-contained (zero config):** ``ClusterExecutor(max_workers=4)``
  binds an ephemeral localhost port and spawns four local worker
  subprocesses via the CLI ``worker`` subcommand. This is what
  ``make_executor("cluster", n)`` builds, what the parity suite runs, and
  the easiest way to try the backend.
- **Fleet:** ``as_executor("cluster:0.0.0.0:9123")`` binds a fixed address
  and waits for externally started workers (any host). The CLI spells it
  ``--executor cluster --scheduler 0.0.0.0:9123``; see
  ``docs/deployment.md`` for the run-book.
- **Dask:** :class:`DaskExecutor` adapts a ``dask.distributed`` cluster to
  the same interface. It is import-guarded: constructing it without the
  ``distributed`` package installed raises a clear error, and nothing in
  this module requires dask at import time.
"""

from __future__ import annotations

import itertools
import os
import pickle
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from hashlib import blake2b
from multiprocessing.connection import Client, Listener
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.core.executors import (
    MemberExecutor,
    SeriesHandle,
    _as_series_1d,
)
from repro.obs.context import bind_request_id, get_request_id
from repro.obs.logging import get_logger

_log = get_logger("core.cluster")

__all__ = [
    "ClusterError",
    "ClusterExecutor",
    "ClusterSeriesRef",
    "ClusterWorkerLost",
    "DaskExecutor",
    "parse_address",
    "run_worker",
]

#: Development default for the connection-authentication key. Real
#: deployments should set ``REPRO_CLUSTER_AUTHKEY`` (the worker CLI and the
#: executor both read it) instead of relying on a public constant.
DEFAULT_AUTHKEY = b"repro-cluster"

#: Environment variable carrying the shared authentication key.
AUTHKEY_ENV = "REPRO_CLUSTER_AUTHKEY"

#: How long a scheduler-side handler blocks waiting for work before
#: replying ``idle`` (seconds). Small enough that a worker-loss check runs
#: regularly; large enough that dispatch latency is dominated by the task.
_LEASE_WAIT = 0.25

#: How long a worker sleeps after an ``idle`` reply before polling again.
_IDLE_DELAY = 0.02

#: Interval between scheduler housekeeping passes (lease expiry, stranded
#: tasks) in seconds.
_MONITOR_INTERVAL = 0.25


class ClusterError(RuntimeError):
    """A cluster-level failure (no workers, closed executor, bad spec)."""


class ClusterWorkerLost(ClusterError):
    """A task's worker died and the retry budget is exhausted.

    The batch layers wrap this into
    :class:`~repro.core.executors.BatchItemError`, so a lost series is
    still reported with its index and label.
    """


def _resolve_authkey(authkey: bytes | str | None) -> bytes:
    """Normalize an auth key: explicit value, else env var, else dev default."""
    if authkey is None:
        authkey = os.environ.get(AUTHKEY_ENV)
    if authkey is None:
        return DEFAULT_AUTHKEY
    if isinstance(authkey, str):
        return authkey.encode("utf-8")
    return bytes(authkey)


def _enable_nodelay(conn) -> None:
    """Disable Nagle's algorithm on a connection's TCP socket.

    The dispatch protocol is many small frames (ready/task/result); with
    Nagle on, each round trip stalls on the peer's delayed ACK (~40ms),
    which would dominate per-task dispatch cost. Options live on the
    socket, not the fd, so setting it through a dup is enough. Best-effort:
    non-TCP transports are left alone.
    """
    try:
        sock = socket.socket(fileno=os.dup(conn.fileno()))
    except OSError:
        return
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass
    finally:
        sock.close()


def parse_address(address: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` string into a ``(host, port)`` pair."""
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(f"cluster address must be HOST:PORT, got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"cluster address must be HOST:PORT, got {address!r}") from None


# ----------------------------------------------------------------------
# Series passing: content-addressed blobs, sent once per worker.
# ----------------------------------------------------------------------

#: Worker-process blob cache, keyed by digest. Installed by the worker loop
#: before a task runs; read by :meth:`ClusterSeriesRef.resolve`.
_WORKER_BLOBS: dict[str, bytes] = {}


@dataclass(frozen=True)
class ClusterSeriesRef:
    """Picklable pointer to a series published to cluster workers.

    ``digest`` is the blake2b content hash of the series' float64 bytes;
    the scheduler transfers the bytes to each worker at most once per
    connection and the worker caches them, so a series scanned by many
    tasks crosses the wire once, not per task.
    """

    digest: str
    length: int

    def resolve(self) -> np.ndarray:
        """Materialize the series from the worker-local blob cache.

        Reconstruction is ``np.frombuffer`` over the exact bytes the client
        published — a bitwise round trip, so results never depend on the
        transport.
        """
        blob = _WORKER_BLOBS.get(self.digest)
        if blob is None:
            raise ClusterError(
                f"series blob {self.digest[:12]}… is not in this worker's cache; "
                "was its handle closed while tasks were still queued?"
            )
        series = np.frombuffer(blob, dtype=np.float64)
        if len(series) != self.length:
            raise ClusterError(
                f"series blob {self.digest[:12]}… holds {len(series)} points, "
                f"expected {self.length}"
            )
        return series.copy()


class _ClusterSeriesHandle(SeriesHandle):
    """Owns one reference to a blob in the scheduler's store."""

    def __init__(self, ref: ClusterSeriesRef, state: "_SchedulerState") -> None:
        super().__init__(ref)
        self._state: _SchedulerState | None = state

    def close(self) -> None:
        """Drop this handle's blob reference (idempotent)."""
        state, self._state = self._state, None
        if state is not None:
            state.release_blob(self.ref.digest)


def _scan_digests(obj: Any, found: set[str]) -> None:
    """Collect every :class:`ClusterSeriesRef` digest reachable in a payload."""
    if isinstance(obj, ClusterSeriesRef):
        found.add(obj.digest)
    elif isinstance(obj, (tuple, list)):
        for item in obj:
            _scan_digests(item, found)
    elif isinstance(obj, dict):
        for item in obj.values():
            _scan_digests(item, found)


# ----------------------------------------------------------------------
# Scheduler state (shared by the accept loop, handlers, and the executor).
# ----------------------------------------------------------------------


class _Task:
    """One dispatched unit of work and its retry bookkeeping."""

    __slots__ = (
        "task_id",
        "fn",
        "payload",
        "digests",
        "excluded",
        "attempts",
        "cancelled",
        "request_id",
    )

    def __init__(
        self,
        task_id: int,
        fn: Callable,
        payload: Any,
        digests: frozenset[str],
        request_id: str | None = None,
    ) -> None:
        self.task_id = task_id
        self.fn = fn
        self.payload = payload
        self.digests = digests
        #: Correlation id of the serving request that caused this task
        #: (rides the wire envelope so worker-side log lines name it).
        self.request_id = request_id
        #: Worker ids this task must not be leased to again (lost mid-task).
        self.excluded: set[str] = set()
        #: Times this task has been leased (first lease counts as 1).
        self.attempts = 0
        #: Abandoned by the caller: never requeue, drop quietly.
        self.cancelled = False


class _WorkerInfo:
    """Scheduler-side record of one connected worker."""

    __slots__ = (
        "worker_id",
        "name",
        "pid",
        "conn",
        "send_lock",
        "sent_digests",
        "leased",
        "last_seen",
        "lost",
        "completed",
    )

    def __init__(self, worker_id: str, name: str, pid: int, conn) -> None:
        self.worker_id = worker_id
        self.name = name
        self.pid = pid
        self.conn = conn
        self.send_lock = threading.Lock()
        #: Blob digests this worker has already received (reset on reconnect
        #: because a reconnecting worker is a new worker).
        self.sent_digests: set[str] = set()
        #: task_id -> _Task currently leased to this worker.
        self.leased: dict[int, _Task] = {}
        self.last_seen = time.monotonic()
        self.lost = False
        self.completed = 0

    def send(self, message) -> None:
        """Send one message to the worker (serialized against other senders)."""
        with self.send_lock:
            self.conn.send(message)


class _SchedulerState:
    """All mutable scheduler state, guarded by one lock.

    The accept loop registers workers, handler threads lease tasks and
    record results, the monitor reaps silent workers and strands, and the
    executor submits work and waits on results — every one of them through
    the methods here, under :attr:`_lock`.
    """

    def __init__(self, *, lease_timeout: float, max_task_attempts: int, worker_wait: float) -> None:
        self.lease_timeout = float(lease_timeout)
        self.max_task_attempts = int(max_task_attempts)
        self.worker_wait = float(worker_wait)
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._results_available = threading.Condition(self._lock)
        self._workers_changed = threading.Condition(self._lock)
        self._tasks: dict[int, _Task] = {}
        self._pending: deque[_Task] = deque()
        self._results: dict[int, tuple[bool, Any]] = {}
        self._workers: dict[str, _WorkerInfo] = {}
        self._blobs: dict[str, bytes] = {}
        self._blob_refs: dict[str, int] = {}
        self._task_ids = itertools.count()
        self._worker_ids = itertools.count()
        self._closing = False
        #: When the pool last became empty while work was outstanding.
        self._starved_since: float | None = None
        self.tasks_submitted = 0
        self.tasks_retried = 0

    # -- blobs ----------------------------------------------------------

    def add_blob(self, digest: str, data: bytes) -> None:
        """Register (or re-reference) a series blob under its digest."""
        with self._lock:
            if digest not in self._blobs:
                self._blobs[digest] = data
                self._blob_refs[digest] = 0
            self._blob_refs[digest] += 1

    def release_blob(self, digest: str) -> None:
        """Drop one reference to a blob; the bytes go when the last one does."""
        with self._lock:
            refs = self._blob_refs.get(digest)
            if refs is None:
                return
            if refs <= 1:
                del self._blob_refs[digest]
                del self._blobs[digest]
            else:
                self._blob_refs[digest] = refs - 1

    def blob_count(self) -> int:
        """Number of live series blobs (test introspection)."""
        with self._lock:
            return len(self._blobs)

    # -- workers --------------------------------------------------------

    def register_worker(self, name: str, pid: int, conn) -> _WorkerInfo:
        """Admit a freshly connected worker into the pool."""
        with self._lock:
            if self._closing:
                raise ClusterError("scheduler is closing")
            worker_id = f"{name}-{next(self._worker_ids)}"
            worker = _WorkerInfo(worker_id, name, pid, conn)
            self._workers[worker_id] = worker
            self._starved_since = None
            self._workers_changed.notify_all()
            self._work_available.notify_all()
            return worker

    def touch(self, worker: _WorkerInfo) -> None:
        """Record liveness for ``worker`` (heartbeat or any message)."""
        with self._lock:
            worker.last_seen = time.monotonic()

    def worker_lost(self, worker: _WorkerInfo) -> None:
        """Drop a dead worker and requeue its leased tasks (with exclusion).

        Tasks whose retry budget is exhausted fail with
        :class:`ClusterWorkerLost` instead of requeueing; cancelled tasks
        are resolved quietly. Idempotent per worker.
        """
        with self._lock:
            if worker.lost:
                return
            worker.lost = True
            self._workers.pop(worker.worker_id, None)
            for task in worker.leased.values():
                if task.task_id in self._results:
                    continue
                task.excluded.add(worker.worker_id)
                if task.cancelled:
                    self._results[task.task_id] = (
                        False,
                        ClusterError("task cancelled while its worker was lost"),
                    )
                elif task.attempts >= self.max_task_attempts:
                    self._results[task.task_id] = (
                        False,
                        ClusterWorkerLost(
                            f"task lost with worker {worker.worker_id!r} after "
                            f"{task.attempts} attempt(s) on workers "
                            f"{sorted(task.excluded)}"
                        ),
                    )
                else:
                    self.tasks_retried += 1
                    self._pending.appendleft(task)
            worker.leased.clear()
            self._results_available.notify_all()
            self._work_available.notify_all()
            self._workers_changed.notify_all()
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover — already torn down
            pass

    def wait_for_workers(self, count: int, timeout: float) -> None:
        """Block until ``count`` workers are connected (or raise)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while len(self._workers) < count:
                if self._closing:
                    raise ClusterError("scheduler is closing")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ClusterError(
                        f"only {len(self._workers)} of {count} cluster worker(s) "
                        f"connected after {timeout:.0f}s; start workers with "
                        "`python -m repro worker --connect HOST:PORT`"
                    )
                self._workers_changed.wait(min(remaining, 0.1))

    def worker_stats(self) -> list[dict]:
        """Per-worker snapshot: id, pid, leased task count, completed count."""
        with self._lock:
            return [
                {
                    "worker_id": worker.worker_id,
                    "name": worker.name,
                    "pid": worker.pid,
                    "leased": len(worker.leased),
                    "completed": worker.completed,
                }
                for worker in self._workers.values()
            ]

    def worker_count(self) -> int:
        """Number of currently connected workers."""
        with self._lock:
            return len(self._workers)

    def connections(self) -> list[_WorkerInfo]:
        """Snapshot of the connected workers (for shutdown broadcasts)."""
        with self._lock:
            return list(self._workers.values())

    # -- tasks ----------------------------------------------------------

    def submit(self, fn: Callable, payload: Any) -> int:
        """Queue one task; returns its id."""
        digests: set[str] = set()
        _scan_digests(payload, digests)
        with self._lock:
            if self._closing:
                raise ClusterError("cluster executor is closed")
            for digest in digests:
                if digest not in self._blobs:
                    raise ClusterError(
                        f"payload references unpublished series blob {digest[:12]}…"
                    )
            task = _Task(
                next(self._task_ids), fn, payload, frozenset(digests), get_request_id()
            )
            self._tasks[task.task_id] = task
            self._pending.append(task)
            self.tasks_submitted += 1
            self._work_available.notify()
            return task.task_id

    def lease(self, worker: _WorkerInfo, timeout: float):
        """Lease the oldest eligible pending task to ``worker``.

        Blocks up to ``timeout`` for work to arrive; returns ``(task,
        blobs, forget)`` — the blobs the worker has not seen yet and the
        digests it should evict — or ``(None, None, ())`` when there is
        nothing to do.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                if self._closing or worker.lost:
                    return None, None, ()
                task = self._pop_eligible(worker)
                if task is not None:
                    if any(digest not in self._blobs for digest in task.digests):
                        # A handle this task depends on was closed while it
                        # queued: fail *this task* gracefully and keep
                        # serving the (healthy) worker.
                        if task.task_id not in self._results:
                            self._results[task.task_id] = (
                                False,
                                ClusterError(
                                    "a series blob this task references was "
                                    "released while the task was still queued"
                                ),
                            )
                            self._results_available.notify_all()
                        continue
                    task.attempts += 1
                    worker.leased[task.task_id] = task
                    # Evict digests whose blobs are gone, send unseen ones.
                    forget = tuple(
                        digest for digest in worker.sent_digests if digest not in self._blobs
                    )
                    worker.sent_digests.difference_update(forget)
                    blobs = {
                        digest: self._blobs[digest]
                        for digest in task.digests
                        if digest not in worker.sent_digests
                    }
                    worker.sent_digests.update(task.digests)
                    return task, blobs, forget
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None, None, ()
                self._work_available.wait(remaining)

    def _pop_eligible(self, worker: _WorkerInfo) -> _Task | None:
        for index, task in enumerate(self._pending):
            if worker.worker_id not in task.excluded:
                del self._pending[index]
                return task
        return None

    def unsend_blobs(self, worker: _WorkerInfo, digests) -> None:
        """Forget that ``digests`` were delivered to ``worker``.

        Called when a leased task's body never reached the worker (e.g.
        its function failed to pickle): the blobs packed into that body
        were not delivered, so they must be re-sent with the next task
        that needs them.
        """
        with self._lock:
            worker.sent_digests.difference_update(digests)

    def complete(self, worker: _WorkerInfo, task_id: int, ok: bool, value: Any) -> None:
        """Record one task result (first result wins; duplicates are dropped)."""
        with self._lock:
            worker.leased.pop(task_id, None)
            worker.completed += 1
            if task_id not in self._tasks or task_id in self._results:
                return  # late duplicate from a presumed-lost worker
            self._results[task_id] = (bool(ok), value)
            self._results_available.notify_all()

    def wait_some(self, remaining: set[int]) -> list[tuple[int, bool, Any]]:
        """Block until at least one task in ``remaining`` completes; pop them."""
        with self._lock:
            while True:
                done = [tid for tid in remaining if tid in self._results]
                if done:
                    out = []
                    for tid in done:
                        ok, value = self._results.pop(tid)
                        self._tasks.pop(tid, None)
                        remaining.discard(tid)
                        out.append((tid, ok, value))
                    return out
                if self._closing:
                    raise ClusterError("cluster executor closed while tasks were in flight")
                self._results_available.wait(0.1)

    def cancel(self, task_ids) -> None:
        """Abandon tasks: unstarted ones resolve now, running ones may finish."""
        with self._lock:
            pending_ids = {task.task_id for task in self._pending}
            for tid in list(task_ids):
                task = self._tasks.get(tid)
                if task is None or tid in self._results:
                    continue
                task.cancelled = True
                if tid in pending_ids:
                    self._pending = deque(t for t in self._pending if t.task_id != tid)
                    self._results[tid] = (False, ClusterError("task cancelled"))
            self._results_available.notify_all()

    def forget(self, task_ids) -> None:
        """Purge bookkeeping for tasks the caller has fully consumed."""
        with self._lock:
            for tid in task_ids:
                self._tasks.pop(tid, None)
                self._results.pop(tid, None)

    # -- housekeeping ---------------------------------------------------

    def reap(self) -> list[_WorkerInfo]:
        """One monitor pass: find silent workers, fail starved tasks.

        Returns the workers whose leases expired (the caller closes their
        connections outside the lock via :meth:`worker_lost`).
        """
        now = time.monotonic()
        expired: list[_WorkerInfo] = []
        with self._lock:
            for worker in self._workers.values():
                if now - worker.last_seen > self.lease_timeout:
                    expired.append(worker)
            outstanding = bool(self._pending) or any(
                worker.leased for worker in self._workers.values()
            )
            if self._workers or not outstanding:
                self._starved_since = None
            elif self._starved_since is None:
                self._starved_since = now
            elif now - self._starved_since > self.worker_wait:
                while self._pending:
                    task = self._pending.popleft()
                    if task.task_id in self._results:
                        continue
                    self._results[task.task_id] = (
                        False,
                        ClusterWorkerLost(
                            f"no cluster workers connected for {self.worker_wait:.0f}s "
                            f"with work queued (task attempted {task.attempts} time(s))"
                        ),
                    )
                self._starved_since = None
                self._results_available.notify_all()
        return expired

    def close(self) -> None:
        """Flip the closing flag and wake every waiter."""
        with self._lock:
            self._closing = True
            self._work_available.notify_all()
            self._results_available.notify_all()
            self._workers_changed.notify_all()

    @property
    def closing(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closing


# ----------------------------------------------------------------------
# The executor.
# ----------------------------------------------------------------------


class ClusterExecutor(MemberExecutor):
    """Dispatch member/batch tasks to TCP-connected worker processes.

    Parameters
    ----------
    max_workers:
        Local workers to spawn in self-contained mode, and the default
        reported pool width. ``None`` means one per CPU.
    bind:
        ``HOST:PORT`` to listen on. The default binds an ephemeral
        localhost port (self-contained mode); bind a routable address to
        accept workers from other machines.
    spawn_workers:
        Local worker subprocesses to spawn via ``python -m repro worker``
        once the listener is up. Defaults to ``max_workers`` when ``bind``
        is the loopback default, and to 0 when a ``bind`` address is given
        (fleet mode: workers are started externally).
    authkey:
        Shared connection-authentication secret. Defaults to
        ``$REPRO_CLUSTER_AUTHKEY``, falling back to a development constant.
    min_workers:
        Workers that must be connected before the first dispatch returns
        from :meth:`start` waiting; also the readiness bar for lazy first
        use.
    worker_wait:
        Seconds to wait for ``min_workers`` at startup, and the grace
        period before queued work fails when the pool is empty mid-run.
    lease_timeout:
        Seconds of silence (no message, no heartbeat) after which a worker
        is declared lost and its tasks are retried elsewhere.
    max_task_attempts:
        Times one task may be leased before a worker loss fails it.

    The parity contract of :class:`~repro.core.executors.MemberExecutor`
    holds: results are bitwise identical to :class:`SerialExecutor` for
    every engine entry point (enforced by ``tests/test_cluster_executor.py``
    and the ``--executor cluster`` run of the parity suite).
    """

    kind = "cluster"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        bind: str | None = None,
        authkey: bytes | str | None = None,
        spawn_workers: int | None = None,
        min_workers: int = 1,
        worker_wait: float = 30.0,
        lease_timeout: float = 30.0,
        max_task_attempts: int = 3,
    ) -> None:
        super().__init__(max_workers)
        self._bind = parse_address(bind) if bind is not None else ("127.0.0.1", 0)
        self._authkey = _resolve_authkey(authkey)
        if spawn_workers is None:
            spawn_workers = self._max_workers if bind is None else 0
        self._spawn_workers = int(spawn_workers)
        self._min_workers = max(0, int(min_workers))
        self._worker_wait = float(worker_wait)
        self._state = _SchedulerState(
            lease_timeout=lease_timeout,
            max_task_attempts=max_task_attempts,
            worker_wait=worker_wait,
        )
        self._lifecycle_lock = threading.Lock()
        self._listener: Listener | None = None
        self._accept_thread: threading.Thread | None = None
        self._monitor_thread: threading.Thread | None = None
        self._spawned: list[subprocess.Popen] = []
        self._address: tuple[str, int] | None = None

    # -- lifecycle ------------------------------------------------------

    @property
    def address(self) -> tuple[str, int] | None:
        """The bound ``(host, port)``, or ``None`` before :meth:`start`."""
        return self._address

    @property
    def max_workers(self) -> int:
        """Connected worker count (or the configured width before any join)."""
        connected = self._state.worker_count()
        return connected if connected else self._max_workers

    def start(self, *, wait: bool = False) -> tuple[str, int]:
        """Bind the listener, spawn any local workers; returns the address.

        Idempotent. With ``wait=True`` blocks until ``min_workers`` workers
        have connected (raising :class:`ClusterError` after
        ``worker_wait`` seconds) — what the first dispatch does implicitly.
        """
        with self._lifecycle_lock:
            self._check_open()
            if self._listener is None:
                listener = Listener(self._bind, authkey=self._authkey)
                self._listener = listener
                self._address = listener.address
                self._accept_thread = threading.Thread(
                    target=self._accept_loop, name="repro-cluster-accept", daemon=True
                )
                self._accept_thread.start()
                self._monitor_thread = threading.Thread(
                    target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
                )
                self._monitor_thread.start()
                for _ in range(self._spawn_workers):
                    self._spawned.append(self._spawn_local_worker())
        if wait and self._min_workers:
            self._state.wait_for_workers(self._min_workers, self._worker_wait)
        return self._address

    def _spawn_local_worker(self) -> subprocess.Popen:
        host, port = self._address
        env = dict(os.environ)
        # Local workers mirror the parent's import path (like a process
        # pool's forked children would), so pickled-by-reference task
        # functions resolve on the other side.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        env[AUTHKEY_ENV] = self._authkey.decode("utf-8", "surrogateescape")
        debug = os.environ.get("REPRO_CLUSTER_DEBUG") == "1"
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--connect", f"{host}:{port}"],
            env=env,
            stdout=None if debug else subprocess.DEVNULL,
            stderr=None if debug else subprocess.DEVNULL,
        )

    def _accept_loop(self) -> None:
        """Admit workers until the listener closes; one handler thread each."""
        while True:
            try:
                conn = self._listener.accept()
            except (OSError, EOFError):
                return  # listener closed (shutdown) or handshake failed
            except Exception:
                if self._state.closing:
                    return
                continue  # failed auth handshake: keep serving others
            if self._state.closing:
                conn.close()
                return
            threading.Thread(
                target=self._serve_worker,
                args=(conn,),
                name="repro-cluster-handler",
                daemon=True,
            ).start()

    def _serve_worker(self, conn) -> None:
        """Drive one worker connection: hello, then lease/result loop."""
        worker: _WorkerInfo | None = None
        _enable_nodelay(conn)
        try:
            hello = conn.recv()
            if not (isinstance(hello, tuple) and hello and hello[0] == "hello"):
                conn.close()
                return
            _, name, pid = hello
            worker = self._state.register_worker(str(name), int(pid), conn)
            worker.send(("welcome", worker.worker_id))
            while not self._state.closing and not worker.lost:
                message = conn.recv()
                self._state.touch(worker)
                kind = message[0]
                if kind == "ready":
                    task, blobs, forget = self._state.lease(worker, _LEASE_WAIT)
                    if task is None:
                        worker.send(("idle", _IDLE_DELAY))
                        continue
                    # The task body is pickled separately from the protocol
                    # frame: a function or payload that fails to (de)serialize
                    # fails *that task* attributably instead of corrupting the
                    # connection or killing the worker.
                    try:
                        body = pickle.dumps(
                            (task.fn, task.payload, blobs, forget, task.request_id),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                    except Exception as error:
                        # The body (and the blobs packed into it) never
                        # reached the worker — revert the sent bookkeeping.
                        self._state.unsend_blobs(worker, blobs)
                        self._state.complete(
                            worker,
                            task.task_id,
                            False,
                            ClusterError(f"task could not be serialized: {error}"),
                        )
                        worker.send(("idle", _IDLE_DELAY))
                        continue
                    worker.send(("task", task.task_id, body))
                elif kind == "result":
                    _, task_id, ok, value = message
                    self._state.complete(worker, task_id, ok, value)
                elif kind == "heartbeat":
                    pass
                elif kind == "bye":
                    break
        except (EOFError, OSError, ConnectionError):
            pass  # worker died or link dropped: handled below
        finally:
            if worker is not None:
                self._state.worker_lost(worker)
            else:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass

    def _monitor_loop(self) -> None:
        """Reap silent workers and fail starved queues until shutdown."""
        while not self._state.closing:
            for worker in self._state.reap():
                self._state.worker_lost(worker)
            time.sleep(_MONITOR_INTERVAL)

    def _ensure_ready(self) -> None:
        self._check_open()
        self.start(wait=True)

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of every connected worker process (local and remote)."""
        return tuple(sorted(stats["pid"] for stats in self._state.worker_stats()))

    def worker_stats(self) -> list[dict]:
        """Per-worker lease/completion counters (see ``/stats`` and tests)."""
        return self._state.worker_stats()

    def stats(self) -> dict:
        """Scheduler counters: submissions, retries, workers, live blobs."""
        return {
            "tasks_submitted": self._state.tasks_submitted,
            "tasks_retried": self._state.tasks_retried,
            "workers": self._state.worker_stats(),
            "blobs": self._state.blob_count(),
        }

    def close(self) -> None:
        """Stop dispatch, tell workers to exit, reap local ones (idempotent)."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        self._state.close()
        for worker in self._state.connections():
            try:
                worker.send(("stop",))
            except (OSError, ValueError):  # pragma: no cover — already gone
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for process in self._spawned:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover — hung worker
                process.terminate()
                try:
                    process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
        self._spawned.clear()

    # -- series passing -------------------------------------------------

    def share_series(self, series: np.ndarray) -> SeriesHandle:
        """Publish a series to the workers as a content-addressed blob.

        The bytes travel to each worker at most once per connection
        (workers cache by digest), the remote counterpart of the process
        backend's shared-memory segments. The handle owns one reference;
        closing it releases the blob once every other handle has too.
        """
        self._check_open()
        series = _as_series_1d(series)
        data = series.tobytes()
        digest = blake2b(data, digest_size=20).hexdigest()
        self._state.add_blob(digest, data)
        return _ClusterSeriesHandle(ClusterSeriesRef(digest, len(series)), self._state)

    # -- execution ------------------------------------------------------

    def map(self, fn: Callable, payloads: Sequence[Any]) -> list:
        """Run ``fn`` over ``payloads`` on the workers; results in order.

        Matches the serial reference bitwise; a failing payload re-raises
        its worker-side exception here (earliest payload first, as the
        serial path would).
        """
        self._ensure_ready()
        task_ids = self._submit_all(fn, payloads)
        index_of = {tid: index for index, tid in enumerate(task_ids)}
        results: list[Any] = [None] * len(task_ids)
        failures: dict[int, BaseException] = {}
        remaining = set(task_ids)
        try:
            while remaining:
                for tid, ok, value in self._state.wait_some(remaining):
                    if ok:
                        results[index_of[tid]] = value
                    else:
                        failures[index_of[tid]] = value
            if failures:
                raise failures[min(failures)]
            return results
        finally:
            self._state.cancel(remaining)
            self._state.forget(task_ids)

    def imap_unordered(
        self,
        fn: Callable,
        payloads: Sequence[Any],
        *,
        return_exceptions: bool = False,
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, result)`` pairs as workers complete tasks.

        Abandoning the iterator cancels unstarted tasks and waits out
        running ones (so published blobs can be withdrawn safely); with
        ``return_exceptions=True`` a task failure is yielded in place and
        the rest of the batch still runs.
        """
        self._ensure_ready()
        return self._drain_unordered(self._submit_all(fn, payloads), return_exceptions)

    def _submit_all(self, fn: Callable, payloads: Sequence[Any]) -> list[int]:
        """Queue every payload; a failed submission unwinds the queued ones."""
        task_ids: list[int] = []
        try:
            for payload in payloads:
                task_ids.append(self._state.submit(fn, payload))
        except BaseException:
            self._state.cancel(task_ids)
            self._state.forget(task_ids)
            raise
        return task_ids

    def _drain_unordered(
        self, task_ids: list[int], return_exceptions: bool
    ) -> Iterator[tuple[int, Any]]:
        index_of = {tid: index for index, tid in enumerate(task_ids)}
        remaining = set(task_ids)
        try:
            while remaining:
                for tid, ok, value in self._state.wait_some(remaining):
                    if ok or return_exceptions:
                        yield index_of[tid], value
                    else:
                        raise value
        finally:
            self._state.cancel(remaining)
            try:
                while remaining:
                    # Wait out tasks still running on live workers, exactly
                    # as the pooled backends' _drain_futures does.
                    for tid, _ok, _value in self._state.wait_some(remaining):
                        pass
            except ClusterError:
                pass  # executor closing: nothing left to wait for
            self._state.forget(task_ids)


# ----------------------------------------------------------------------
# The worker loop (CLI: ``python -m repro worker --connect HOST:PORT``).
# ----------------------------------------------------------------------


def run_worker(
    address: str,
    *,
    authkey: bytes | str | None = None,
    name: str | None = None,
    heartbeat: float = 5.0,
    connect_retry: float = 10.0,
) -> int:
    """Connect to a scheduler and execute tasks until told to stop.

    The worker runs one task at a time (start several workers for
    parallelism); a daemon thread sends heartbeats every ``heartbeat``
    seconds so long tasks keep their lease. Connection attempts retry for
    ``connect_retry`` seconds (workers may legitimately start before the
    scheduler binds). Returns a process exit code: 0 after a clean ``stop``
    or scheduler shutdown.
    """
    host, port = parse_address(address)
    key = _resolve_authkey(authkey)
    deadline = time.monotonic() + float(connect_retry)
    while True:
        try:
            conn = Client((host, port), authkey=key)
            break
        except (ConnectionRefusedError, OSError):
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)
    _enable_nodelay(conn)
    send_lock = threading.Lock()

    def _send(message) -> None:
        with send_lock:
            conn.send(message)

    _send(("hello", name or f"worker-{os.getpid()}", os.getpid()))
    welcome = conn.recv()
    if not (isinstance(welcome, tuple) and welcome and welcome[0] == "welcome"):
        conn.close()
        raise ClusterError(f"unexpected scheduler greeting: {welcome!r}")
    stop_beating = threading.Event()

    def _beat() -> None:
        while not stop_beating.wait(heartbeat):
            try:
                _send(("heartbeat",))
            except (OSError, ValueError):
                return

    threading.Thread(target=_beat, name="repro-worker-heartbeat", daemon=True).start()
    try:
        while True:
            _send(("ready",))
            message = conn.recv()
            kind = message[0]
            if kind == "idle":
                time.sleep(float(message[1]))
                continue
            if kind == "stop":
                break
            if kind != "task":
                continue
            _, task_id, body = message
            try:
                fn, payload, blobs, forget, request_id = pickle.loads(body)
            except Exception as error:
                # An unimportable task function (e.g. defined in the
                # client's __main__) fails its task, not this worker.
                _send(
                    (
                        "result",
                        task_id,
                        False,
                        ClusterError(
                            "task could not be deserialized on the worker "
                            f"(is the task function importable here?): {error}"
                        ),
                    )
                )
                continue
            for digest in forget:
                _WORKER_BLOBS.pop(digest, None)
            _WORKER_BLOBS.update(blobs)
            started = time.perf_counter()
            with bind_request_id(request_id):
                try:
                    value, ok = fn(payload), True
                except Exception as error:
                    value, ok = error, False
                _log.info(
                    "task %d %s in %.1f ms (request %s)",
                    task_id,
                    "completed" if ok else "failed",
                    (time.perf_counter() - started) * 1000.0,
                    request_id or "-",
                    extra={"task_id": task_id, "ok": ok},
                )
            try:
                _send(("result", task_id, ok, value))
            except (OSError, EOFError):
                raise
            except Exception as error:
                # The computed value would not pickle: report that as the
                # task's failure rather than dying mid-protocol.
                _send(("result", task_id, False, ClusterError(f"result unpicklable: {error}")))
    except (EOFError, OSError):
        pass  # scheduler went away: exit quietly
    finally:
        stop_beating.set()
        _WORKER_BLOBS.clear()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
    return 0


# ----------------------------------------------------------------------
# Dask adapter (import-guarded; stubbed when the dependency is absent).
# ----------------------------------------------------------------------

_DASK_HINT = (
    "the dask executor requires the 'distributed' package "
    "(pip install distributed); the stdlib TCP backend "
    "(--executor cluster) has no extra dependencies"
)


class DaskExecutor(MemberExecutor):
    """Adapt a ``dask.distributed`` cluster to the ``MemberExecutor`` interface.

    Construction connects a ``distributed.Client`` to ``address`` (or a
    temporary ``LocalCluster`` when ``address`` is ``None``). The class is
    import-guarded: when the ``distributed`` package is not installed,
    instantiating it raises :class:`ClusterError` with an install hint, and
    importing this module stays dependency-free. Series are passed inline
    (dask's own serialization layer already deduplicates scattered data).
    """

    kind = "dask"

    def __init__(self, address: str | None = None, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        try:
            from distributed import Client
        except ImportError as error:
            raise ClusterError(_DASK_HINT) from error
        self._client = Client(address) if address else Client(
            n_workers=self._max_workers, threads_per_worker=1
        )

    def close(self) -> None:
        """Disconnect the dask client (idempotent)."""
        if not self._closed:
            self._client.close()
        super().close()

    def map(self, fn, payloads):
        """Run ``fn`` over ``payloads`` on the dask cluster, in order."""
        self._check_open()
        futures = self._client.map(fn, list(payloads), pure=False)
        return self._client.gather(futures)

    def imap_unordered(self, fn, payloads, *, return_exceptions: bool = False):
        """Yield ``(index, result)`` pairs as dask futures complete.

        Honours the interface's abandonment contract: closing the iterator
        early cancels futures that have not completed and waits out the
        ones already running before returning.
        """
        self._check_open()
        from distributed import as_completed
        from distributed import wait as dask_wait

        futures = self._client.map(fn, list(payloads), pure=False)
        index_of = {future: index for index, future in enumerate(futures)}

        def _drain():
            pending = set(futures)
            try:
                for future in as_completed(futures):
                    pending.discard(future)
                    error = future.exception()
                    if error is None:
                        yield index_of[future], future.result()
                    elif return_exceptions:
                        yield index_of[future], error
                    else:
                        raise error
            finally:
                if pending:
                    for future in pending:
                        future.cancel()
                    try:
                        dask_wait(list(pending))
                    except Exception:  # pragma: no cover — cancelled futures
                        pass

        return _drain()
