"""Streaming grammar-induction anomaly detection (extension).

The paper motivates grammar induction by its linear time complexity for
large-scale data; Sequitur is naturally *incremental*, so the pipeline
extends to streams. The streaming path is built on the execution engine
(:mod:`repro.core.engine`): every arriving chunk lands in one
:class:`~repro.core.engine.SharedStreamState` — a numpy-backed buffer with
running prefix sums — and ``extend()`` computes all newly completed windows'
z-normalized PAA rows and SAX symbols in one vectorized pass per distinct
PAA size, feeding only the numerosity-kept words to each live Sequitur
builder. Snapshotting the grammar at any moment yields the rule density
curve over everything seen so far.

:class:`StreamingGrammarDetector` is one such live member;
:class:`StreamingEnsembleDetector` maintains a fixed parameter bag of
members over the *same shared stream state* (memory O(stream + N·w) rather
than N copies of the stream) and combines their snapshot curves exactly as
Algorithm 1 does (std filter -> max-normalize -> median).

This is "future work" relative to the paper — nothing here changes the
batch semantics: feeding a whole series point-by-point or in arbitrary
chunks produces exactly the same density curve as the batch detector
(covered by the streaming-parity tests, which are the contract).
"""

from __future__ import annotations

import numpy as np

from repro.core.anomaly import Anomaly, extract_candidates
from repro.core.combiners import COMBINERS, combine_curves
from repro.core.engine import SharedStreamState
from repro.core.executors import ExecutorOwnerMixin, MemberExecutor
from repro.core.selection import normalize_curve, select_by_std
from repro.grammar.density import rule_density_curve
from repro.grammar.sequitur import _SequiturBuilder
from repro.sax.alphabet import index_matrix_to_words
from repro.sax.breakpoints import MultiResolutionAlphabet, gaussian_breakpoints
from repro.sax.numerosity import STRATEGIES, TokenSequence
from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import (
    validate_alphabet_size,
    validate_paa_size,
    validate_window,
)


class StreamingGrammarDetector:
    """One live grammar-induction pipeline over a growing series.

    Parameters
    ----------
    window, paa_size, alphabet_size:
        The discretization of this member (fixed for the stream's life).
    znorm_threshold:
        Constant-window guard, as in the batch pipeline.
    numerosity:
        Reduction strategy (``"exact"`` or ``"none"``), as in the batch
        pipeline.
    state:
        Optional :class:`~repro.core.engine.SharedStreamState` to attach to.
        When given, this member holds *no* copy of the stream — it only
        tracks its own grammar — and ingestion is driven by the state's
        owner (see :class:`StreamingEnsembleDetector`); ``append``/``extend``
        on the member itself are disabled. When omitted, the member owns a
        private state and is fed directly.

    Example
    -------
    >>> import numpy as np
    >>> detector = StreamingGrammarDetector(window=50, paa_size=4, alphabet_size=4)
    >>> for value in np.sin(np.linspace(0, 40 * np.pi, 2000)):
    ...     detector.append(float(value))
    >>> len(detector.density_curve()) == 2000
    True
    """

    def __init__(
        self,
        window: int,
        paa_size: int = 4,
        alphabet_size: int = 4,
        *,
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
        numerosity: str = "exact",
        state: SharedStreamState | None = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        if numerosity not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {numerosity!r}; expected one of {STRATEGIES}"
            )
        self.window = int(window)
        self.paa_size = validate_paa_size(paa_size, self.window)
        self.alphabet_size = validate_alphabet_size(alphabet_size)
        self.znorm_threshold = float(znorm_threshold)
        self.numerosity = numerosity
        self._owns_state = state is None
        self.state = SharedStreamState() if state is None else state
        self._breakpoints = gaussian_breakpoints(self.alphabet_size)
        #: Window starts already discretized and fed to the grammar.
        self._consumed = 0
        #: Symbol row of the last seen window (online numerosity reduction
        #: across chunk boundaries).
        self._last_symbols: np.ndarray | None = None
        self._kept_words: list[str] = []
        self._kept_offsets: list[int] = []
        self._builder = _SequiturBuilder()

    def __len__(self) -> int:
        return len(self.state)

    @property
    def n_windows(self) -> int:
        """Completed sliding windows so far."""
        return self.state.n_windows(self.window)

    @property
    def n_tokens(self) -> int:
        """Tokens fed to the live grammar so far (after reduction)."""
        return len(self._kept_words)

    def _require_owned_state(self) -> None:
        if not self._owns_state:
            raise ValueError(
                "this member shares its stream state; feed the owning "
                "ensemble instead of the member"
            )

    def append(self, value: float) -> None:
        """Consume one observation; amortized O(w)."""
        self._require_owned_state()
        self.state.append(value)
        self._drain()

    def extend(self, values) -> None:
        """Consume a batch of observations in one vectorized pass."""
        self._require_owned_state()
        self.state.extend(values)
        self._drain()

    def _drain(self) -> None:
        """Discretize every completed-but-unseen window and feed the grammar."""
        if self._consumed >= self.state.n_windows(self.window):
            return
        rows = self.state.paa_rows(
            self._consumed, self.window, self.paa_size, self.znorm_threshold
        )
        symbols = np.searchsorted(self._breakpoints, rows, side="right")
        self._ingest_symbols(symbols, self._consumed)

    def _ingest_symbols(self, symbols: np.ndarray, first_start: int) -> None:
        """Numerosity-reduce a block of per-window symbol rows and feed them.

        ``symbols`` holds one row per window start in
        ``first_start .. first_start + len(symbols) - 1``. Two windows share
        a SAX word exactly when their symbol rows are equal, so run
        boundaries are found on the index matrix and only the kept windows'
        word strings are materialized — the same fast path as the batch
        :class:`~repro.core.multiresolution.MultiResolutionDiscretizer`.
        """
        count = len(symbols)
        if count == 0:
            return
        if self.numerosity == "exact":
            keep = np.ones(count, dtype=bool)
            keep[1:] = np.any(symbols[1:] != symbols[:-1], axis=1)
            if self._last_symbols is not None:
                keep[0] = bool(np.any(symbols[0] != self._last_symbols))
            kept_idx = np.flatnonzero(keep)
            self._last_symbols = np.array(symbols[-1], dtype=np.int64)
        else:
            kept_idx = np.arange(count)
        words = index_matrix_to_words(symbols[kept_idx])
        self._kept_words.extend(words)
        self._kept_offsets.extend(int(i) + first_start for i in kept_idx)
        feed = self._builder.feed
        for word in words:
            feed(word)
        self._consumed = first_start + count

    def tokens(self) -> TokenSequence:
        """Snapshot of the numerosity-reduced token sequence so far."""
        if not self._kept_words:
            raise ValueError(
                f"no complete window yet ({len(self.state)} of {self.window} points)"
            )
        return TokenSequence(
            tuple(self._kept_words),
            np.asarray(self._kept_offsets, dtype=np.int64),
            self.n_windows,
            self.window,
        )

    def density_curve(self) -> np.ndarray:
        """Rule density curve over everything seen so far (snapshot)."""
        tokens = self.tokens()
        grammar = self._builder.freeze()
        return rule_density_curve(grammar, tokens, len(self.state))

    def detect(self, k: int = 3) -> list[Anomaly]:
        """Top-``k`` anomalies over the stream so far."""
        curve = self.density_curve()
        return extract_candidates(curve, self.window, k, minimize=True)


def _member_snapshot_curve(member: "StreamingGrammarDetector") -> np.ndarray:
    """Thread task: one member's snapshot rule density curve."""
    return member.density_curve()


def _frozen_density_task(payload) -> np.ndarray:
    """Process task: density curve of a grammar snapshot frozen in the parent."""
    grammar, tokens, series_length = payload
    return rule_density_curve(grammar, tokens, series_length)


class StreamingEnsembleDetector(ExecutorOwnerMixin):
    """Algorithm 1 over a stream: N live members on one shared stream state.

    Parameters mirror :class:`repro.core.ensemble.EnsembleGrammarDetector`
    (including ``znorm_threshold`` and ``numerosity``, so a streaming
    ensemble configured like a batch one produces the *same* curve); the
    ``(w, a)`` bag is sampled once at construction (a stream has one life,
    so the sample is fixed up front).

    All members reference a single :class:`~repro.core.engine.SharedStreamState`
    — the stream is stored once, not per member — and ``extend()`` ingests
    each chunk with one vectorized PAA/interval pass per distinct PAA size,
    shared by every member of that size via the merged breakpoint table.

    ``executor`` parallelizes the *snapshot* side (``density_curve`` /
    ``detect``), where every member's grammar is turned into a rule density
    curve: thread workers call the live members directly, process workers
    receive each member's frozen grammar snapshot (the live Sequitur state
    never leaves this process). Ingest stays serial — it is already one
    vectorized pass. Results are identical across backends.
    """

    def __init__(
        self,
        window: int,
        *,
        max_paa_size: int = 10,
        max_alphabet_size: int = 10,
        ensemble_size: int = 20,
        selectivity: float = 0.4,
        combiner: str = "median",
        numerosity: str = "exact",
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
        seed: RandomState = None,
        executor: MemberExecutor | str | None = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        window = int(window)
        max_paa_size = validate_paa_size(max_paa_size, window)
        max_alphabet_size = validate_alphabet_size(max_alphabet_size)
        if ensemble_size < 1:
            raise ValueError(f"ensemble_size must be positive, got {ensemble_size}")
        if not 0.0 < selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        if combiner not in COMBINERS:
            raise ValueError(f"unknown combiner {combiner!r}; expected one of {COMBINERS}")
        self.window = window
        self.selectivity = float(selectivity)
        self.combiner = combiner
        self.numerosity = numerosity
        self.znorm_threshold = float(znorm_threshold)
        self._init_executor(executor)
        rng = ensure_rng(seed)
        pool = [
            (int(w), int(a))
            for w in range(2, max_paa_size + 1)
            for a in range(2, max_alphabet_size + 1)
        ]
        count = min(int(ensemble_size), len(pool))
        chosen = rng.choice(len(pool), size=count, replace=False)
        self.parameters = [pool[int(i)] for i in chosen]
        #: The single stream buffer every member references.
        self.state = SharedStreamState()
        self._alphabet_table = MultiResolutionAlphabet(max_alphabet_size)
        self.members = [
            StreamingGrammarDetector(
                window,
                w,
                a,
                znorm_threshold=self.znorm_threshold,
                numerosity=self.numerosity,
                state=self.state,
            )
            for w, a in self.parameters
        ]
        #: Members grouped by PAA size — the vectorized ingest shares one
        #: PAA/interval pass per distinct size.
        self._by_paa_size: dict[int, list[StreamingGrammarDetector]] = {}
        for member in self.members:
            self._by_paa_size.setdefault(member.paa_size, []).append(member)

    def __len__(self) -> int:
        return len(self.state)

    def append(self, value: float) -> None:
        """Feed one observation to the shared state (and every member)."""
        self.state.append(value)
        self._drain()

    def extend(self, values) -> None:
        """Feed a chunk of observations in one vectorized pass."""
        self.state.extend(values)
        self._drain()

    def _drain(self) -> None:
        """Vectorized ingest: one PAA + interval pass per distinct PAA size."""
        n_windows = self.state.n_windows(self.window)
        for paa_size, members in self._by_paa_size.items():
            first = members[0]._consumed
            if first >= n_windows:
                continue
            rows = self.state.paa_rows(first, self.window, paa_size, self.znorm_threshold)
            intervals = self._alphabet_table.interval_indices(rows)
            for member in members:
                symbols = self._alphabet_table.symbols_for(intervals, member.alphabet_size)
                member._ingest_symbols(symbols, first)

    def _snapshot_curves(self) -> list[np.ndarray]:
        """Every member's snapshot curve, via the configured executor.

        Curves are deterministic functions of each member's grammar and the
        shared stream, so all backends return bitwise-identical results.
        """
        executor = self.executor
        if executor is None or executor.kind == "serial":
            return [member.density_curve() for member in self.members]
        if executor.kind == "thread":
            # Members are independent snapshot readers of the shared state;
            # threads can call them directly, zero serialization.
            return executor.map(_member_snapshot_curve, self.members)
        # Process backend: the live Sequitur builders stay here — freeze a
        # picklable (grammar, tokens, length) snapshot per member and ship
        # only that.
        length = len(self.state)
        payloads = [
            (member._builder.freeze(), member.tokens(), length) for member in self.members
        ]
        return executor.map(_frozen_density_task, payloads)

    def density_curve(self) -> np.ndarray:
        """Ensemble rule density curve over the stream so far."""
        curves = self._snapshot_curves()
        kept = select_by_std(curves, self.selectivity)
        survivors = [normalize_curve(curves[i]) for i in kept]
        return combine_curves(survivors, self.combiner)

    def detect(self, k: int = 3) -> list[Anomaly]:
        """Top-``k`` anomalies over the stream so far."""
        validate_window(self.window, len(self))
        return extract_candidates(self.density_curve(), self.window, k, minimize=True)
