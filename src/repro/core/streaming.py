"""Streaming grammar-induction anomaly detection (extension).

The paper motivates grammar induction by its linear time complexity for
large-scale data; Sequitur is naturally *incremental*, so the pipeline
extends to streams: each arriving point completes at most one new sliding
window, whose SAX word is computed in O(w) from running prefix sums
(FastPAA), numerosity-reduced online, and fed to a live Sequitur builder.
Snapshotting the grammar at any moment yields the rule density curve over
everything seen so far.

:class:`StreamingGrammarDetector` is one such live member;
:class:`StreamingEnsembleDetector` maintains a fixed parameter bag of
members over the same stream and combines their snapshot curves exactly as
Algorithm 1 does (std filter -> max-normalize -> median).

This is "future work" relative to the paper — nothing here changes the
batch semantics: feeding a whole series point-by-point produces exactly
the same density curve as the batch detector (covered by tests).
"""

from __future__ import annotations

import numpy as np

from repro.core.anomaly import Anomaly, extract_candidates
from repro.core.combiners import combine_curves
from repro.core.selection import normalize_curve, select_by_std
from repro.grammar.density import rule_density_curve
from repro.grammar.sequitur import _SequiturBuilder
from repro.sax.alphabet import indices_to_word
from repro.sax.breakpoints import gaussian_breakpoints
from repro.sax.numerosity import TokenSequence
from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD, constancy_cutoff
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import (
    validate_alphabet_size,
    validate_paa_size,
    validate_window,
)


class StreamingGrammarDetector:
    """One live grammar-induction pipeline over a growing series.

    Parameters
    ----------
    window, paa_size, alphabet_size:
        The discretization of this member (fixed for the stream's life).
    znorm_threshold:
        Constant-window guard, as in the batch pipeline.

    Example
    -------
    >>> import numpy as np
    >>> detector = StreamingGrammarDetector(window=50, paa_size=4, alphabet_size=4)
    >>> for value in np.sin(np.linspace(0, 40 * np.pi, 2000)):
    ...     detector.append(float(value))
    >>> len(detector.density_curve()) == 2000
    True
    """

    def __init__(
        self,
        window: int,
        paa_size: int = 4,
        alphabet_size: int = 4,
        *,
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        self.window = int(window)
        self.paa_size = validate_paa_size(paa_size, self.window)
        self.alphabet_size = validate_alphabet_size(alphabet_size)
        self.znorm_threshold = float(znorm_threshold)
        self._breakpoints = gaussian_breakpoints(self.alphabet_size)
        # Growing buffers (amortized append).
        self._values: list[float] = []
        self._prefix: list[float] = [0.0]
        self._prefix_sq: list[float] = [0.0]
        # Online numerosity reduction state.
        self._last_word: str | None = None
        self._kept_words: list[str] = []
        self._kept_offsets: list[int] = []
        self._builder = _SequiturBuilder()

    def __len__(self) -> int:
        return len(self._values)

    @property
    def n_windows(self) -> int:
        """Completed sliding windows so far."""
        return max(0, len(self._values) - self.window + 1)

    @property
    def n_tokens(self) -> int:
        """Tokens fed to the live grammar so far (after reduction)."""
        return len(self._kept_words)

    def append(self, value: float) -> None:
        """Consume one observation; O(w) amortized."""
        value = float(value)
        if not np.isfinite(value):
            raise ValueError("stream values must be finite")
        self._values.append(value)
        self._prefix.append(self._prefix[-1] + value)
        self._prefix_sq.append(self._prefix_sq[-1] + value * value)
        if len(self._values) < self.window:
            return
        word = self._window_word(len(self._values) - self.window)
        if word != self._last_word:
            self._kept_words.append(word)
            self._kept_offsets.append(len(self._values) - self.window)
            self._last_word = word
            self._builder.feed(word)

    def extend(self, values) -> None:
        """Consume a batch of observations."""
        for value in np.asarray(values, dtype=np.float64):
            self.append(float(value))

    def _window_word(self, start: int) -> str:
        """SAX word of the window starting at ``start`` via prefix sums."""
        n = self.window
        stop = start + n
        total = self._prefix[stop] - self._prefix[start]
        total_sq = self._prefix_sq[stop] - self._prefix_sq[start]
        mean = total / n
        variance = max((total_sq - total * total / n) / (n - 1), 0.0)
        std = float(np.sqrt(variance))
        boundaries = np.arange(self.paa_size + 1) * (n / self.paa_size) + start
        floor = np.floor(boundaries).astype(np.int64)
        frac = boundaries - floor
        values = self._values
        prefix = self._prefix
        cumulative = np.array(
            [
                prefix[int(k)] + f * (values[int(k)] if int(k) < len(values) else 0.0)
                for k, f in zip(floor, frac)
            ]
        )
        coefficients = np.diff(cumulative) / (n / self.paa_size)
        if std < constancy_cutoff(mean, self.znorm_threshold):
            coefficients = np.zeros(self.paa_size)
        else:
            coefficients = (coefficients - mean) / std
        indices = np.searchsorted(self._breakpoints, coefficients, side="right")
        return indices_to_word(indices)

    def tokens(self) -> TokenSequence:
        """Snapshot of the numerosity-reduced token sequence so far."""
        if not self._kept_words:
            raise ValueError(
                f"no complete window yet ({len(self._values)} of {self.window} points)"
            )
        return TokenSequence(
            tuple(self._kept_words),
            np.asarray(self._kept_offsets, dtype=np.int64),
            self.n_windows,
            self.window,
        )

    def density_curve(self) -> np.ndarray:
        """Rule density curve over everything seen so far (snapshot)."""
        tokens = self.tokens()
        grammar = self._builder.freeze()
        return rule_density_curve(grammar, tokens, len(self._values))

    def detect(self, k: int = 3) -> list[Anomaly]:
        """Top-``k`` anomalies over the stream so far."""
        curve = self.density_curve()
        return extract_candidates(curve, self.window, k, minimize=True)


class StreamingEnsembleDetector:
    """Algorithm 1 over a stream: N live members, combined at snapshot time.

    Parameters mirror :class:`repro.core.ensemble.EnsembleGrammarDetector`;
    the ``(w, a)`` bag is sampled once at construction (a stream has one
    life, so the sample is fixed up front).
    """

    def __init__(
        self,
        window: int,
        *,
        max_paa_size: int = 10,
        max_alphabet_size: int = 10,
        ensemble_size: int = 20,
        selectivity: float = 0.4,
        combiner: str = "median",
        seed: RandomState = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        window = int(window)
        max_paa_size = validate_paa_size(max_paa_size, window)
        max_alphabet_size = validate_alphabet_size(max_alphabet_size)
        if ensemble_size < 1:
            raise ValueError(f"ensemble_size must be positive, got {ensemble_size}")
        if not 0.0 < selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        self.window = window
        self.selectivity = float(selectivity)
        self.combiner = combiner
        rng = ensure_rng(seed)
        pool = [
            (int(w), int(a))
            for w in range(2, max_paa_size + 1)
            for a in range(2, max_alphabet_size + 1)
        ]
        count = min(int(ensemble_size), len(pool))
        chosen = rng.choice(len(pool), size=count, replace=False)
        self.parameters = [pool[int(i)] for i in chosen]
        self.members = [
            StreamingGrammarDetector(window, w, a) for w, a in self.parameters
        ]

    def __len__(self) -> int:
        return len(self.members[0]) if self.members else 0

    def append(self, value: float) -> None:
        """Feed one observation to every member."""
        for member in self.members:
            member.append(value)

    def extend(self, values) -> None:
        for value in np.asarray(values, dtype=np.float64):
            self.append(float(value))

    def density_curve(self) -> np.ndarray:
        """Ensemble rule density curve over the stream so far."""
        curves = [member.density_curve() for member in self.members]
        kept = select_by_std(curves, self.selectivity)
        survivors = [normalize_curve(curves[i]) for i in kept]
        return combine_curves(survivors, self.combiner)

    def detect(self, k: int = 3) -> list[Anomaly]:
        """Top-``k`` anomalies over the stream so far."""
        validate_window(self.window, len(self))
        return extract_candidates(self.density_curve(), self.window, k, minimize=True)
