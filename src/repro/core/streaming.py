"""Streaming grammar-induction anomaly detection (extension).

The paper motivates grammar induction by its linear time complexity for
large-scale data; Sequitur is naturally *incremental*, so the pipeline
extends to streams. The streaming path is built on the execution engine
(:mod:`repro.core.engine`): every arriving chunk lands in one
:class:`~repro.core.engine.SharedStreamState` — a numpy-backed buffer with
running prefix sums — and ``extend()`` computes all newly completed windows'
z-normalized PAA rows and SAX symbols in one vectorized pass per distinct
PAA size, feeding only the numerosity-kept words to each live member.
Snapshotting at any moment yields the rule density curve over the live
range of the stream.

:class:`StreamingGrammarDetector` is one such live member;
:class:`StreamingEnsembleDetector` maintains a fixed parameter bag of
members over the *same shared stream state* (memory O(stream + N·w) rather
than N copies of the stream) and combines their snapshot curves exactly as
Algorithm 1 does (std filter -> max-normalize -> median).

Bounded-memory streaming
------------------------
By default the stream state (and every member's token list and grammar)
grows with the stream — the batch-parity mode, where feeding a whole series
point-by-point or in arbitrary chunks produces exactly the same density
curve as the batch detector (covered by the streaming-parity tests, which
are the contract).

``capacity=`` turns on eviction for infinite streams: the state becomes a
compacting ring buffer retiring points past the horizon, members prune
tokens whose windows slid out, and grammars forget accordingly. Memory is
O(capacity + N·w) regardless of stream length. Two policies:

- ``policy="sliding"`` (exact): the horizon is exactly the last
  ``capacity`` points. Window discretization and the kept-token stream stay
  bitwise identical to the unbounded path inside the horizon (the state
  keeps the absolute prefix sums), and each snapshot *re-induces* the
  grammar over exactly the live tokens — equivalently, every token whose
  window slid out has been un-ingested. Density is renormalized over the
  live horizon only.
- ``policy="decay"`` (approximate, amortized): tokens are segmented into
  generations (:class:`~repro.grammar.sequitur.GenerationalSequitur`), each
  with its own live incremental Sequitur builder; the horizon advances in
  generation steps and expired generations are dropped wholesale, rules
  retired by refcount. Snapshots reuse the frozen grammars of sealed
  generations (only the newest generation is re-frozen), at the cost of two
  relaxed guarantees: retention overshoots the horizon by up to one
  generation, and rules never span a generation boundary.

Bounded detectors report anomalies in *absolute* stream positions; their
``density_curve()`` covers ``[horizon_start, len(stream))``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import replace

import numpy as np

from repro.core.anomaly import Anomaly, extract_candidates
from repro.core.combiners import COMBINERS, combine_curves
from repro.core.engine import EVICTION_POLICIES, SharedStreamState
from repro.core.executors import ExecutorOwnerMixin, MemberExecutor
from repro.core.selection import normalize_curve, select_by_std
from repro.grammar import _kernel
from repro.grammar.density import density_curve_from_token_spans, rule_density_curve
from repro.grammar.sequitur import GenerationalSequitur, _SequiturBuilder, induce_grammar
from repro.obs.stages import stage_timer
from repro.sax.alphabet import WordInterner, pack_symbol_rows
from repro.sax.numerosity import STRATEGIES, TokenSequence, kept_window_mask
from repro.sax.plan import DiscretizationPlan
from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import (
    validate_alphabet_size,
    validate_paa_size,
    validate_window,
)

#: Window starts discretized per drain block — bounds the transient PAA/
#: symbol matrices even when one huge chunk arrives, so bounded-memory
#: streams stay bounded during ingest as well as between chunks.
_DRAIN_BLOCK = 65_536

#: Dead tokens tolerated at the front of a member's kept lists before the
#: lists are physically compacted (amortized O(1) per token).
_PRUNE_SLACK = 1024

#: Version of the in-memory session-snapshot structure produced by
#: :meth:`StreamingEnsembleDetector.snapshot`. Bumped on any incompatible
#: change; :meth:`StreamingEnsembleDetector.restore` rejects other versions
#: with :class:`SnapshotVersionError` instead of producing garbage.
SNAPSHOT_STATE_VERSION = 1

#: The ``format`` tag stamped into every session snapshot.
SNAPSHOT_FORMAT = "repro-session"


class SnapshotVersionError(ValueError):
    """A snapshot's format/version is not one this build can restore."""


def _make_state(
    capacity: int | None,
    policy: str,
    segments: int,
    window: int,
) -> SharedStreamState:
    """Build (and validate) the stream state for a detector's parameters."""
    if capacity is not None and int(capacity) < int(window):
        raise ValueError(
            f"capacity={capacity} is smaller than one window ({window}); "
            "at least one complete window must stay inside the horizon"
        )
    return SharedStreamState(capacity, policy=policy, segments=segments)


class StreamingGrammarDetector:
    """One live grammar-induction pipeline over a growing series.

    Parameters
    ----------
    window, paa_size, alphabet_size:
        The discretization of this member (fixed for the stream's life).
    znorm_threshold:
        Constant-window guard, as in the batch pipeline.
    numerosity:
        Reduction strategy (``"exact"`` or ``"none"``), as in the batch
        pipeline.
    capacity, policy, segments:
        Bounded-memory streaming (see the module docstring): ``capacity``
        bounds retention to (at least) the last ``capacity`` points and must
        be at least ``window``; ``policy`` picks exact ``"sliding"`` or
        generation-``"decay"`` grammar forgetting. Only valid when the
        member owns its state (otherwise the shared state's configuration
        governs).
    state:
        Optional :class:`~repro.core.engine.SharedStreamState` to attach to.
        When given, this member holds *no* copy of the stream — it only
        tracks its own grammar — and ingestion is driven by the state's
        owner (see :class:`StreamingEnsembleDetector`); ``append``/``extend``
        on the member itself are disabled. When omitted, the member owns a
        private state and is fed directly.

    Example
    -------
    >>> import numpy as np
    >>> detector = StreamingGrammarDetector(window=50, paa_size=4, alphabet_size=4)
    >>> for value in np.sin(np.linspace(0, 40 * np.pi, 2000)):
    ...     detector.append(float(value))
    >>> len(detector.density_curve()) == 2000
    True
    """

    def __init__(
        self,
        window: int,
        paa_size: int = 4,
        alphabet_size: int = 4,
        *,
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
        numerosity: str = "exact",
        capacity: int | None = None,
        policy: str | None = None,
        segments: int | None = None,
        state: SharedStreamState | None = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        if numerosity not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {numerosity!r}; expected one of {STRATEGIES}"
            )
        self.window = int(window)
        self.paa_size = validate_paa_size(paa_size, self.window)
        self.alphabet_size = validate_alphabet_size(alphabet_size)
        self.znorm_threshold = float(znorm_threshold)
        self.numerosity = numerosity
        self._owns_state = state is None
        if state is None:
            state = _make_state(
                capacity,
                "sliding" if policy is None else policy,
                4 if segments is None else segments,
                self.window,
            )
        elif capacity is not None or policy is not None or segments is not None:
            raise ValueError(
                "capacity/policy/segments belong to the stream state; a member "
                "attached to a shared state inherits its eviction configuration"
            )
        elif state.capacity is not None and state.capacity < self.window:
            raise ValueError(
                f"shared state capacity={state.capacity} is smaller than one "
                f"window ({self.window})"
            )
        self.state = state
        #: Single-member discretization plan: with ``amin == amax == a`` the
        #: merged table *is* ``gaussian_breakpoints(a)`` and ``symbols_for``
        #: is the identity column, so the shared sweep is bitwise equal to
        #: the historical direct ``searchsorted`` against the member table.
        self._plan = DiscretizationPlan(
            self.window,
            [(self.paa_size, self.alphabet_size)],
            znorm_threshold=self.znorm_threshold,
            min_alphabet_size=self.alphabet_size,
        )
        #: Grammar kernel pinned at construction (see
        #: :mod:`repro.grammar._kernel`): a mid-stream ``REPRO_KERNEL``
        #: change must not mix kernels within one member's life.
        self._kernel = _kernel.current_kernel()
        #: Window starts already discretized and fed to the grammar.
        self._consumed = 0
        #: Symbol row of the last seen window (online numerosity reduction
        #: across chunk boundaries).
        self._last_symbols: np.ndarray | None = None
        #: Kept tokens as interned ids against :attr:`_interner`'s
        #: vocabulary — word strings are materialized only at snapshot
        #: boundaries (frozen grammars, process payloads, ``tokens()``).
        self._interner = WordInterner()
        self._kept_ids: list[int] = []
        self._kept_offsets: list[int] = []
        #: Index into the kept lists of the first *live* token.
        self._live_from = 0
        #: Monotone counters identifying the live token set (cache keys that
        #: survive list compaction).
        self._total_kept = 0
        self._total_pruned = 0
        #: Grammar backend, by mode: a live Sequitur builder (unbounded), a
        #: snapshot-induction cache (sliding), or generation-segmented
        #: builders dropped wholesale as the horizon passes them (decay).
        self._builder = None
        #: How many of :attr:`_kept_ids` the unbounded builder has consumed.
        #: Feeding is deferred to poll time (:meth:`_catch_up_builder`): the
        #: grammar is a deterministic function of the kept-id sequence, so
        #: catching up at the next snapshot is bitwise equal to eager
        #: feeding — and ingest-only workloads never pay for it.
        self._builder_fed = 0
        self._generations: GenerationalSequitur | None = None
        self._snapshot_cache: tuple[tuple[int, int], "object"] | None = None
        #: Sliding fast path: the kernel builder over the live ids, tagged
        #: with the prune counter it was anchored at (see _sliding_spans).
        self._span_builder: tuple[int, "object"] | None = None
        #: Last snapshot curve, keyed by the shared state's version counter:
        #: repeated ``density_curve()`` polls without new data are O(1).
        self._curve_cache: tuple[int, np.ndarray] | None = None
        if self.state.capacity is None:
            if self._kernel == "python":
                self._builder = _SequiturBuilder()
            else:
                self._builder = _kernel.make_builder(self._kernel)
        elif self.state.policy == "decay":
            self._generations = GenerationalSequitur(
                self.state.generation_size,
                kernel=self._kernel,
                vocabulary=self._interner.vocabulary,
            )

    def __len__(self) -> int:
        return len(self.state)

    @property
    def bounded(self) -> bool:
        """Whether this member runs with a retention horizon."""
        return self.state.capacity is not None

    @property
    def horizon_start(self) -> int:
        """Global index of the first live stream point (0 when unbounded)."""
        return self.state.start

    @property
    def n_windows(self) -> int:
        """Completed sliding windows so far (global count)."""
        return self.state.n_windows(self.window)

    @property
    def n_tokens(self) -> int:
        """Live tokens (after reduction and any horizon pruning)."""
        return len(self._kept_ids) - self._live_from

    @property
    def retired_tokens(self) -> int:
        """Tokens whose windows slid out of the horizon (0 when unbounded)."""
        return self._total_pruned

    def memory_bytes(self) -> int:
        """O(1) estimate of this member's retained bytes.

        Counts the kept token ids and offsets (CPython ``int`` prices), the
        interner's vocabulary (one string per *distinct* word ever seen),
        and the live grammar state (builder arena or generation set) —
        *excluding* the shared stream state, which is stored once per
        stream and accounted separately via
        :attr:`~repro.core.engine.SharedStreamState.nbytes`. An estimate,
        not an exact measurement: it is what the serving layer's session
        memory budget accounts against.
        """
        kept = len(self._kept_ids)
        total = kept * 72 + self._interner.memory_bytes()
        if self._builder is not None:
            if self._kernel == "python":
                # ~3 CPython symbol objects per fed token in the oracle.
                total += self._total_kept * 200
            else:
                total += self._builder.memory_bytes()
        if self._generations is not None:
            total += self._generations.memory_bytes()
        return total

    def _require_owned_state(self) -> None:
        if not self._owns_state:
            raise ValueError(
                "this member shares its stream state; feed the owning "
                "ensemble instead of the member"
            )

    def append(self, value: float) -> None:
        """Consume one observation; amortized O(w)."""
        self._require_owned_state()
        self.state.append(value)
        self._drain()
        self._evict()

    def extend(self, values) -> None:
        """Consume a batch of observations in one vectorized pass."""
        self._require_owned_state()
        self.state.extend(values)
        self._drain()
        self._evict()

    def _drain(self) -> None:
        """Discretize every completed-but-unseen window and feed the grammar.

        Runs in fixed-size blocks so the transient PAA/symbol matrices stay
        bounded no matter how large one chunk is; block boundaries are
        invisible to the result (numerosity reduction carries
        ``_last_symbols`` across them).
        """
        n_windows = self.state.n_windows(self.window)
        while self._consumed < n_windows:
            stop = min(self._consumed + _DRAIN_BLOCK, n_windows)
            # The sweep fires the paa/discretize stage timers internally.
            sweep = self.state.sweep(self._plan, self._consumed, stop=stop)
            symbols = sweep.symbol_rows(self.paa_size, self.alphabet_size)
            with stage_timer("grammar"):
                self._ingest_symbols(symbols, self._consumed)

    def _evict(self) -> None:
        """Advance the retention horizon and forget what slid out."""
        if self.state.capacity is None:
            return
        start = self.state.trim()
        self._forget_before(start)

    def _forget_before(self, start: int) -> None:
        """Prune tokens whose window start precedes ``start`` (amortized O(1)).

        The kept-offset list is sorted, so the new live boundary is one
        bisect away; the dead prefix is physically deleted only once it
        outweighs the live part. Under the decay policy, grammar
        generations that ended before ``start`` are dropped wholesale.
        """
        if start <= 0:
            return
        live_from = bisect_left(self._kept_offsets, start, lo=self._live_from)
        if live_from != self._live_from:
            self._total_pruned += live_from - self._live_from
            self._live_from = live_from
        if self._live_from > _PRUNE_SLACK and self._live_from * 2 > len(self._kept_ids):
            # Compaction only ever runs in a call that just advanced
            # _total_pruned, so the sliding span builder's anchor check
            # (_sliding_spans) can never see a silently-shifted list.
            del self._kept_ids[: self._live_from]
            del self._kept_offsets[: self._live_from]
            self._live_from = 0
        if self._generations is not None:
            self._generations.drop_before(start)

    def _ingest_symbols(self, symbols: np.ndarray, first_start: int) -> None:
        """Numerosity-reduce a block of per-window symbol rows and feed them.

        ``symbols`` holds one row per window start in
        ``first_start .. first_start + len(symbols) - 1``. Two windows share
        a SAX word exactly when their symbol rows are equal, so run
        boundaries are found on the index matrix and the kept rows are
        interned to integer ids — the same string-free fast path as the
        batch :class:`~repro.core.multiresolution.MultiResolutionDiscretizer`;
        a word string is built once per *distinct* row, ever. Id kernels
        feed the ids directly; the oracle kernel feeds the interned strings
        (equal strings, so the induced grammar is bitwise identical).
        """
        count = len(symbols)
        if count == 0:
            return
        codes = pack_symbol_rows(symbols)
        if self.numerosity == "exact":
            if codes is None:
                keep = kept_window_mask(symbols)
                if self._last_symbols is not None:
                    keep[0] = bool(np.any(symbols[0] != self._last_symbols))
            else:
                # Packing is injective, so run boundaries on the scalar
                # codes are exactly kept_window_mask's row comparisons —
                # including the chunk-boundary carry against the last row
                # of the previous block.
                keep = np.ones(count, dtype=bool)
                keep[1:] = codes[1:] != codes[:-1]
                if self._last_symbols is not None:
                    keep[0] = codes[0] != pack_symbol_rows(self._last_symbols[None, :])[0]
            kept_idx = np.flatnonzero(keep)
            self._last_symbols = np.array(symbols[-1], dtype=np.int64)
        else:
            kept_idx = np.arange(count)
        if codes is None:
            ids = self._interner.intern_matrix(symbols[kept_idx]).tolist()
        else:
            ids = self._interner.intern_packed(
                codes[kept_idx], symbols.shape[1]
            ).tolist()
        offsets = (kept_idx + first_start).tolist()
        self._kept_ids.extend(ids)
        self._kept_offsets.extend(offsets)
        self._total_kept += len(ids)
        # Unbounded builders catch up lazily at the next poll
        # (_catch_up_builder); only the decay generations must observe
        # every token eagerly (generation boundaries are offset-driven).
        if self._generations is not None:
            # Generation routing can seal (and freeze) mid-ingest, and the
            # oracle kernel feeds word strings — both index the vocabulary
            # list the router captured at construction, so any words the
            # packed intern path deferred must be materialized first.
            _ = self._interner.vocabulary
            feed_id = self._generations.feed_id
            for token_id, offset in zip(ids, offsets):
                feed_id(token_id, offset)
        self._consumed = first_start + count

    def _catch_up_builder(self) -> None:
        """Feed the unbounded builder every kept id it has not yet seen.

        Grammar induction is a deterministic function of the fed token
        sequence and unbounded members never prune, so deferring the feed
        from ingest to the first poll that needs the grammar produces a
        bitwise-identical builder — while extend-only ingestion (the
        serving hot path) skips grammar work entirely.
        """
        if self._builder_fed >= len(self._kept_ids):
            return
        pending = self._kept_ids[self._builder_fed :]
        with stage_timer("grammar"):
            if self._kernel == "python":
                vocabulary = self._interner.vocabulary
                feed = self._builder.feed
                for token_id in pending:
                    feed(vocabulary[token_id])
            else:
                self._builder.feed_many(pending)
        self._builder_fed = len(self._kept_ids)

    # ------------------------------------------------------------------
    # Snapshot / restore (serialization).
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Serializable state of this member (shared stream excluded).

        Holds the live kept tokens (as interned ids + window offsets), the
        vocabulary that gives those ids meaning, and the ingest cursors.
        Grammar builders are deliberately *not* exported: a grammar is a
        deterministic function of the token sequence fed to it, so
        :meth:`_restore_state` rebuilds them by replaying the live ids —
        smaller snapshots, no kernel-private structures on the wire, and
        restorability across grammar kernels (the kernel-equivalence
        contract makes the replayed grammars bitwise identical).
        """
        return {
            "paa_size": int(self.paa_size),
            "alphabet_size": int(self.alphabet_size),
            "consumed": int(self._consumed),
            "last_symbols": (
                None if self._last_symbols is None else self._last_symbols.copy()
            ),
            "vocabulary": list(self._interner.vocabulary),
            "kept_ids": np.asarray(self._kept_ids[self._live_from :], dtype=np.int64),
            "kept_offsets": np.asarray(
                self._kept_offsets[self._live_from :], dtype=np.int64
            ),
            "total_kept": int(self._total_kept),
            "total_pruned": int(self._total_pruned),
        }

    def _restore_state(self, data: dict) -> None:
        """Install :meth:`export_state` output into a freshly built member.

        The member must already be attached to the restored shared state and
        configured identically (window, sizes, numerosity). Unbounded
        members never prune, so their exported kept lists are the complete
        fed sequence and replaying them reconstructs the live builder
        exactly; sliding members rebuild their span builder lazily at the
        next poll; decay members replay through
        :meth:`~repro.grammar.sequitur.GenerationalSequitur.replay` (pure
        offset routing, so generations re-seal at identical boundaries).
        """
        if int(data["paa_size"]) != self.paa_size or int(data["alphabet_size"]) != self.alphabet_size:
            raise ValueError(
                f"member snapshot is for (w={data['paa_size']}, a={data['alphabet_size']}), "
                f"not (w={self.paa_size}, a={self.alphabet_size})"
            )
        self._interner = WordInterner.from_vocabulary(data["vocabulary"])
        ids = [int(i) for i in np.asarray(data["kept_ids"], dtype=np.int64)]
        offsets = [int(o) for o in np.asarray(data["kept_offsets"], dtype=np.int64)]
        if len(ids) != len(offsets):
            raise ValueError(
                f"member snapshot holds {len(ids)} ids but {len(offsets)} offsets"
            )
        if ids and (min(ids) < 0 or max(ids) >= len(self._interner.vocabulary)):
            raise ValueError("member snapshot token ids fall outside its vocabulary")
        self._kept_ids = ids
        self._kept_offsets = offsets
        self._live_from = 0
        self._total_kept = int(data["total_kept"])
        self._total_pruned = int(data["total_pruned"])
        self._consumed = int(data["consumed"])
        last = data["last_symbols"]
        self._last_symbols = None if last is None else np.asarray(last, dtype=np.int64)
        self._snapshot_cache = None
        self._span_builder = None
        self._curve_cache = None
        if self._builder is not None:
            # Replay is deferred: a fresh builder plus _builder_fed = 0
            # makes the next poll's _catch_up_builder feed the complete
            # kept sequence — identical to an eager replay here, but
            # restore itself stays O(tokens-copied).
            if self._kernel == "python":
                self._builder = _SequiturBuilder()
            else:
                self._builder = _kernel.make_builder(self._kernel)
            self._builder_fed = 0
        elif self._generations is not None:
            self._generations = GenerationalSequitur.replay(
                zip(ids, offsets),
                generation_size=self.state.generation_size,
                kernel=self._kernel,
                vocabulary=self._interner.vocabulary,
            )

    # ------------------------------------------------------------------
    # Snapshots.
    # ------------------------------------------------------------------

    def _live_tokens(self) -> tuple[tuple[str, ...], np.ndarray]:
        vocabulary = self._interner.vocabulary
        words = tuple(vocabulary[i] for i in self._kept_ids[self._live_from :])
        offsets = np.asarray(self._kept_offsets[self._live_from :], dtype=np.int64)
        return words, offsets

    def _live_offsets(self) -> np.ndarray:
        return np.asarray(self._kept_offsets[self._live_from :], dtype=np.int64)

    def _frozen_grammar(self):
        """Freeze the unbounded live builder (kernel-appropriate call)."""
        self._catch_up_builder()
        if self._kernel == "python":
            return self._builder.freeze()
        return self._builder.freeze(self._interner.vocabulary)

    def tokens(self) -> TokenSequence:
        """Snapshot of the live numerosity-reduced token sequence.

        Unbounded members return every token seen; bounded members return
        the tokens whose windows start inside the horizon — exactly the
        unbounded token stream restricted to ``offset >= horizon_start``.
        """
        if self.n_windows == 0:
            raise ValueError(
                f"no complete window yet ({len(self.state)} of {self.window} points)"
            )
        words, offsets = self._live_tokens()
        if not words:
            raise ValueError(
                "no live tokens: every kept word's window starts before the "
                f"eviction horizon {self.state.start}"
            )
        return TokenSequence(words, offsets, self.n_windows, self.window)

    def _sliding_grammar(self, words: tuple[str, ...]):
        """Grammar over exactly the live tokens (cached per live set)."""
        key = (self._total_kept, self._total_pruned)
        if self._snapshot_cache is not None and self._snapshot_cache[0] == key:
            return self._snapshot_cache[1]
        grammar = induce_grammar(words)
        self._snapshot_cache = (key, grammar)
        return grammar

    def _sliding_spans(self) -> tuple[np.ndarray, np.ndarray]:
        """Occurrence spans of the grammar over exactly the live token ids.

        Amortized prune-and-repair, the id-kernel sliding path: while no
        token has been pruned since the cached builder was anchored, the
        live sequence has only grown at the right end — where Sequitur *is*
        incremental — so the builder is repaired by feeding just the new
        suffix. Once the horizon has claimed tokens, the dead prefix
        invalidates the grammar (Sequitur output depends on the whole
        sequence, and the parity contract is re-induction over exactly the
        live tokens), so the builder is rebuilt over the live ids: O(live)
        work bounded by the capacity, never by the stream length — which is
        what keeps poll latency flat as the stream grows.

        The anchor check is sound against list compaction: compaction only
        runs inside a ``_forget_before`` call that just advanced
        ``_total_pruned``, so an unchanged prune counter guarantees both an
        unchanged ``_live_from`` and an unshifted list.
        """
        cached = self._span_builder
        if cached is not None and cached[0] == self._total_pruned:
            builder = cached[1]
            delta = self._kept_ids[self._live_from + builder.n_tokens :]
            if delta:
                builder.feed_many(delta)
        else:
            builder = _kernel.make_builder(self._kernel)
            builder.feed_many(self._kept_ids[self._live_from :])
            self._span_builder = (self._total_pruned, builder)
        return builder.occurrence_spans()

    def density_curve(self) -> np.ndarray:
        """Rule density curve over the live stream range (snapshot).

        Unbounded: the full-stream curve, bitwise equal to the batch
        pipeline's. Bounded: the curve over ``[horizon_start, len(self))``
        — index ``i`` covers absolute point ``horizon_start + i`` — built
        from the live tokens only and renormalized over the live horizon.

        The last snapshot is memoized keyed on the shared state's
        :attr:`~repro.core.engine.SharedStreamState.version`, so repeated
        polls without new data return the cached curve without re-inducing
        anything. The returned array is the cached object — treat it as
        read-only.
        """
        if self.n_windows == 0:
            raise ValueError(
                f"no complete window yet ({len(self.state)} of {self.window} points)"
            )
        version = self.state.version
        if self._curve_cache is not None and self._curve_cache[0] == version:
            return self._curve_cache[1]
        with stage_timer("density"):
            curve = self._compute_density_curve()
        self._curve_cache = (version, curve)
        return curve

    def _compute_density_curve(self) -> np.ndarray:
        """The uncached snapshot computation behind :meth:`density_curve`.

        The oracle kernel takes the reference route (freeze to a
        :class:`~repro.grammar.rules.Grammar`, then
        :func:`rule_density_curve`); id kernels fuse it — occurrence spans
        are read straight off the builder arena and scattered into the
        curve, with no frozen grammar, no per-occurrence objects, and no
        word strings. Both routes end in the same integer scatter-add over
        the same interval multiset, so they are bitwise identical.
        """
        if self._builder is not None:
            self._catch_up_builder()
            if self._kernel == "python":
                return rule_density_curve(
                    self._frozen_grammar(), self.tokens(), len(self.state)
                )
            # Unbounded members always have >= 1 live token once a window
            # completed (the caller checked n_windows), so no empty guard.
            firsts, lasts = self._builder.occurrence_spans()
            return density_curve_from_token_spans(
                self._live_offsets(), self.window, firsts, lasts, len(self.state)
            )
        start = self.state.start
        length = self.state.live_length
        if self.n_tokens == 0:
            # Every kept token expired (e.g. one constant run spanning the
            # whole horizon): no rules, zero density everywhere.
            return np.zeros(length, dtype=np.float64)
        if self._generations is not None:
            if self._kernel == "python":
                words, offsets = self._live_tokens()
                tokens = TokenSequence(words, offsets, self.n_windows, self.window)
                return _generation_density(
                    self._generations.live_grammars(),
                    words,
                    offsets,
                    self._generations.generation_size,
                    tokens,
                    start,
                    length,
                )
            return _generation_density_from_spans(
                self._generations.live_spans(),
                self._live_offsets(),
                self._generations.generation_size,
                self.window,
                start,
                length,
            )
        if self._kernel == "python":
            words, offsets = self._live_tokens()
            tokens = TokenSequence(words, offsets, self.n_windows, self.window)
            grammar = self._sliding_grammar(words)
            return rule_density_curve(grammar, tokens, length, horizon_start=start)
        firsts, lasts = self._sliding_spans()
        return density_curve_from_token_spans(
            self._live_offsets(), self.window, firsts, lasts, length, horizon_start=start
        )

    def detect(self, k: int = 3) -> list[Anomaly]:
        """Top-``k`` anomalies over the live stream range.

        Positions are absolute stream indices (a bounded member's curve
        starts at :attr:`horizon_start`, and candidates are shifted back).
        """
        curve = self.density_curve()
        candidates = extract_candidates(curve, self.window, k, minimize=True)
        start = self.state.start
        if start:
            candidates = [replace(a, position=a.position + start) for a in candidates]
        return candidates


def _generation_density(
    generations,
    words: tuple[str, ...],
    offsets: np.ndarray,
    generation_size: int,
    tokens: TokenSequence,
    start: int,
    length: int,
) -> np.ndarray:
    """Sum of per-generation density curves over the live horizon.

    Each live generation's frozen grammar covers exactly the live tokens
    whose offsets fall in its ``generation_size`` point range (the horizon
    only advances in whole generations, so no generation is partially
    expired). Rules never span generations — the decay policy's relaxed
    guarantee — so the curves simply add.
    """
    curve = np.zeros(length, dtype=np.float64)
    for index, grammar, count in generations:
        first = int(np.searchsorted(offsets, index * generation_size, side="left"))
        stop = int(np.searchsorted(offsets, (index + 1) * generation_size, side="left"))
        if stop - first != count:
            raise RuntimeError(
                f"generation {index} holds {count} tokens but {stop - first} "
                "live tokens fall in its range; horizon and generations are "
                "out of step"
            )
        if first == stop:
            continue
        generation_tokens = TokenSequence(
            words[first:stop], offsets[first:stop], tokens.n_windows, tokens.window
        )
        curve += rule_density_curve(
            grammar, generation_tokens, length, horizon_start=start
        )
    return curve


def _generation_density_from_spans(
    spans,
    offsets: np.ndarray,
    generation_size: int,
    window: int,
    start: int,
    length: int,
) -> np.ndarray:
    """Id-kernel twin of :func:`_generation_density`, with no grammars.

    Sealed generations' occurrence spans were extracted once at seal time
    (:meth:`GenerationalSequitur.live_spans`) — only the growing generation
    is re-read per poll. Each generation's spans index its own token slice,
    found by the same offset bisection as the reference path; accumulation
    order (oldest first) matches, so the float sum is bitwise identical.
    """
    curve = np.zeros(length, dtype=np.float64)
    for index, firsts, lasts, count in spans:
        first = int(np.searchsorted(offsets, index * generation_size, side="left"))
        stop = int(np.searchsorted(offsets, (index + 1) * generation_size, side="left"))
        if stop - first != count:
            raise RuntimeError(
                f"generation {index} holds {count} tokens but {stop - first} "
                "live tokens fall in its range; horizon and generations are "
                "out of step"
            )
        if first == stop:
            continue
        curve += density_curve_from_token_spans(
            offsets[first:stop], window, firsts, lasts, length, horizon_start=start
        )
    return curve


def _member_snapshot_curve(member: "StreamingGrammarDetector") -> np.ndarray:
    """Thread task: one member's snapshot rule density curve."""
    return member.density_curve()


def _snapshot_density_task(payload) -> np.ndarray:
    """Process task: density curve of a picklable member snapshot.

    The live Sequitur state never leaves the parent process; what crosses
    the boundary depends on the member's mode — a frozen grammar plus
    tokens (unbounded), the live tokens to re-induce from (sliding), or the
    per-generation frozen grammars (decay).
    """
    kind, data = payload
    if kind == "frozen":
        grammar, tokens, length = data
        return rule_density_curve(grammar, tokens, length)
    if kind == "sliding":
        tokens, start, length = data
        if tokens is None:
            return np.zeros(length, dtype=np.float64)
        grammar = induce_grammar(tokens.words)
        return rule_density_curve(grammar, tokens, length, horizon_start=start)
    if kind == "decay":
        generations, tokens, generation_size, start, length = data
        if tokens is None:
            return np.zeros(length, dtype=np.float64)
        return _generation_density(
            generations,
            tokens.words,
            tokens.offsets,
            generation_size,
            tokens,
            start,
            length,
        )
    raise ValueError(f"unknown snapshot payload kind {kind!r}")


class StreamingEnsembleDetector(ExecutorOwnerMixin):
    """Algorithm 1 over a stream: N live members on one shared stream state.

    Parameters mirror :class:`repro.core.ensemble.EnsembleGrammarDetector`
    (including ``znorm_threshold`` and ``numerosity``, so a streaming
    ensemble configured like a batch one produces the *same* curve); the
    ``(w, a)`` bag is sampled once at construction (a stream has one life,
    so the sample is fixed up front). ``capacity``/``policy``/``segments``
    turn on bounded-memory streaming for infinite inputs (see the module
    docstring); ``capacity`` must be at least ``window``.

    All members reference a single :class:`~repro.core.engine.SharedStreamState`
    — the stream is stored once, not per member — and ``extend()`` ingests
    each chunk with one vectorized PAA/interval pass per distinct PAA size,
    shared by every member of that size via the merged breakpoint table.

    ``executor`` parallelizes the *snapshot* side (``density_curve`` /
    ``detect``), where every member's grammar is turned into a rule density
    curve: thread workers call the live members directly, process workers
    receive a picklable snapshot per member (the live Sequitur state never
    leaves this process). Ingest stays serial — it is already one
    vectorized pass. Results are identical across backends.
    """

    def __init__(
        self,
        window: int,
        *,
        max_paa_size: int = 10,
        max_alphabet_size: int = 10,
        ensemble_size: int = 20,
        selectivity: float = 0.4,
        combiner: str = "median",
        numerosity: str = "exact",
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
        capacity: int | None = None,
        policy: str = "sliding",
        segments: int = 4,
        seed: RandomState = None,
        executor: MemberExecutor | str | None = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        window = int(window)
        max_paa_size = validate_paa_size(max_paa_size, window)
        max_alphabet_size = validate_alphabet_size(max_alphabet_size)
        if ensemble_size < 1:
            raise ValueError(f"ensemble_size must be positive, got {ensemble_size}")
        if not 0.0 < selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        if combiner not in COMBINERS:
            raise ValueError(f"unknown combiner {combiner!r}; expected one of {COMBINERS}")
        self.window = window
        self.max_paa_size = max_paa_size
        self.max_alphabet_size = max_alphabet_size
        self.selectivity = float(selectivity)
        self.combiner = combiner
        self.numerosity = numerosity
        self.znorm_threshold = float(znorm_threshold)
        self._init_executor(executor)
        rng = ensure_rng(seed)
        pool = [
            (int(w), int(a))
            for w in range(2, max_paa_size + 1)
            for a in range(2, max_alphabet_size + 1)
        ]
        count = min(int(ensemble_size), len(pool))
        chosen = rng.choice(len(pool), size=count, replace=False)
        self.parameters = [pool[int(i)] for i in chosen]
        self.ensemble_size = len(self.parameters)
        #: The single stream buffer every member references.
        self.state = _make_state(capacity, policy, segments, window)
        #: Shared multi-window discretization plan: one sweep per drained
        #: block serves every member (PAA per distinct paa_size, one merged
        #: binary search, per-member symbol lookup).
        self._plan = DiscretizationPlan(
            window,
            self.parameters,
            znorm_threshold=self.znorm_threshold,
            max_alphabet_size=max_alphabet_size,
        )
        self._alphabet_table = self._plan.alphabet_table
        self.members = [
            StreamingGrammarDetector(
                window,
                w,
                a,
                znorm_threshold=self.znorm_threshold,
                numerosity=self.numerosity,
                state=self.state,
            )
            for w, a in self.parameters
        ]
        #: Members grouped by PAA size — the vectorized ingest shares one
        #: PAA/interval pass per distinct size.
        self._by_paa_size: dict[int, list[StreamingGrammarDetector]] = {}
        for member in self.members:
            self._by_paa_size.setdefault(member.paa_size, []).append(member)
        #: Snapshot memoization keyed by the state's version counter: the
        #: combined ensemble curve, and the last ``detect(k)`` result, so
        #: high-frequency polling without new data is O(1).
        self._curve_cache: tuple[int, np.ndarray] | None = None
        self._detect_cache: tuple[int, int, list] | None = None

    def __len__(self) -> int:
        return len(self.state)

    @property
    def bounded(self) -> bool:
        """Whether the ensemble runs with a retention horizon."""
        return self.state.capacity is not None

    @property
    def horizon_start(self) -> int:
        """Global index of the first live stream point (0 when unbounded)."""
        return self.state.start

    def append(self, value: float) -> None:
        """Feed one observation to the shared state (and every member)."""
        self.state.append(value)
        self._drain()

    def extend(self, values) -> None:
        """Feed a chunk of observations in one vectorized pass."""
        self.state.extend(values)
        self._drain()

    def _drain(self) -> None:
        """Vectorized ingest: one PAA + interval pass per distinct PAA size.

        Large chunks are drained in fixed-size blocks (bounded transient
        memory); once every member has consumed every completed window, the
        retention horizon advances and members forget what slid out.
        """
        n_windows = self.state.n_windows(self.window)
        # Every member is drained in lock-step by this loop (members never
        # ingest on their own when attached), so one cursor serves all.
        first = self.members[0]._consumed
        while first < n_windows:
            stop = min(first + _DRAIN_BLOCK, n_windows)
            # One shared sweep per block; the sweep fires the paa and
            # discretize stage timers internally, once per distinct size.
            sweep = self.state.sweep(self._plan, first, stop=stop)
            for paa_size, members in self._by_paa_size.items():
                intervals = sweep.interval_rows(paa_size)
                with stage_timer("grammar"):
                    for member in members:
                        symbols = self._alphabet_table.symbols_for(
                            intervals, member.alphabet_size
                        )
                        member._ingest_symbols(symbols, first)
            first = stop
        if self.state.capacity is not None:
            start = self.state.trim()
            if start:
                for member in self.members:
                    member._forget_before(start)

    def _snapshot_curves(self) -> list[np.ndarray]:
        """Every member's snapshot curve, via the configured executor.

        Curves are deterministic functions of each member's live tokens and
        the shared stream, so all backends return bitwise-identical results.
        """
        executor = self.executor
        if executor is None or executor.kind == "serial":
            return [member.density_curve() for member in self.members]
        if executor.kind == "thread":
            # Members are independent snapshot readers of the shared state;
            # threads can call them directly, zero serialization.
            return executor.map(_member_snapshot_curve, self.members)
        # Process backend: ship a picklable snapshot per member; the live
        # Sequitur builders stay here.
        length = len(self.state)
        start = self.state.start
        live_length = self.state.live_length
        payloads = []
        for member in self.members:
            if member._builder is not None:
                payloads.append(
                    ("frozen", (member._frozen_grammar(), member.tokens(), length))
                )
                continue
            words, offsets = member._live_tokens()
            tokens = (
                TokenSequence(words, offsets, member.n_windows, member.window)
                if words
                else None
            )
            if member._generations is not None:
                payloads.append(
                    (
                        "decay",
                        (
                            member._generations.live_grammars(),
                            tokens,
                            member._generations.generation_size,
                            start,
                            live_length,
                        ),
                    )
                )
            else:
                payloads.append(("sliding", (tokens, start, live_length)))
        return executor.map(_snapshot_density_task, payloads)

    def memory_bytes(self) -> int:
        """O(1) estimate of the bytes this ensemble retains.

        The shared stream buffers (stored once, referenced by every member)
        plus each member's token/offset estimate — the quantity the serving
        layer's global session memory budget sums over its live sessions.
        """
        return self.state.nbytes + sum(member.memory_bytes() for member in self.members)

    # ------------------------------------------------------------------
    # Snapshot / restore (serialization).
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Versioned, self-describing state of this live ensemble.

        The returned dict holds JSON scalars plus numpy arrays (the wire
        encoding lives in :mod:`repro.service.snapshot`): the construction
        configuration, the *sampled* ``(w, a)`` bag (so restore never
        re-samples), the shared stream state with its absolute prefix sums,
        and each member's live tokens. :meth:`restore` rebuilds a detector
        whose every future ``extend``/``detect`` is bitwise identical to
        the original's — the crash-recovery contract of the serving tier.
        """
        return {
            "format": SNAPSHOT_FORMAT,
            "state_version": SNAPSHOT_STATE_VERSION,
            "kernel": _kernel.current_kernel(),
            "config": {
                "window": int(self.window),
                "max_paa_size": int(self.max_paa_size),
                "max_alphabet_size": int(self.max_alphabet_size),
                "selectivity": float(self.selectivity),
                "combiner": self.combiner,
                "numerosity": self.numerosity,
                "znorm_threshold": float(self.znorm_threshold),
                "capacity": self.state.capacity,
                "policy": self.state.policy,
                "segments": int(self.state.segments),
            },
            "parameters": [[int(w), int(a)] for w, a in self.parameters],
            "stream": self.state.export_state(),
            "members": [member.export_state() for member in self.members],
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict,
        *,
        executor: MemberExecutor | str | None = None,
    ) -> "StreamingEnsembleDetector":
        """Rebuild a live ensemble from :meth:`snapshot` output.

        Restoring is kernel-portable: grammars are replayed from the live
        token ids under the *current* ``REPRO_KERNEL``, and the kernel
        equivalence contract keeps the results bitwise identical to the
        snapshotting process's. A snapshot from a different
        ``state_version`` raises :class:`SnapshotVersionError` — a clear
        rejection, never garbage output.
        """
        if not isinstance(snapshot, dict) or snapshot.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotVersionError(
                f"not a {SNAPSHOT_FORMAT} snapshot "
                f"(format={snapshot.get('format')!r})"
                if isinstance(snapshot, dict)
                else f"not a {SNAPSHOT_FORMAT} snapshot"
            )
        version = snapshot.get("state_version")
        if version != SNAPSHOT_STATE_VERSION:
            raise SnapshotVersionError(
                f"snapshot state_version {version!r} is not supported by this "
                f"build (supports {SNAPSHOT_STATE_VERSION}); re-snapshot the "
                "session with a matching version"
            )
        config = snapshot["config"]
        parameters = [(int(w), int(a)) for w, a in snapshot["parameters"]]
        member_states = snapshot["members"]
        if len(parameters) != len(member_states):
            raise ValueError(
                f"snapshot holds {len(parameters)} parameter pairs but "
                f"{len(member_states)} member states"
            )
        instance = cls.__new__(cls)
        instance.window = int(config["window"])
        instance.max_paa_size = validate_paa_size(config["max_paa_size"], instance.window)
        instance.max_alphabet_size = validate_alphabet_size(config["max_alphabet_size"])
        instance.selectivity = float(config["selectivity"])
        instance.combiner = str(config["combiner"])
        if instance.combiner not in COMBINERS:
            raise ValueError(f"unknown combiner {instance.combiner!r}")
        instance.numerosity = str(config["numerosity"])
        if instance.numerosity not in STRATEGIES:
            raise ValueError(f"unknown strategy {instance.numerosity!r}")
        instance.znorm_threshold = float(config["znorm_threshold"])
        instance._init_executor(executor)
        instance.parameters = parameters
        instance.ensemble_size = len(parameters)
        instance.state = SharedStreamState.from_state(snapshot["stream"])
        instance._plan = DiscretizationPlan(
            instance.window,
            parameters,
            znorm_threshold=instance.znorm_threshold,
            max_alphabet_size=instance.max_alphabet_size,
        )
        instance._alphabet_table = instance._plan.alphabet_table
        instance.members = []
        for (w, a), data in zip(parameters, member_states):
            member = StreamingGrammarDetector(
                instance.window,
                w,
                a,
                znorm_threshold=instance.znorm_threshold,
                numerosity=instance.numerosity,
                state=instance.state,
            )
            member._restore_state(data)
            instance.members.append(member)
        instance._by_paa_size = {}
        for member in instance.members:
            instance._by_paa_size.setdefault(member.paa_size, []).append(member)
        instance._curve_cache = None
        instance._detect_cache = None
        return instance

    def density_curve(self) -> np.ndarray:
        """Ensemble rule density curve over the live stream range.

        Bounded ensembles return the curve over ``[horizon_start,
        len(self))``; index ``i`` covers absolute point
        ``horizon_start + i``.

        The combined curve is memoized keyed on the shared state's
        :attr:`~repro.core.engine.SharedStreamState.version`: polling
        without new data returns the cached array (treat it as read-only)
        without touching the members or the executor. Parity is unaffected
        — the cache only ever replays a value the uncached path computed.
        """
        version = self.state.version
        if self._curve_cache is not None and self._curve_cache[0] == version:
            return self._curve_cache[1]
        curves = self._snapshot_curves()
        with stage_timer("combine"):
            kept = select_by_std(curves, self.selectivity)
            survivors = [normalize_curve(curves[i]) for i in kept]
            curve = combine_curves(survivors, self.combiner)
        self._curve_cache = (version, curve)
        return curve

    def detect(self, k: int = 3) -> list[Anomaly]:
        """Top-``k`` anomalies over the live stream range (absolute positions).

        Repeated polls without new data are O(1): the result is memoized
        keyed on ``(state.version, k)`` on top of the curve memoization.
        """
        validate_window(self.window, self.state.live_length)
        version = self.state.version
        k = int(k)
        if self._detect_cache is not None and self._detect_cache[:2] == (version, k):
            return list(self._detect_cache[2])
        curve = self.density_curve()
        candidates = extract_candidates(curve, self.window, k, minimize=True)
        start = self.state.start
        if start:
            candidates = [replace(a, position=a.position + start) for a in candidates]
        self._detect_cache = (version, k, candidates)
        return list(candidates)


__all__ = [
    "EVICTION_POLICIES",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_STATE_VERSION",
    "SnapshotVersionError",
    "StreamingEnsembleDetector",
    "StreamingGrammarDetector",
]
