"""Single-run grammar-induction anomaly detector (paper Section 5).

The GrammarViz-style pipeline with one fixed ``(w, a)``:

1. sliding-window SAX discretization,
2. numerosity reduction,
3. Sequitur grammar induction,
4. rule density curve,
5. top-k non-overlapping minima of the windowed mean density.

This detector is both the building block of the ensemble (each member is one
such run) and the basis of the GI-Random / GI-Fix / GI-Select baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.anomaly import Anomaly, extract_candidates
from repro.core.executors import StatelessBatchMixin
from repro.grammar.density import rule_density_curve
from repro.grammar.rules import Grammar
from repro.grammar.sequitur import induce_grammar
from repro.sax.numerosity import TokenSequence, numerosity_reduction
from repro.sax.sax import discretize
from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD
from repro.utils.validation import (
    ensure_time_series,
    validate_alphabet_size,
    validate_paa_size,
    validate_window,
)


class GrammarAnomalyDetector(StatelessBatchMixin):
    """Grammar-induction anomaly detection with fixed discretization parameters.

    Parameters
    ----------
    window:
        Sliding-window length ``n`` (the approximate anomaly length).
    paa_size:
        PAA size ``w`` — the SAX word length.
    alphabet_size:
        SAX alphabet size ``a``.
    numerosity:
        Numerosity-reduction strategy, ``"exact"`` (paper) or ``"none"``.
    znorm_threshold:
        Constant-window guard for the discretization stage.

    Example
    -------
    >>> import numpy as np
    >>> t = np.linspace(0, 60 * np.pi, 3000)
    >>> series = np.sin(t)
    >>> series[1500:1550] = 0.0  # flatten one half-cycle
    >>> detector = GrammarAnomalyDetector(window=100, paa_size=4, alphabet_size=4)
    >>> anomalies = detector.detect(series, k=3)
    >>> len(anomalies) <= 3
    True
    """

    def __init__(
        self,
        window: int,
        paa_size: int = 4,
        alphabet_size: int = 4,
        *,
        numerosity: str = "exact",
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        self.window = int(window)
        self.paa_size = validate_paa_size(paa_size, self.window)
        self.alphabet_size = validate_alphabet_size(alphabet_size)
        self.numerosity = numerosity
        self.znorm_threshold = float(znorm_threshold)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(window={self.window}, paa_size={self.paa_size}, "
            f"alphabet_size={self.alphabet_size})"
        )

    def tokenize(self, series: np.ndarray) -> TokenSequence:
        """Discretize and numerosity-reduce ``series``."""
        series = ensure_time_series(series, name="series", min_length=2)
        validate_window(self.window, len(series))
        words = discretize(
            series, self.window, self.paa_size, self.alphabet_size, self.znorm_threshold
        )
        return numerosity_reduction(words, self.window, self.numerosity)

    def grammar(self, series: np.ndarray) -> Grammar:
        """Induce the Sequitur grammar of the discretized series."""
        return induce_grammar(self.tokenize(series).words)

    def density_curve(self, series: np.ndarray) -> np.ndarray:
        """Rule density curve of ``series`` (length ``len(series)``)."""
        series = ensure_time_series(series, name="series", min_length=2)
        tokens = self.tokenize(series)
        grammar = induce_grammar(tokens.words)
        return rule_density_curve(grammar, tokens, len(series))

    def detect(self, series: np.ndarray, k: int = 3) -> list[Anomaly]:
        """Top-``k`` non-overlapping low-density windows, most anomalous first."""
        curve = self.density_curve(series)
        return extract_candidates(curve, self.window, k, minimize=True)
