"""Execution engine: shared stream state and pluggable parallel execution.

The paper's pitch is linear-time anomaly detection at scale; this module is
the layer that makes the library production-shaped on both axes:

- :class:`SharedStreamState` — one numpy-backed growable buffer (values plus
  the ``ESum_x``/``ESum_xx`` prefix sums of Algorithm 2) owned once per
  stream and *referenced* by every ensemble member, so a streaming ensemble
  costs O(stream + N·w) memory instead of N independent copies of the
  stream. Appends are amortized O(1) via capacity doubling, and the prefix
  sums are extended with the exact left-associated accumulation order of
  ``np.cumsum`` so streaming results stay bitwise equal to the batch path.
- :func:`compute_member_curves` — the ensemble's member fan-out. Serially it
  shares one :class:`~repro.core.multiresolution.MultiResolutionDiscretizer`
  across all members (Section 6.2); with an executor (or ``n_jobs > 1``)
  members are grouped by PAA size ``w`` and the groups are spread over the
  executor's workers, each sharing the per-``w`` interval matrix among its
  members. Series reach process workers through shared memory, not pickling
  (see :mod:`repro.core.executors`). All paths run the same floating-point
  operations, so results are bitwise identical.
- :func:`detect_batch` / :func:`iter_detect_batch` — the serving shape for
  high-traffic workloads: fan out many *independent* series across an
  executor, each handled by an identically-configured detector clone with a
  deterministic per-series seed, so results do not depend on the backend or
  scheduling order. ``iter_detect_batch`` yields each series' result as it
  completes instead of gathering the whole batch; a worker failure is
  wrapped in :class:`BatchItemError` carrying which input failed.
- :func:`detect_many` — the same fan-out for *stateless* detectors (the
  discord / HOT SAX / RRA / fixed-parameter GI baselines), which is what
  lets the evaluation harness run method comparisons through one shared
  pool.

Example
-------
>>> import numpy as np
>>> from repro.core.engine import SharedStreamState
>>> state = SharedStreamState()
>>> state.extend(np.sin(np.linspace(0, 8 * np.pi, 400)))
400
>>> len(state)
400
>>> state.paa_rows(0, 100, 4).shape
(301, 4)
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.executors import (  # noqa: F401 — re-exported engine API
    BatchItemError,
    MemberExecutor,
    StatelessBatchMixin,
    _check_labels,
    _resolve_executor,
    _resolve_n_jobs,
    _wrap_batch_error,
    detect_many,
    resolve_series,
    share_series_batch,
    validate_executor_spec,
)
from repro.core.multiresolution import MultiResolutionDiscretizer
from repro.grammar import _kernel
from repro.grammar.density import density_curve_from_token_spans, rule_density_curve
from repro.grammar.sequitur import induce_grammar
from repro.obs.stages import stage_timer
from repro.sax.paa import sliding_paa_rows
from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD
from repro.utils.rng import spawn_rngs
from repro.utils.validation import validate_paa_size, validate_window

#: Initial allocation of a fresh stream buffer (doubles on demand).
_INITIAL_CAPACITY = 1024

#: Eviction policies a bounded stream state supports. ``"sliding"`` retires
#: points eagerly at the exact horizon; ``"decay"`` retires them lazily in
#: generation-sized steps so grammar generations can be dropped wholesale.
EVICTION_POLICIES = ("sliding", "decay")


class SharedStreamState:
    """Stream buffer with prefix sums, shared by ensemble members.

    Holds the values seen so far plus the running prefix sums ``ESum_x`` and
    ``ESum_xx`` (Algorithm 2 of the paper) in pre-allocated numpy arrays
    that double in capacity when full. All live detectors over the same
    stream reference one instance, which is what brings a streaming
    ensemble's memory down from O(N·stream) to O(stream + N·w).

    The prefix sums are extended by *resuming* the running total, which
    reproduces the left-associated accumulation order of ``np.cumsum`` over
    the whole series — the batch pipeline's exact floating-point result, no
    matter how the stream is split into ``append``/``extend`` calls.

    Parameters
    ----------
    capacity:
        ``None`` (default) grows the buffer with the stream forever — the
        batch-parity mode. An integer bounds retention: only (at least) the
        last ``capacity`` points stay addressable, and older points are
        retired by :meth:`trim` / :meth:`evict_to`, so an infinite stream
        runs in O(capacity) memory. Retired points keep their *global*
        indices: ``len(self)`` is the total number of points ever seen, and
        every index-taking method speaks global coordinates. Crucially the
        prefix sums stay the absolute running totals from the very first
        point, so for any still-live window ``paa_rows`` is **bitwise
        identical** to what the unbounded state would return.
    policy:
        Eviction granularity used by :meth:`trim`. ``"sliding"`` retires to
        the exact horizon ``len(self) - capacity`` on every trim;
        ``"decay"`` retires lazily in steps of :attr:`generation_size`
        points (retention up to ``capacity + generation_size - 1``), which
        lets generation-segmented grammars above be dropped wholesale.
    segments:
        For the decay policy: how many generations span one capacity, i.e.
        ``generation_size = max(1, capacity // segments)``.
    initial_capacity:
        Size of the first allocation (grows on demand; purely a
        preallocation knob, no semantic effect).
    """

    __slots__ = (
        "_values",
        "_prefix",
        "_prefix_sq",
        "_n",
        "_start",
        "_base",
        "_version",
        "capacity",
        "policy",
        "segments",
    )

    def __init__(
        self,
        capacity: int | None = None,
        *,
        policy: str = "sliding",
        segments: int = 4,
        initial_capacity: int = _INITIAL_CAPACITY,
    ) -> None:
        if capacity is not None:
            capacity = int(capacity)
            if capacity < 1:
                raise ValueError(f"capacity must be a positive integer or None, got {capacity}")
        if policy not in EVICTION_POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r}; expected one of {EVICTION_POLICIES}")
        segments = int(segments)
        if segments < 1:
            raise ValueError(f"segments must be a positive integer, got {segments}")
        self.capacity = capacity
        self.policy = policy
        self.segments = segments
        allocation = max(int(initial_capacity), 1)
        self._values = np.empty(allocation, dtype=np.float64)
        self._prefix = np.empty(allocation + 1, dtype=np.float64)
        self._prefix_sq = np.empty(allocation + 1, dtype=np.float64)
        self._prefix[0] = 0.0
        self._prefix_sq[0] = 0.0
        #: Total points ever seen (global stream length).
        self._n = 0
        #: Global index of the oldest *live* point (the eviction horizon).
        self._start = 0
        #: Global index of ``_values[0]`` (``_base <= _start``; the gap is a
        #: dead prefix compacted away lazily, so eviction is O(1) amortized).
        self._base = 0
        #: Monotone counter bumped by every observable mutation (append/
        #: extend and horizon advances) — the cache key the streaming
        #: snapshot-curve memoization and the serving layer's poll cache use
        #: to recognise "no new data since the last snapshot".
        self._version = 0

    def __len__(self) -> int:
        """Total points ever seen (global stream length, retired included)."""
        return self._n

    @property
    def start(self) -> int:
        """Global index of the oldest retained point (0 until eviction)."""
        return self._start

    @property
    def version(self) -> int:
        """Monotone mutation counter (bumps on ingest and horizon advances).

        Two reads of the state under one version see exactly the same live
        range and values, so any pure function of the state (a member's
        snapshot density curve, the ensemble curve, a poll response) may be
        memoized keyed on this counter. Deferred physical compaction does
        *not* bump it — compaction preserves every observable value.
        """
        return self._version

    @property
    def nbytes(self) -> int:
        """Bytes currently allocated by the stream buffers.

        Counts the values array plus both prefix-sum arrays (allocation
        size, not just the live range) — the number the serving layer's
        session memory budget accounts against.
        """
        return self._values.nbytes + self._prefix.nbytes + self._prefix_sq.nbytes

    @property
    def live_length(self) -> int:
        """Number of points currently retained (``len(self) - start``)."""
        return self._n - self._start

    @property
    def horizon_start(self) -> int:
        """Exact retention horizon: the oldest global index within capacity."""
        if self.capacity is None:
            return 0
        return max(0, self._n - self.capacity)

    @property
    def generation_size(self) -> int | None:
        """Eviction step of the decay policy (``None`` when not applicable)."""
        if self.capacity is None or self.policy != "decay":
            return None
        return max(1, self.capacity // self.segments)

    @property
    def values(self) -> np.ndarray:
        """View of the live values (invalidated by the next append/evict)."""
        return self._values[self._start - self._base : self._n - self._base]

    @property
    def prefix_sum(self) -> np.ndarray:
        """Absolute running sums over the live range (length ``live_length + 1``).

        Entry ``k`` is ``sum(stream[:start + k])`` — the same float the
        unbounded state holds at global position ``start + k``, so window
        sums over live points are bitwise independent of eviction.
        """
        return self._prefix[self._start - self._base : self._n - self._base + 1]

    @property
    def prefix_sq(self) -> np.ndarray:
        """Absolute running sums of squares over the live range."""
        return self._prefix_sq[self._start - self._base : self._n - self._base + 1]

    def n_windows(self, window: int) -> int:
        """Completed sliding windows of length ``window`` so far (global)."""
        return max(0, self._n - int(window) + 1)

    # ------------------------------------------------------------------
    # Storage management (compaction is deferred so eviction stays O(1)).
    # ------------------------------------------------------------------

    def _compact(self) -> None:
        """Physically drop the dead prefix ``[_base, _start)``."""
        dead = self._start - self._base
        if dead == 0:
            return
        live = self._n - self._start
        self._values[:live] = self._values[dead : dead + live]
        self._prefix[: live + 1] = self._prefix[dead : dead + live + 1]
        self._prefix_sq[: live + 1] = self._prefix_sq[dead : dead + live + 1]
        self._base = self._start

    def _ensure_room(self, incoming: int) -> None:
        """Make room for ``incoming`` more points: compact first, grow last."""
        if (self._n + incoming) - self._base <= len(self._values):
            return
        self._compact()
        required = (self._n + incoming) - self._base
        allocation = len(self._values)
        if required <= allocation:
            return
        new_allocation = max(required, 2 * allocation)
        used = self._n - self._base
        values = np.empty(new_allocation, dtype=np.float64)
        prefix = np.empty(new_allocation + 1, dtype=np.float64)
        prefix_sq = np.empty(new_allocation + 1, dtype=np.float64)
        values[:used] = self._values[:used]
        prefix[: used + 1] = self._prefix[: used + 1]
        prefix_sq[: used + 1] = self._prefix_sq[: used + 1]
        self._values = values
        self._prefix = prefix
        self._prefix_sq = prefix_sq

    # ------------------------------------------------------------------
    # Ingest.
    # ------------------------------------------------------------------

    def append(self, value: float) -> None:
        """Consume one observation; amortized O(1)."""
        value = float(value)
        if not np.isfinite(value):
            raise ValueError("stream values must be finite")
        self._ensure_room(1)
        local = self._n - self._base
        self._values[local] = value
        self._prefix[local + 1] = self._prefix[local] + value
        self._prefix_sq[local + 1] = self._prefix_sq[local] + value**2
        self._n += 1
        self._version += 1

    def extend(self, values) -> int:
        """Consume a batch of observations in one vectorized pass.

        Returns the number of observations appended. The whole chunk is
        validated before anything is written, so a rejected chunk leaves the
        state untouched.
        """
        chunk = np.asarray(values, dtype=np.float64)
        if chunk.ndim != 1:
            raise ValueError(f"stream chunks must be 1-dimensional, got shape {chunk.shape}")
        if chunk.size == 0:
            return 0
        if not np.all(np.isfinite(chunk)):
            raise ValueError("stream values must be finite")
        m = len(chunk)
        self._ensure_room(m)
        local = self._n - self._base
        self._values[local : local + m] = chunk
        # Resume the running totals: cumsum([total, c0, c1, ...]) accumulates
        # left-associated exactly like np.cumsum over the full series would.
        self._prefix[local + 1 : local + m + 1] = np.cumsum(
            np.concatenate(([self._prefix[local]], chunk))
        )[1:]
        self._prefix_sq[local + 1 : local + m + 1] = np.cumsum(
            np.concatenate(([self._prefix_sq[local]], chunk**2))
        )[1:]
        self._n += m
        self._version += 1
        return m

    # ------------------------------------------------------------------
    # Eviction.
    # ------------------------------------------------------------------

    def evict_to(self, global_index: int) -> int:
        """Retire every point before ``global_index``; returns the new start.

        Monotone and O(1) (physical compaction is deferred to the next time
        the buffer needs room). Callers must not retire points still needed
        by an unconsumed window — the streaming detectors guarantee this by
        draining before trimming and requiring ``capacity >= window``.
        """
        global_index = int(global_index)
        if global_index > self._n:
            raise ValueError(
                f"cannot evict to {global_index}: only {self._n} points seen"
            )
        if global_index > self._start:
            self._start = global_index
            self._version += 1
        return self._start

    def trim(self) -> int:
        """Apply the configured eviction policy; returns the new start.

        A no-op for unbounded states. ``"sliding"`` retires to the exact
        horizon ``len(self) - capacity``; ``"decay"`` rounds the horizon
        down to a multiple of :attr:`generation_size`, so eviction advances
        in generation steps and retention stays within
        ``capacity + generation_size - 1`` points.
        """
        if self.capacity is None:
            return self._start
        target = self.horizon_start
        if self.policy == "decay":
            step = self.generation_size
            target = (target // step) * step
        return self.evict_to(max(target, self._start))

    # ------------------------------------------------------------------
    # Snapshot / restore.
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Self-describing state of the live range, for snapshotting.

        The exported prefix sums are the **absolute** running totals from
        the very first stream point (not rebased to the live range) — the
        invariant that makes a restored state's ``paa_rows`` bitwise
        identical to the original's. Arrays are copies; mutating the state
        afterwards does not disturb an exported snapshot.
        """
        lo = self._start - self._base
        live = self._n - self._start
        return {
            "n": int(self._n),
            "start": int(self._start),
            "version": int(self._version),
            "capacity": None if self.capacity is None else int(self.capacity),
            "policy": self.policy,
            "segments": int(self.segments),
            "values": self._values[lo : lo + live].copy(),
            "prefix": self._prefix[lo : lo + live + 1].copy(),
            "prefix_sq": self._prefix_sq[lo : lo + live + 1].copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SharedStreamState":
        """Rebuild a stream state from :meth:`export_state` output.

        The restored instance is observably identical to the original: same
        global length, horizon, version counter, live values, and absolute
        prefix sums — so every future ``extend``/``paa_rows`` resumes the
        exact floating-point accumulation the original would have produced.
        """
        values = np.ascontiguousarray(state["values"], dtype=np.float64)
        prefix = np.ascontiguousarray(state["prefix"], dtype=np.float64)
        prefix_sq = np.ascontiguousarray(state["prefix_sq"], dtype=np.float64)
        live = len(values)
        if len(prefix) != live + 1 or len(prefix_sq) != live + 1:
            raise ValueError(
                f"inconsistent stream snapshot: {live} live values with "
                f"prefix lengths {len(prefix)}/{len(prefix_sq)} (want {live + 1})"
            )
        n = int(state["n"])
        start = int(state["start"])
        if n - start != live or start < 0:
            raise ValueError(
                f"inconsistent stream snapshot: n={n}, start={start} but "
                f"{live} live values"
            )
        instance = cls(
            state["capacity"],
            policy=state["policy"],
            segments=state["segments"],
            initial_capacity=max(live, 1),
        )
        instance._values[:live] = values
        instance._prefix[: live + 1] = prefix
        instance._prefix_sq[: live + 1] = prefix_sq
        instance._n = n
        instance._start = start
        instance._base = start
        instance._version = int(state["version"])
        return instance

    # ------------------------------------------------------------------
    # Discretization.
    # ------------------------------------------------------------------

    def paa_rows(
        self,
        first_start: int,
        window: int,
        paa_size: int,
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
        *,
        stop: int | None = None,
    ) -> np.ndarray:
        """Z-normalized PAA rows of every completed window from ``first_start``.

        Returns a ``(stop - first_start, paa_size)`` matrix (``stop``
        defaults to ``n_windows(window)`` and is clipped to it) computed in
        one numpy pass over the shared prefix sums; row ``i`` is bitwise
        equal to the batch discretizer's row ``first_start + i``.
        ``first_start`` is a global window start and must lie at or after
        the eviction horizon (:attr:`start`); because the retained prefix
        sums are the absolute stream totals, rows for live windows are
        bitwise identical to the unbounded state's rows. The ``stop`` bound
        lets the streaming detectors drain huge chunks in fixed-size blocks
        so transient memory stays bounded too.
        """
        window = validate_window(window, self.live_length)
        paa_size = validate_paa_size(paa_size, window)
        completed = self.n_windows(window)
        stop = completed if stop is None else min(int(stop), completed)
        first_start = int(first_start)
        if first_start < self._start:
            raise ValueError(
                f"first_start={first_start} precedes the eviction horizon "
                f"{self._start}; those windows have been retired"
            )
        if not first_start <= stop:
            raise ValueError(
                f"first_start={first_start} outside the completed-window range "
                f"[{self._start}, {stop}]"
            )
        base = self._base
        used = self._n - base
        return sliding_paa_rows(
            self._prefix[: used + 1],
            self._prefix_sq[: used + 1],
            self._values[:used],
            first_start,
            stop,
            window,
            paa_size,
            znorm_threshold,
            origin=base,
        )

    def sweep(self, plan, first_start: int, *, stop: int | None = None):
        """Open a shared discretization sweep over completed windows.

        The multi-member sibling of :meth:`paa_rows`: same global-coordinate
        semantics and eviction-horizon validation, but instead of one PAA
        matrix it returns a :class:`~repro.sax.plan.DiscretizationSweep`
        over ``[first_start, stop)`` that lazily shares window statistics,
        PAA matrices and interval matrices across every member of ``plan``.
        The sweep reads the live buffers with their ring-buffer ``origin``
        offset, so — exactly as for :meth:`paa_rows` — rows for live
        windows are bitwise identical to the unbounded state's.
        """
        window = validate_window(plan.window, self.live_length)
        completed = self.n_windows(window)
        stop = completed if stop is None else min(int(stop), completed)
        first_start = int(first_start)
        if first_start < self._start:
            raise ValueError(
                f"first_start={first_start} precedes the eviction horizon "
                f"{self._start}; those windows have been retired"
            )
        if not first_start <= stop:
            raise ValueError(
                f"first_start={first_start} outside the completed-window range "
                f"[{self._start}, {stop}]"
            )
        base = self._base
        used = self._n - base
        return plan.sweep(
            self._prefix[: used + 1],
            self._prefix_sq[: used + 1],
            self._values[:used],
            first_start,
            stop,
            origin=base,
        )


# ----------------------------------------------------------------------
# Parallel member execution (EnsembleGrammarDetector's member fan-out).
# ----------------------------------------------------------------------


def _member_curve(
    discretizer: MultiResolutionDiscretizer,
    paa_size: int,
    alphabet_size: int,
    series_length: int,
) -> np.ndarray:
    """Density curve of one ensemble member, kernel-fused when possible.

    Under an id-based grammar kernel (``REPRO_KERNEL`` fast/compiled) with
    exact numerosity, the member runs entirely on integers: interned token
    ids feed the kernel builder, occurrence spans come out as arrays, and
    the curve is accumulated without materializing a :class:`Grammar`,
    occurrence objects, or per-rule interval lists. The python kernel (and
    the ``"none"`` strategy) takes the reference word/Grammar path. Both
    paths are bitwise identical — the kernel-equivalence suite pins the
    grammars, and integer scatter-adds commute.
    """
    kernel = _kernel.current_kernel()
    if kernel == "python" or discretizer.numerosity != "exact":
        # The discretizer fires the paa/discretize stage timers itself (the
        # shared sweep times matrix formation and breakpoint search).
        tokens = discretizer.tokens(paa_size, alphabet_size)
        with stage_timer("grammar"):
            grammar = induce_grammar(tokens.words)
        with stage_timer("density"):
            return rule_density_curve(grammar, tokens, series_length)
    token_ids = discretizer.token_ids(paa_size, alphabet_size)
    if not len(token_ids):
        raise ValueError("cannot induce a grammar from an empty token sequence")
    with stage_timer("grammar"):
        builder = _kernel.make_builder(kernel)
        builder.feed_many(token_ids.ids)
        firsts, lasts = builder.occurrence_spans()
    with stage_timer("density"):
        return density_curve_from_token_spans(
            token_ids.offsets, token_ids.window, firsts, lasts, series_length
        )


def _member_curves_task(payload) -> list[tuple[int, np.ndarray]]:
    """Worker: density curves of one ``w``-group of ensemble members.

    Builds a discretizer local to the worker; members in the group share its
    per-``w`` interval matrix exactly as the serial path does. The series
    arrives as an executor series reference (shared memory under the process
    backend).
    """
    series_ref, window, max_paa, max_alphabet, znorm_threshold, numerosity, items = payload
    series = resolve_series(series_ref)
    discretizer = MultiResolutionDiscretizer(
        series,
        window,
        max_paa,
        max_alphabet,
        znorm_threshold=znorm_threshold,
        numerosity=numerosity,
    )
    results: list[tuple[int, np.ndarray]] = []
    for index, (paa_size, alphabet_size) in items:
        results.append((index, _member_curve(discretizer, paa_size, alphabet_size, len(series))))
    return results


def compute_member_curves(
    series: np.ndarray,
    window: int,
    parameters: Sequence[tuple[int, int]],
    *,
    max_paa_size: int,
    max_alphabet_size: int,
    znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    numerosity: str = "exact",
    n_jobs: int | None = 1,
    executor: MemberExecutor | str | None = None,
) -> list[np.ndarray]:
    """Rule density curves of every ensemble member, in sample order.

    Serially (``n_jobs=1``, no executor) all members share one
    :class:`MultiResolutionDiscretizer`. With an executor — or ``n_jobs >
    1``, which creates a temporary process pool for the call — the members
    are grouped by PAA size ``w`` and the groups run across the executor's
    workers; under the process backend the series crosses into workers
    through one shared-memory segment instead of a pickled copy per group.
    Member curves are deterministic functions of ``(series, window, w, a)``,
    so every path produces bitwise-identical results.
    """
    n_jobs = _resolve_n_jobs(n_jobs)
    curves: list[np.ndarray] = [np.empty(0)] * len(parameters)
    pool, owned = _resolve_executor(executor, n_jobs, len(parameters))
    if pool is None:
        discretizer = MultiResolutionDiscretizer(
            series,
            window,
            max_paa_size,
            max_alphabet_size,
            znorm_threshold=znorm_threshold,
            numerosity=numerosity,
        )
        # Grouped by w so the interval matrix is built once per w, but
        # reported in *sample order* — a uniform random prefix of the sample
        # is itself a uniform sample, which the size-sweep benches rely on.
        by_w = sorted(range(len(parameters)), key=lambda i: parameters[i])
        for index in by_w:
            paa_size, alphabet_size = parameters[index]
            curves[index] = _member_curve(discretizer, paa_size, alphabet_size, len(series))
        return curves
    groups: dict[int, list[tuple[int, tuple[int, int]]]] = {}
    for index, (paa_size, alphabet_size) in enumerate(parameters):
        groups.setdefault(paa_size, []).append((index, (paa_size, alphabet_size)))
    with ExitStack() as stack:
        if owned:
            stack.callback(pool.close)
        handle = stack.enter_context(pool.share_series(series))
        payloads = [
            (
                handle.ref,
                int(window),
                int(max_paa_size),
                int(max_alphabet_size),
                float(znorm_threshold),
                numerosity,
                items,
            )
            for _, items in sorted(groups.items())
        ]
        for group_result in pool.map(_member_curves_task, payloads):
            for index, curve in group_result:
                curves[index] = curve
    return curves


# ----------------------------------------------------------------------
# Batch front ends (many independent series — the serving shape).
# ----------------------------------------------------------------------


def _detect_one_series(payload) -> list:
    """Worker: run one identically-configured detector clone on one series."""
    kwargs, seed, series_ref, k, member_jobs, index, label = payload
    from repro.core.ensemble import EnsembleGrammarDetector

    try:
        series = resolve_series(series_ref)
        detector = EnsembleGrammarDetector(**kwargs, seed=seed, n_jobs=member_jobs)
        return detector.detect(series, k)
    except Exception as error:
        raise _wrap_batch_error(index, label, error) from error


def _detect_series_chunk(payload) -> list[tuple[int, list]]:
    """Worker: run several per-series detections in one task.

    Chunking amortizes the per-task executor round trip (submission,
    payload pickling, result sync) across ``chunksize`` series — the lever
    that makes micro-batched serving of *small* requests pay, where one
    IPC round trip per series would rival the detection itself. Each item
    is computed exactly as :func:`_detect_one_series` would, so results are
    independent of the chunking.
    """
    items, contain_errors = payload
    results: list[tuple[int, list]] = []
    for item in items:
        _, _, _, _, _, index, _ = item
        if contain_errors:
            try:
                results.append((index, _detect_one_series(item)))
            except BatchItemError as error:
                results.append((index, error))
        else:
            results.append((index, _detect_one_series(item)))
    return results


def iter_detect_batch(
    detector,
    series_iterable: Iterable[np.ndarray],
    k: int = 3,
    *,
    n_jobs: int | None = None,
    executor: MemberExecutor | str | None = None,
    labels: Sequence[str] | None = None,
    seeds: Sequence | None = None,
    return_exceptions: bool = False,
    chunksize: int = 1,
) -> Iterator[tuple[int, list]]:
    """Yield ``(index, anomalies)`` per series *as results complete*.

    The incremental sibling of :func:`detect_batch`: instead of gathering
    the whole batch, each series' ranked candidates are yielded the moment
    its worker finishes (completion order under pooled executors, input
    order under the serial path). The per-index results are identical to
    ``detect_batch``'s — same clone configuration, same spawned seed — so
    consumers may stream them into storage and re-order later.

    ``seeds`` overrides the per-series seed derivation entirely: instead of
    spawning children from ``detector.seed``, series ``i`` is detected by a
    clone seeded with exactly ``seeds[i]`` (one entry per series; ints and
    ``numpy.random.Generator`` instances both work). This is how the
    serving subsystem keeps a micro-batched request bitwise identical to a
    direct ``detect()`` call with that request's seed, no matter which
    requests happened to be coalesced around it.

    A failing series raises :class:`BatchItemError` naming its index (and
    label, when ``labels`` is given); abandoning the iterator cancels
    pending work and releases any shared-memory segments. With
    ``return_exceptions=True`` the error is *yielded* as that series'
    result instead and every other series still completes — the contract
    behind partial batch results in the CLI and the serving layer.

    ``chunksize`` packs that many per-series detections into each worker
    task (``multiprocessing.Pool.map``-style): per-task dispatch overhead
    is amortized across the chunk, which is what makes pooled batches of
    *small* series pay. Results are independent of the chunking; only
    delivery granularity changes (a chunk's results arrive together).
    Arguments are validated here, eagerly — the returned iterator only
    defers execution.
    """
    series_list = [np.ascontiguousarray(series, dtype=np.float64) for series in series_iterable]
    labels = _check_labels(labels, len(series_list))
    validate_executor_spec(executor)
    n_jobs = _resolve_n_jobs(detector.n_jobs if n_jobs is None else n_jobs)
    chunksize = int(chunksize)
    if chunksize < 1:
        raise ValueError(f"chunksize must be a positive integer, got {chunksize}")
    kwargs = detector.clone_kwargs()
    if seeds is None:
        # spawn_rngs derives deterministic, independent (and picklable)
        # per-series generators from the detector's seed; a Generator seed
        # draws children from its own stream (advancing it).
        seeds = spawn_rngs(detector.seed, len(series_list))
    else:
        seeds = list(seeds)
        if len(seeds) != len(series_list):
            raise ValueError(f"got {len(seeds)} seeds for {len(series_list)} series")
    return _iter_detect_batch(
        kwargs,
        seeds,
        series_list,
        int(k),
        n_jobs,
        executor,
        labels,
        return_exceptions,
        chunksize,
    )


def _iter_detect_batch(
    kwargs: dict,
    seeds: list,
    series_list: list[np.ndarray],
    k: int,
    n_jobs: int,
    executor: MemberExecutor | str | None,
    labels: list[str] | None,
    return_exceptions: bool = False,
    chunksize: int = 1,
) -> Iterator[tuple[int, list]]:
    """The deferred half of :func:`iter_detect_batch` (validated inputs)."""
    if not series_list:
        return
    pool, owned = _resolve_executor(executor, n_jobs, len(series_list))
    # Clones running where the batch layer is serial keep the whole job
    # budget for member-level parallelism; pooled clones run their members
    # serially to avoid nested pools.
    member_jobs = n_jobs if pool is None or pool.kind == "serial" else 1
    if pool is None:
        for index, (seed, series) in enumerate(zip(seeds, series_list)):
            label = None if labels is None else labels[index]
            payload = (kwargs, seed, series, k, member_jobs, index, label)
            if return_exceptions:
                try:
                    result = _detect_one_series(payload)
                except BatchItemError as error:
                    result = error
                yield index, result
            else:
                yield index, _detect_one_series(payload)
        return
    with ExitStack() as stack:
        if owned:
            stack.callback(pool.close)
        if pool.kind != "serial" and len(series_list) == 1:
            # A one-series batch has no batch-level parallelism to exploit:
            # run the clone here and spend the whole pool on its *members*
            # instead of shipping one serial task to one worker.
            from repro.core.ensemble import EnsembleGrammarDetector

            label = None if labels is None else labels[0]
            try:
                clone = EnsembleGrammarDetector(
                    **kwargs, seed=seeds[0], n_jobs=n_jobs, executor=pool
                )
                yield 0, clone.detect(series_list[0], k)
            except Exception as error:
                if return_exceptions:
                    yield 0, _wrap_batch_error(0, label, error)
                    return
                raise _wrap_batch_error(0, label, error) from error
            return
        handles = share_series_batch(pool, stack, series_list, labels)
        payloads = [
            (
                kwargs,
                seed,
                handle.ref,
                k,
                member_jobs,
                index,
                None if labels is None else labels[index],
            )
            for index, (seed, handle) in enumerate(zip(seeds, handles))
        ]
        if chunksize > 1:
            chunks = [
                (payloads[offset : offset + chunksize], return_exceptions)
                for offset in range(0, len(payloads), chunksize)
            ]
            for chunk_index, chunk_result in pool.imap_unordered(
                _detect_series_chunk, chunks, return_exceptions=return_exceptions
            ):
                if isinstance(chunk_result, BaseException):
                    # The whole chunk task died (e.g. a broken pool): under
                    # error containment every item in it fails in place.
                    for item in chunks[chunk_index][0]:
                        index, label = item[5], item[6]
                        yield index, _wrap_batch_error(index, label, chunk_result)
                    continue
                yield from chunk_result
            return
        for index, result in pool.imap_unordered(
            _detect_one_series, payloads, return_exceptions=return_exceptions
        ):
            if isinstance(result, BaseException):
                result = _wrap_batch_error(
                    index, None if labels is None else labels[index], result
                )
            yield index, result


def detect_batch(
    detector,
    series_iterable: Iterable[np.ndarray],
    k: int = 3,
    *,
    n_jobs: int | None = None,
    executor: MemberExecutor | str | None = None,
    labels: Sequence[str] | None = None,
    seeds: Sequence | None = None,
    return_exceptions: bool = False,
    chunksize: int = 1,
) -> list[list]:
    """Top-``k`` anomalies of many independent series, optionally in parallel.

    Parameters
    ----------
    detector:
        An :class:`~repro.core.ensemble.EnsembleGrammarDetector` whose
        configuration (window, sampling ranges, selectivity, ...) is applied
        to every series. Each series gets a fresh clone seeded from the
        detector's seed via ``SeedSequence.spawn``, so the i-th series
        always sees the same parameter sample regardless of the backend.
    series_iterable:
        The independent series to scan (any iterable of 1-D arrays).
    k:
        Candidates to report per series.
    n_jobs:
        Worker count; ``None`` defers to ``detector.n_jobs``. Without an
        explicit ``executor``, ``n_jobs=1`` runs the exact same per-series
        function inline and larger values use a temporary process pool, so
        parallel and serial results are identical.
    executor:
        A live :class:`~repro.core.executors.MemberExecutor` (reused, never
        closed here) or a backend name from
        :data:`~repro.core.executors.EXECUTOR_KINDS` (created and closed for
        this call). Results are identical across backends.
    labels:
        Optional per-series labels (file paths, ids); a failing series
        raises :class:`BatchItemError` carrying its index and label.
    seeds:
        Optional explicit per-series seeds (one per series) overriding the
        spawn-from-``detector.seed`` derivation; see
        :func:`iter_detect_batch`.
    return_exceptions:
        When true, a failing series fills its result slot with the
        :class:`BatchItemError` instead of aborting the batch; every other
        series still completes.
    chunksize:
        Per-series detections packed into each worker task (amortizes the
        per-task dispatch overhead for batches of small series); see
        :func:`iter_detect_batch`. Results are independent of the value.

    Returns
    -------
    list[list[Anomaly]]
        One ranked candidate list per input series, in input order.
    """
    pairs = list(
        iter_detect_batch(
            detector,
            series_iterable,
            k,
            n_jobs=n_jobs,
            executor=executor,
            labels=labels,
            seeds=seeds,
            return_exceptions=return_exceptions,
            chunksize=chunksize,
        )
    )
    results: list[list] = [None] * len(pairs)  # type: ignore[list-item]
    for index, anomalies in pairs:
        results[index] = anomalies
    return results


