"""Point-wise combination of normalized rule density curves (Section 6.1.3).

The paper combines the surviving ensemble members with the point-wise
*median*, which is robust to a minority of misleading members. ``mean`` and
``min``/``max`` are provided for the ablation benches.
"""

from __future__ import annotations

import numpy as np

#: Combination strategies accepted by :func:`combine_curves`.
COMBINERS = ("median", "mean", "min", "max")


def combine_curves(curves: np.ndarray | list[np.ndarray], method: str = "median") -> np.ndarray:
    """Combine a stack of equal-length curves into one.

    Parameters
    ----------
    curves:
        2-D array (or list of 1-D arrays) of shape ``(n_members, N)``.
    method:
        One of :data:`COMBINERS`; the paper uses ``"median"``.

    Returns
    -------
    numpy.ndarray
        The combined length-``N`` curve.
    """
    if method not in COMBINERS:
        raise ValueError(f"unknown combiner {method!r}; expected one of {COMBINERS}")
    if isinstance(curves, np.ndarray):
        stack = np.atleast_2d(np.asarray(curves, dtype=np.float64))
    else:
        members = [np.asarray(curve, dtype=np.float64) for curve in curves]
        if not members:
            raise ValueError("cannot combine an empty set of curves")
        expected = members[0].shape
        for index, member in enumerate(members):
            if member.ndim != 1:
                raise ValueError(
                    f"member curve {index} must be 1-D, got shape {member.shape}"
                )
            if member.shape != expected:
                raise ValueError(
                    f"member curve {index} has length {member.shape[0]} but "
                    f"member 0 has length {expected[0]}; all member curves "
                    "must cover the same series"
                )
        stack = np.atleast_2d(np.stack(members))
    if stack.ndim != 2:
        raise ValueError(f"curves must stack into 2-D, got shape {stack.shape}")
    if stack.shape[0] == 0 or stack.shape[1] == 0:
        raise ValueError("cannot combine an empty set of curves")
    if method == "median":
        return np.median(stack, axis=0)
    if method == "mean":
        return stack.mean(axis=0)
    if method == "min":
        return stack.min(axis=0)
    if method == "max":
        return stack.max(axis=0)
    # Unreachable while the dispatch covers COMBINERS; backstop so a new
    # entry in COMBINERS without a branch fails loudly instead of silently
    # computing the wrong combination.
    raise ValueError(f"unknown combiner {method!r}; expected one of {COMBINERS}")
