"""Multi-resolution discretizer (Section 6.2): the ensemble's shared fast path.

The ensemble needs token sequences for many ``(w, a)`` combinations of the
*same* series and window. Recomputing SAX from scratch per member costs
``O(N (n + w + log a))`` each; this class shares everything shareable:

- the prefix sums (``ESum_x``, ``ESum_xx``) are built once per series
  (FastPAA, Algorithm 2);
- per distinct ``w``, the z-normalized PAA matrix is computed once and its
  coefficients located in the merged breakpoint table of
  :class:`repro.sax.breakpoints.MultiResolutionAlphabet` with one binary
  search — yielding the *interval index matrix*;
- per ``(w, a)``, words are a constant-time table lookup into the symbol
  matrix (Figure 6), followed by numerosity reduction.

So the marginal cost of an extra alphabet size for an already-seen ``w`` is
one fancy-indexing pass — the speedup benchmarked in
``benchmarks/bench_discretization_speedup.py``.
"""

from __future__ import annotations

import numpy as np

from repro.obs.stages import stage_timer
from repro.sax.alphabet import WordInterner, index_matrix_to_words, pack_symbol_rows
from repro.sax.numerosity import (
    TokenIdSequence,
    TokenSequence,
    kept_window_mask,
    numerosity_reduction,
)
from repro.sax.paa import CumulativeStats
from repro.sax.plan import DiscretizationPlan
from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD
from repro.utils.validation import (
    ensure_time_series,
    validate_alphabet_size,
    validate_paa_size,
    validate_window,
)


class MultiResolutionDiscretizer:
    """Produce numerosity-reduced token sequences for many ``(w, a)`` cheaply.

    Parameters
    ----------
    series:
        The time series to discretize.
    window:
        Sliding-window length ``n`` (fixed per discretizer).
    max_paa_size, max_alphabet_size:
        Upper bounds ``wmax``/``amax`` of the resolutions that will be
        requested; the merged breakpoint table covers ``[2, amax]``.
    znorm_threshold:
        Constant-window guard forwarded to the PAA stage.
    numerosity:
        Reduction strategy (``"exact"`` or ``"none"``).
    """

    def __init__(
        self,
        series: np.ndarray,
        window: int,
        max_paa_size: int,
        max_alphabet_size: int,
        *,
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
        numerosity: str = "exact",
    ) -> None:
        self.series = ensure_time_series(series, name="series", min_length=2)
        self.window = validate_window(window, len(self.series))
        self.max_paa_size = validate_paa_size(max_paa_size, self.window)
        self.max_alphabet_size = validate_alphabet_size(max_alphabet_size)
        self.znorm_threshold = float(znorm_threshold)
        self.numerosity = numerosity
        self.stats = CumulativeStats(self.series)
        #: Open discretization plan (any paa_size up to ``window``); the
        #: sweep below carries the per-``w`` PAA/interval matrix caches.
        self._plan = DiscretizationPlan(
            self.window,
            None,
            znorm_threshold=self.znorm_threshold,
            max_alphabet_size=self.max_alphabet_size,
        )
        self.alphabet_table = self._plan.alphabet_table
        self._sweep = self._plan.sweep_series(self.stats)
        #: Cache: (paa_size, alphabet_size) -> TokenSequence.
        self._token_cache: dict[tuple[int, int], TokenSequence] = {}
        #: Shared word interner + cache: (paa_size, alphabet_size) -> ids.
        #: One id space across all resolutions (words of different lengths
        #: never collide, so sharing is safe and keeps one vocabulary).
        self._interner = WordInterner()
        self._id_cache: dict[tuple[int, int], TokenIdSequence] = {}

    @property
    def n_windows(self) -> int:
        """Number of sliding-window positions."""
        return len(self.series) - self.window + 1

    def interval_matrix(self, paa_size: int) -> np.ndarray:
        """Merged-table interval indices of every window's PAA coefficients.

        Computed once per distinct ``paa_size`` and cached (in the shared
        :class:`~repro.sax.plan.DiscretizationSweep`); this is the expensive
        half of discretization (PAA + binary search), dispatched through the
        ``REPRO_KERNEL`` seam.
        """
        paa_size = validate_paa_size(paa_size, self.window)
        if paa_size > self.max_paa_size:
            raise ValueError(
                f"paa_size={paa_size} exceeds the declared max_paa_size={self.max_paa_size}"
            )
        return self._sweep.interval_rows(paa_size)

    def words(self, paa_size: int, alphabet_size: int) -> list[str]:
        """SAX words of every window under ``(paa_size, alphabet_size)``."""
        intervals = self.interval_matrix(paa_size)
        symbols = self.alphabet_table.symbols_for(intervals, alphabet_size)
        return index_matrix_to_words(symbols)

    def tokens(self, paa_size: int, alphabet_size: int) -> TokenSequence:
        """Numerosity-reduced token sequence for ``(paa_size, alphabet_size)``.

        Cached per combination — ensemble members with duplicate parameters
        (not sampled by Algorithm 1, but possible via direct calls) are free.

        The exact-reduction fast path finds run boundaries on the symbol
        *index matrix* first and only materializes word strings for the kept
        windows; two windows share a word exactly when their symbol rows are
        equal, so this is equivalent to reducing the full word list (and is
        what makes the shared discretizer markedly faster than per-(w, a)
        SAX — most windows are dropped before any string is built).
        """
        key = (int(paa_size), int(alphabet_size))
        cached = self._token_cache.get(key)
        if cached is not None:
            return cached
        intervals = self.interval_matrix(paa_size)
        if self.numerosity == "exact":
            with stage_timer("discretize"):
                symbols = self.alphabet_table.symbols_for(intervals, alphabet_size)
                kept_offsets = np.flatnonzero(kept_window_mask(symbols)).astype(np.int64)
                words = index_matrix_to_words(symbols[kept_offsets])
                cached = TokenSequence(
                    tuple(words), kept_offsets, len(symbols), self.window
                )
        else:
            with stage_timer("discretize"):
                symbols = self.alphabet_table.symbols_for(intervals, alphabet_size)
                words = index_matrix_to_words(symbols)
                cached = numerosity_reduction(words, self.window, self.numerosity)
        self._token_cache[key] = cached
        return cached

    def token_ids(self, paa_size: int, alphabet_size: int) -> TokenIdSequence:
        """Interned token ids for ``(paa_size, alphabet_size)``.

        The string-free fast path for id-based grammar kernels: numerosity
        reduction happens on the symbol matrix, and the kept rows are
        interned against the discretizer-wide vocabulary — word strings are
        materialized once per *distinct* kept row, not per window. Only the
        exact strategy is served here (``"none"`` keeps every window, so it
        gains nothing from deferral); callers fall back to :meth:`tokens`
        for other strategies.
        """
        if self.numerosity != "exact":
            raise ValueError(
                f"token_ids requires numerosity='exact', got {self.numerosity!r}"
            )
        key = (int(paa_size), int(alphabet_size))
        cached = self._id_cache.get(key)
        if cached is not None:
            return cached
        intervals = self.interval_matrix(paa_size)
        with stage_timer("discretize"):
            symbols = self.alphabet_table.symbols_for(intervals, alphabet_size)
            codes = pack_symbol_rows(symbols)
            if codes is None:
                kept_offsets = np.flatnonzero(kept_window_mask(symbols)).astype(np.int64)
                ids = self._interner.intern_matrix(symbols[kept_offsets])
            else:
                # Packing is injective, so run boundaries on the scalar codes
                # are exactly the row-inequality mask of kept_window_mask.
                keep = np.ones(len(codes), dtype=bool)
                keep[1:] = codes[1:] != codes[:-1]
                kept_offsets = np.flatnonzero(keep).astype(np.int64)
                ids = self._interner.intern_packed(codes[kept_offsets], symbols.shape[1])
        cached = TokenIdSequence(
            ids, kept_offsets, len(symbols), self.window, self._interner.vocabulary
        )
        self._id_cache[key] = cached
        return cached
