"""Ensemble grammar induction (paper Section 6, Algorithm 1).

Instead of committing to one ``(w, a)``, the ensemble:

1. samples ``N`` distinct ``(w, a)`` combinations uniformly from
   ``[2, wmax] x [2, amax]`` ("any w, a combination is used only once");
2. computes one rule density curve per member — via the shared
   :class:`repro.core.multiresolution.MultiResolutionDiscretizer`, which is
   backed by a :class:`repro.sax.plan.DiscretizationPlan`: prefix statistics
   are built once per series and the expensive PAA/binary-search work runs
   once per distinct ``w`` through the ``REPRO_KERNEL`` seam
   (:mod:`repro.sax._kernel`);
3. discards low-quality members: curves are ranked by standard deviation and
   only the top ``tau`` fraction kept (Section 6.1.1);
4. normalizes each survivor by its maximum — *not* min–max, so zero density
   stays zero (Section 6.1.2);
5. combines the survivors point-wise with the median (Section 6.1.3).

Anomalies are then ranked exactly as in the single-run detector: top-k
non-overlapping minima of the windowed mean of the ensemble curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.anomaly import Anomaly, extract_candidates
from repro.core.combiners import COMBINERS, combine_curves
from repro.core.engine import compute_member_curves, detect_batch, iter_detect_batch
from repro.core.executors import ExecutorOwnerMixin, MemberExecutor
from repro.core.selection import curve_std, normalize_curve, select_by_std
from repro.obs.stages import stage_timer
from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import (
    ensure_time_series,
    validate_alphabet_size,
    validate_paa_size,
    validate_window,
)


@dataclass(frozen=True)
class EnsembleReport:
    """Diagnostics of one ensemble run (useful for inspection and tests).

    Attributes
    ----------
    curve:
        The final ensemble rule density curve ``d_e``.
    parameters:
        The sampled ``(w, a)`` combination of every member, in sample order.
    stds:
        Standard deviation of every member's raw curve (same order).
    kept:
        Indices (into ``parameters``) of the members that survived the
        selectivity filter, best first.
    """

    curve: np.ndarray
    parameters: tuple[tuple[int, int], ...]
    stds: tuple[float, ...]
    kept: tuple[int, ...]
    member_curves: tuple[np.ndarray, ...] = field(repr=False, default=())

    @property
    def ensemble_size(self) -> int:
        """Number of sampled members in this run."""
        return len(self.parameters)


class EnsembleGrammarDetector(ExecutorOwnerMixin):
    """Algorithm 1: the ensemble rule density curve anomaly detector.

    Parameters
    ----------
    window:
        Sliding-window length ``n``.
    max_paa_size, max_alphabet_size:
        Sampling ranges ``wmax``/``amax``; members draw from
        ``[2, wmax] x [2, amax]``. Paper default 10 for both.
    ensemble_size:
        Number of members ``N`` (paper default 50). Capped at the number of
        distinct combinations available.
    selectivity:
        Fraction ``tau`` of members kept after std ranking (paper default
        0.4; Section 7.2.5 recommends ~0.2).
    combiner:
        Point-wise combination method; the paper uses ``"median"``.
    select_members / normalize_members:
        Ablation switches for the benches; both True reproduces Algorithm 1.
    seed:
        Seed or generator controlling the parameter sampling.
    n_jobs:
        Process count for member execution: members are grouped by PAA size
        ``w`` and the groups run across a process pool (``None`` uses every
        core). Results are identical to the serial path; see
        :mod:`repro.core.engine`.
    executor:
        Execution backend for member and batch fan-out: a live
        :class:`~repro.core.executors.MemberExecutor` (caller owns it; the
        detector only borrows), a backend name from
        :data:`~repro.core.executors.EXECUTOR_KINDS` (the detector creates
        it lazily on first use, reuses it across ``detect`` calls — so a
        process pool spawns once, not per call — and releases it in
        :meth:`close`), or ``None`` to fall back to the ``n_jobs``
        semantics. Results are bitwise identical across backends.

    Example
    -------
    >>> import numpy as np
    >>> t = np.linspace(0, 80 * np.pi, 4000)
    >>> series = np.sin(t) + 0.05 * np.random.default_rng(0).standard_normal(4000)
    >>> series[2000:2100] *= 0.1  # damp one cycle
    >>> detector = EnsembleGrammarDetector(window=100, seed=1)
    >>> candidates = detector.detect(series, k=3)
    >>> any(1900 <= c.position <= 2100 for c in candidates)
    True
    """

    def __init__(
        self,
        window: int,
        *,
        max_paa_size: int = 10,
        max_alphabet_size: int = 10,
        ensemble_size: int = 50,
        selectivity: float = 0.4,
        combiner: str = "median",
        numerosity: str = "exact",
        select_members: bool = True,
        normalize_members: bool = True,
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
        seed: RandomState = None,
        n_jobs: int | None = 1,
        executor: MemberExecutor | str | None = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        self.window = int(window)
        self.max_paa_size = validate_paa_size(max_paa_size, self.window)
        self.max_alphabet_size = validate_alphabet_size(max_alphabet_size)
        if self.max_paa_size < 2:
            raise ValueError("max_paa_size must be at least 2 to sample from [2, wmax]")
        if ensemble_size < 1:
            raise ValueError(f"ensemble_size must be positive, got {ensemble_size}")
        if not 0.0 < selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        if combiner not in COMBINERS:
            raise ValueError(f"unknown combiner {combiner!r}; expected one of {COMBINERS}")
        if n_jobs is not None and int(n_jobs) < 1:
            raise ValueError(f"n_jobs must be a positive integer or None, got {n_jobs}")
        self.ensemble_size = int(ensemble_size)
        self.selectivity = float(selectivity)
        self.combiner = combiner
        self.numerosity = numerosity
        self.select_members = bool(select_members)
        self.normalize_members = bool(normalize_members)
        self.znorm_threshold = float(znorm_threshold)
        self.n_jobs = n_jobs if n_jobs is None else int(n_jobs)
        self._init_executor(executor)
        #: The seed as given, kept for spawning per-series clones in
        #: :meth:`detect_batch`.
        self.seed = seed
        self._rng = ensure_rng(seed)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(window={self.window}, "
            f"wmax={self.max_paa_size}, amax={self.max_alphabet_size}, "
            f"N={self.ensemble_size}, tau={self.selectivity})"
        )

    def _executor_pool_size(self) -> int | None:
        # Asking for a backend by name is asking for parallelism: size the
        # pool by n_jobs, but let the do-nothing default (1) mean "every
        # core" rather than a one-worker pool.
        return None if self.n_jobs in (None, 1) else self.n_jobs

    # ------------------------------------------------------------------
    # Algorithm 1.
    # ------------------------------------------------------------------

    def sample_parameters(self, rng: np.random.Generator | None = None) -> list[tuple[int, int]]:
        """Draw ``N`` distinct ``(w, a)`` combinations uniformly.

        Combinations are drawn without replacement from
        ``[2, wmax] x [2, amax]``; when ``N`` exceeds the pool size, the
        whole pool is used (shuffled).
        """
        rng = self._rng if rng is None else rng
        w_values = np.arange(2, self.max_paa_size + 1)
        a_values = np.arange(2, self.max_alphabet_size + 1)
        pool = [(int(w), int(a)) for w in w_values for a in a_values]
        count = min(self.ensemble_size, len(pool))
        chosen = rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in chosen]

    def ensemble_report(
        self,
        series: np.ndarray,
        *,
        keep_member_curves: bool = False,
    ) -> EnsembleReport:
        """Run Algorithm 1 and return the curve plus member diagnostics."""
        series = ensure_time_series(series, name="series", min_length=2)
        validate_window(self.window, len(series))
        parameters = self.sample_parameters()
        curves = compute_member_curves(
            series,
            self.window,
            parameters,
            max_paa_size=self.max_paa_size,
            max_alphabet_size=self.max_alphabet_size,
            znorm_threshold=self.znorm_threshold,
            numerosity=self.numerosity,
            n_jobs=self.n_jobs,
            executor=self.executor,
        )
        with stage_timer("combine"):
            stds = tuple(curve_std(curve) for curve in curves)
            if self.select_members:
                kept = tuple(select_by_std(curves, self.selectivity))
            else:
                kept = tuple(range(len(curves)))
            if self.normalize_members:
                survivors = [normalize_curve(curves[i]) for i in kept]
            else:
                survivors = [curves[i] for i in kept]
            ensemble_curve = combine_curves(survivors, self.combiner)
        return EnsembleReport(
            curve=ensemble_curve,
            parameters=tuple(parameters),
            stds=stds,
            kept=kept,
            member_curves=tuple(curves) if keep_member_curves else (),
        )

    def density_curve(self, series: np.ndarray) -> np.ndarray:
        """The ensemble rule density curve ``d_e`` of ``series``."""
        return self.ensemble_report(series).curve

    def detect(self, series: np.ndarray, k: int = 3) -> list[Anomaly]:
        """Top-``k`` non-overlapping anomaly candidates from the ensemble curve."""
        curve = self.density_curve(series)
        return extract_candidates(curve, self.window, k, minimize=True)

    def clone_kwargs(self) -> dict:
        """Constructor kwargs reproducing this configuration (minus seed/n_jobs).

        Used by :func:`repro.core.engine.detect_batch` to build identically
        configured per-series clones in worker processes.
        """
        return {
            "window": self.window,
            "max_paa_size": self.max_paa_size,
            "max_alphabet_size": self.max_alphabet_size,
            "ensemble_size": self.ensemble_size,
            "selectivity": self.selectivity,
            "combiner": self.combiner,
            "numerosity": self.numerosity,
            "select_members": self.select_members,
            "normalize_members": self.normalize_members,
            "znorm_threshold": self.znorm_threshold,
        }

    def detect_batch(
        self,
        series_iterable,
        k: int = 3,
        *,
        n_jobs: int | None = None,
        executor=None,
        labels=None,
        seeds=None,
        return_exceptions: bool = False,
        chunksize: int = 1,
    ) -> list[list[Anomaly]]:
        """Top-``k`` anomalies of many independent series (the serving shape).

        Each series is handled by a fresh clone of this detector whose seed
        derives deterministically from ``self.seed`` (or is taken verbatim
        from ``seeds``), so results are identical whether the batch runs
        serially, across a process pool, or on any executor backend
        (``n_jobs=None`` defers to ``self.n_jobs``; ``executor=None`` defers
        to the detector's own executor). With ``return_exceptions=True`` a
        failing series yields its :class:`~repro.core.executors.BatchItemError`
        in place instead of aborting the batch. See
        :func:`repro.core.engine.detect_batch`.
        """
        executor = self.executor if executor is None else executor
        return detect_batch(
            self,
            series_iterable,
            k,
            n_jobs=n_jobs,
            executor=executor,
            labels=labels,
            seeds=seeds,
            return_exceptions=return_exceptions,
            chunksize=chunksize,
        )

    def iter_detect_batch(
        self,
        series_iterable,
        k: int = 3,
        *,
        n_jobs: int | None = None,
        executor=None,
        labels=None,
        seeds=None,
        return_exceptions: bool = False,
        chunksize: int = 1,
    ):
        """Yield ``(index, anomalies)`` per series as results complete.

        The incremental form of :meth:`detect_batch`: per-index results are
        identical, but each series is delivered the moment its worker
        finishes instead of after the whole batch. See
        :func:`repro.core.engine.iter_detect_batch`.
        """
        executor = self.executor if executor is None else executor
        return iter_detect_batch(
            self,
            series_iterable,
            k,
            n_jobs=n_jobs,
            executor=executor,
            labels=labels,
            seeds=seeds,
            return_exceptions=return_exceptions,
            chunksize=chunksize,
        )


def combine_and_detect(
    member_curves: list[np.ndarray] | tuple[np.ndarray, ...],
    window: int,
    k: int = 3,
    *,
    selectivity: float = 0.4,
    combiner: str = "median",
    select_members: bool = True,
    normalize_members: bool = True,
) -> list[Anomaly]:
    """Steps 2–4 of Algorithm 1 on pre-computed member curves.

    Given raw rule density curves (e.g. from
    ``EnsembleGrammarDetector.ensemble_report(..., keep_member_curves=True)``),
    apply std filtering, normalization, combination, and candidate
    extraction. The parameter-sweep benches use this to vary ``tau``, ``N``
    (by passing a prefix of the sampled members), and the combiner without
    re-running grammar induction.
    """
    if not member_curves:
        raise ValueError("member_curves must be non-empty")
    curves = list(member_curves)
    if select_members:
        kept = select_by_std(curves, selectivity)
    else:
        kept = list(range(len(curves)))
    if normalize_members:
        survivors = [normalize_curve(curves[i]) for i in kept]
    else:
        survivors = [curves[i] for i in kept]
    ensemble_curve = combine_curves(survivors, combiner)
    return extract_candidates(ensemble_curve, window, k, minimize=True)
