"""Request correlation ids, carried via :mod:`contextvars`.

The id is minted at the HTTP edge (honoring an incoming ``X-Request-Id``),
bound for the duration of the request, and read wherever a log line or a
task envelope needs to name the request that caused it. ``contextvars``
flow through ``asyncio`` task creation and ``asyncio.to_thread``, so the
session append/poll path carries the id for free; the micro-batcher's
drain task does *not* share the submitter's context, so
:class:`~repro.service.core._DetectItem` carries the id explicitly and
``_run_batch`` re-binds it (see :mod:`repro.service.core`).
"""

from __future__ import annotations

import contextvars
import re
import uuid
from contextlib import contextmanager
from typing import Iterator

__all__ = ["bind_request_id", "ensure_request_id", "get_request_id", "new_request_id"]

_request_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_request_id", default=None
)

#: Accepted client-supplied ids: short, printable, header-safe.
_VALID_ID = re.compile(r"[A-Za-z0-9._:,-]{1,128}\Z")


def new_request_id() -> str:
    """A fresh 16-hex-char id (collision-safe at serving scale)."""
    return uuid.uuid4().hex[:16]


def ensure_request_id(candidate: str | None = None) -> str:
    """``candidate`` if it is a usable header value, else a fresh id."""
    if candidate and _VALID_ID.match(candidate):
        return candidate
    return new_request_id()


def get_request_id() -> str | None:
    """The id bound in the current context, or ``None`` outside a request."""
    return _request_id.get()


@contextmanager
def bind_request_id(request_id: str | None) -> Iterator[str | None]:
    """Bind ``request_id`` for the ``with`` block (``None`` clears it)."""
    token = _request_id.set(request_id)
    try:
        yield request_id
    finally:
        _request_id.reset(token)
