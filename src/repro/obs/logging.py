"""Structured logging on stdlib ``logging``: JSON lines + request ids.

:func:`setup_logging` configures the ``repro`` logger tree once per
process (the CLI calls it from ``serve``/``router``/``worker`` with the
``--log-format``/``--log-level`` flags). Both formats stamp every record
with the bound request id:

- ``text`` — classic one-line format with ``[request_id]``.
- ``json`` — one JSON object per line with a fixed schema
  (``ts``, ``level``, ``logger``, ``message``, ``request_id``) plus any
  extras passed via ``logger.info(..., extra={...})`` and a ``traceback``
  field when ``exc_info`` is set. Machines parse it; the CI smoke job
  asserts the lines of one request share a ``request_id``.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

from repro.obs.context import get_request_id

__all__ = ["JsonFormatter", "RequestIdFilter", "get_logger", "setup_logging"]

#: ``logging.LogRecord`` attributes that are plumbing, not payload.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
        "request_id",
    )
)

TEXT_FORMAT = "%(asctime)s %(levelname)s %(name)s [%(request_id)s] %(message)s"


class RequestIdFilter(logging.Filter):
    """Stamp every record with the context's request id (``-`` outside)."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not getattr(record, "request_id", None):
            record.request_id = get_request_id() or "-"
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line; extras and tracebacks ride along."""

    def format(self, record: logging.LogRecord) -> str:
        document: dict[str, object] = {
            "ts": round(record.created, 6),
            "iso": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
            "request_id": getattr(record, "request_id", None) or get_request_id() or "-",
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in document:
                continue
            if isinstance(value, (str, int, float, bool)) or value is None:
                document[key] = value
            else:
                document[key] = repr(value)
        if record.exc_info:
            document["traceback"] = self.formatException(record.exc_info)
        return json.dumps(document, default=str)


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger tree (``repro.<name>``)."""
    return logging.getLogger(name if name.startswith("repro") else f"repro.{name}")


def setup_logging(
    log_format: str = "text",
    level: str = "info",
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root of the tree.

    Idempotent: re-running replaces the handler, so tests can switch
    format/level freely. Logs go to ``stream`` (default ``sys.stderr``)
    and never propagate to the root logger.
    """
    if log_format not in ("text", "json"):
        raise ValueError(f"--log-format must be 'text' or 'json', got {log_format!r}")
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.addFilter(RequestIdFilter())
    if log_format == "json":
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(TEXT_FORMAT))
    logger = logging.getLogger("repro")
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    return logger
