"""Thread-safe in-process metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per process (the module-level ``REGISTRY``)
holds metric *families*; a family with label names hands out *children*
(one per label-value tuple) via :meth:`~_MetricFamily.labels`. All updates
take the family lock, so hammering one child from many threads loses no
increments; ``Histogram.observe`` is O(1) via :func:`bisect.bisect_left`
over the fixed bucket bounds.

The registry is get-or-create: re-declaring a family with the same name,
kind, and label names returns the existing object (so module import order
does not matter), while a conflicting re-declaration raises.

:func:`stats_families` adapts the serving layer's existing ``stats()``
dicts into gauge families at scrape time — the dicts stay the single
source of truth and nothing is counted twice.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Iterable, Mapping

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "STAGE_BUCKETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "stats_families",
]

#: Request-latency bounds in seconds (Prometheus' classic spread).
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Pipeline stages run in the tens of microseconds; finer low end.
STAGE_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _check_name(name: str) -> str:
    if not _METRIC_NAME.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Iterable[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_NAME.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


class _MetricFamily:
    """Shared machinery: name/help/labels, the lock, the child map."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _MetricFamily] = {}
        if not self.labelnames:
            self._init_child()

    def _init_child(self) -> None:
        raise NotImplementedError

    def _copy_config(self, child: "_MetricFamily") -> None:
        """Copy subclass configuration (e.g. buckets) before ``_init_child``."""

    def _new_child(self) -> "_MetricFamily":
        child = type(self).__new__(type(self))
        child.name = self.name
        child.help = self.help
        child.labelnames = ()
        child._lock = self._lock
        child._children = {}
        self._copy_config(child)
        child._init_child()
        return child

    def labels(self, *values: object) -> "_MetricFamily":
        """The child for one label-value tuple (created on first use)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label value(s), got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
        return child

    def _require_bare(self) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} has labels {self.labelnames}; call .labels() first")

    def samples(self) -> list[tuple[dict[str, str], "_MetricFamily"]]:
        """``(labels-dict, child)`` pairs in insertion order."""
        if not self.labelnames:
            return [({}, self)]
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.labelnames, key)), child) for key, child in items]


class Counter(_MetricFamily):
    """A monotonically increasing count (requests, errors, tasks)."""

    kind = "counter"

    def _init_child(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        self._require_bare()
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        self._require_bare()
        with self._lock:
            return self._value


class Gauge(_MetricFamily):
    """A value that can go up and down (queue depth, live sessions)."""

    kind = "gauge"

    def _init_child(self) -> None:
        self._value = 0.0
        self._callback: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._require_bare()
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_bare()
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, callback: Callable[[], float]) -> None:
        """Read the gauge from ``callback`` at scrape time instead."""
        self._require_bare()
        with self._lock:
            self._callback = callback

    @property
    def value(self) -> float:
        self._require_bare()
        with self._lock:
            if self._callback is not None:
                return float(self._callback())
            return self._value


class Histogram(_MetricFamily):
    """Fixed-bucket distribution; ``observe()`` is one bisect + two adds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be sorted and distinct, got {bounds!r}")
        self.buckets = bounds  # upper bounds, +Inf implicit
        super().__init__(name, help, labelnames)

    def _init_child(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def _copy_config(self, child: "_MetricFamily") -> None:
        child.buckets = self.buckets  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        """Record one observation (bucket with ``le >= value`` gets it)."""
        self._require_bare()
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """``(per-bucket counts incl +Inf, sum, count)`` under the lock."""
        self._require_bare()
        with self._lock:
            return list(self._counts), self._sum, self._count


class MetricsRegistry:
    """Named metric families, created once and shared process-wide."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _MetricFamily] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs) -> _MetricFamily:
        labelnames = _check_labelnames(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames!r}"
                    )
                return existing
            family = cls(name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        """Get or create a :class:`Counter` family."""
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge` family."""
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram` family with fixed buckets."""
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labelnames, buckets=buckets
        )

    def collect(self) -> list[_MetricFamily]:
        """All families, sorted by name (the exposition order)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family (test isolation only)."""
        with self._lock:
            self._families.clear()


#: The process-wide default registry (what ``/v1/metrics`` renders).
REGISTRY = MetricsRegistry()


def stats_families(prefix: str, stats: Mapping[str, object]) -> list[Gauge]:
    """Flatten a ``stats()`` dict into unregistered gauge families.

    Numbers and booleans become ``<prefix>_<path>`` gauges; nested dicts
    extend the path; a dict whose keys are not metric-name-safe (e.g. the
    router's ``nodes`` map keyed by ``host:port``) becomes one labeled
    gauge with a ``key`` label instead. Strings, lists, and ``None`` are
    skipped — they belong in ``stats()``, not in a numeric scrape.
    """
    families: list[Gauge] = []

    def walk(path: str, mapping: Mapping[str, object]) -> None:
        labeled: list[tuple[str, float]] = []
        for key, value in mapping.items():
            key_is_safe = bool(re.fullmatch(r"[a-zA-Z_][a-zA-Z0-9_]*", str(key)))
            if isinstance(value, Mapping):
                if key_is_safe:
                    walk(f"{path}_{key}", value)
                continue
            if isinstance(value, bool):
                number = 1.0 if value else 0.0
            elif isinstance(value, (int, float)):
                number = float(value)
            else:
                continue
            if key_is_safe:
                gauge = Gauge(f"{path}_{key}", f"{prefix} stats field {key}")
                gauge.set(number)
                families.append(gauge)
            else:
                labeled.append((str(key), number))
        if labeled:
            family = Gauge(path, f"{prefix} stats map", labelnames=("key",))
            for key, number in labeled:
                family.labels(key).set(number)
            families.append(family)

    walk(_check_name(prefix), stats)
    return families
