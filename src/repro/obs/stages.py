"""Low-overhead pipeline stage timing: the ``--profile`` successor.

``stage_timer(stage)`` wraps the five pipeline stages — ``paa``
(znorm + PAA matrix formation), ``discretize`` (breakpoint search),
``grammar`` (Sequitur feed), ``density`` (rule-density curves),
``combine`` (selection/normalization/combination) — inside
:mod:`repro.core.engine` and :mod:`repro.core.streaming`. Each completed
timing is recorded into the process histogram
``repro_stage_seconds{stage=...}`` (scraped via ``/v1/metrics``) and into
every active :func:`capture` accumulator (the opt-in ``timings`` block on
detect responses).

Overhead discipline: the timers fire once per *drain block / member
curve*, never per point, and when telemetry is disabled
(``REPRO_TELEMETRY=0`` or :func:`set_stage_timing`\\ ``(False)``)
``stage_timer`` returns a shared no-op context manager — one function
call and one attribute check on the hot path. The bench guard
(``benchmarks/bench_obs_overhead.py``) asserts the enabled streaming
per-point path stays within 2% of the disabled one.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from repro.obs.metrics import REGISTRY, STAGE_BUCKETS

__all__ = [
    "STAGES",
    "capture",
    "set_stage_timing",
    "stage_timer",
    "stage_timing_enabled",
]

#: The instrumented pipeline stages, in pipeline order.
STAGES = ("paa", "discretize", "grammar", "density", "combine")

_enabled = os.environ.get("REPRO_TELEMETRY", "1").strip().lower() not in (
    "0", "false", "off", "no",
)

_histogram = REGISTRY.histogram(
    "repro_stage_seconds",
    "Pipeline stage durations (one observation per drain block / member curve)",
    labelnames=("stage",),
    buckets=STAGE_BUCKETS,
)
_children = {stage: _histogram.labels(stage) for stage in STAGES}

_local = threading.local()


def stage_timing_enabled() -> bool:
    """Whether stage timers currently record anything."""
    return _enabled


def set_stage_timing(enabled: bool) -> bool:
    """Flip stage timing at runtime; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def _observe(stage: str, elapsed: float) -> None:
    child = _children.get(stage)
    if child is None:
        child = _children[stage] = _histogram.labels(stage)
    child.observe(elapsed)
    for accumulator in getattr(_local, "captures", ()):
        accumulator[stage] = accumulator.get(stage, 0.0) + elapsed


class _Timer:
    """One enabled timing scope (class-based: no generator overhead)."""

    __slots__ = ("stage", "started")

    def __init__(self, stage: str) -> None:
        self.stage = stage

    def __enter__(self) -> "_Timer":
        self.started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        _observe(self.stage, perf_counter() - self.started)


class _Noop:
    __slots__ = ()

    def __enter__(self) -> "_Noop":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _Noop()


def stage_timer(stage: str) -> object:
    """A context manager timing ``stage`` (no-op when timing is off)."""
    if not _enabled:
        return _NOOP
    return _Timer(stage)


@contextmanager
def capture() -> Iterator[dict[str, float]]:
    """Accumulate this thread's stage durations for the ``with`` block.

    Yields a dict that fills with ``{stage: seconds}`` as timers close;
    nested captures each see every observation. Empty when telemetry is
    disabled or the executed path runs its stages in another process
    (process/cluster executors record in the worker, not here).
    """
    accumulator: dict[str, float] = {}
    stack = getattr(_local, "captures", None)
    if stack is None:
        stack = _local.captures = []
    stack.append(accumulator)
    try:
        yield accumulator
    finally:
        stack.remove(accumulator)
