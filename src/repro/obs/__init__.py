"""Zero-dependency telemetry: metrics, structured logs, stage timers.

The observability subsystem the serving/cluster tiers report through:

- :mod:`repro.obs.metrics` — a thread-safe in-process metrics registry
  (``Counter``/``Gauge``/``Histogram`` with labeled children).
- :mod:`repro.obs.expfmt` — Prometheus text-format exposition for
  ``GET /v1/metrics``.
- :mod:`repro.obs.context` — the per-request correlation id, carried via
  ``contextvars`` from the HTTP edge through the batcher to cluster
  workers.
- :mod:`repro.obs.logging` — stdlib ``logging`` setup with a JSON
  formatter and automatic ``request_id`` stamping.
- :mod:`repro.obs.stages` — the low-overhead pipeline stage timer seam
  (PAA, discretization, grammar, density, combine).

Everything here is stdlib-only; importing it never pulls in numpy or any
service-layer module, so the grammar hot path can depend on it freely.
"""

from repro.obs.context import bind_request_id, ensure_request_id, get_request_id, new_request_id
from repro.obs.expfmt import EXPOSITION_CONTENT_TYPE, render
from repro.obs.logging import get_logger, setup_logging
from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry, stats_families
from repro.obs.stages import stage_timer, stage_timing_enabled

__all__ = [
    "REGISTRY",
    "EXPOSITION_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bind_request_id",
    "ensure_request_id",
    "get_logger",
    "get_request_id",
    "new_request_id",
    "render",
    "setup_logging",
    "stage_timer",
    "stage_timing_enabled",
    "stats_families",
]
