"""Prometheus text-format exposition (version 0.0.4) for the registry.

Renders the ``# HELP``/``# TYPE`` header per family, then one line per
sample; histogram children expand into cumulative ``_bucket{le=...}``
series (ending at ``le="+Inf"``), plus ``_sum`` and ``_count``. Label
values are escaped per the spec (backslash, double-quote, newline); help
text escapes backslash and newline.

The output of :func:`render` is what ``GET /v1/metrics`` returns on both
the serve node and the router, with :data:`EXPOSITION_CONTENT_TYPE` as
its ``Content-Type``.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, _MetricFamily

__all__ = ["EXPOSITION_CONTENT_TYPE", "render", "render_registry"]

#: The Content-Type Prometheus scrapers expect for the text format.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def _render_family(family: _MetricFamily, lines: list[str]) -> None:
    if family.help:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for labels, child in family.samples():
        if isinstance(child, Histogram):
            counts, total, count = child.snapshot()
            cumulative = 0
            for bound, bucket_count in zip(child.buckets, counts):
                cumulative += bucket_count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(float(bound))
                lines.append(
                    f"{family.name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                )
            bucket_labels = dict(labels)
            bucket_labels["le"] = "+Inf"
            lines.append(f"{family.name}_bucket{_labels_text(bucket_labels)} {count}")
            lines.append(f"{family.name}_sum{_labels_text(labels)} {_format_value(total)}")
            lines.append(f"{family.name}_count{_labels_text(labels)} {count}")
        elif isinstance(child, (Counter, Gauge)):
            lines.append(f"{family.name}{_labels_text(labels)} {_format_value(child.value)}")


def render(families: Iterable[_MetricFamily]) -> str:
    """The exposition text for an iterable of metric families."""
    lines: list[str] = []
    for family in families:
        _render_family(family, lines)
    return "\n".join(lines) + "\n"


def render_registry(registry: MetricsRegistry, extra: Iterable[_MetricFamily] = ()) -> str:
    """Registry families plus scrape-time extras (e.g. stats gauges)."""
    return render(list(registry.collect()) + list(extra))
