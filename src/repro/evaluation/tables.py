"""ASCII table rendering for the benches and examples.

The benchmark harness prints each reproduced table in the same row/column
layout as the paper, with paper-reported values alongside measured ones;
this module handles the alignment so every bench stays declarative.
"""

from __future__ import annotations

from typing import Sequence


def format_float(value: float, digits: int = 4) -> str:
    """Fixed-precision float formatting used in all reproduced tables."""
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified with ``str``; column widths adapt to content.
    """
    if not headers:
        raise ValueError("a table needs headers")
    text_rows = [[str(cell) for cell in row] for row in rows]
    for index, row in enumerate(text_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(header) for header in headers]
    for row in text_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(separator)))
    lines.append(_line(list(headers)))
    lines.append(separator)
    lines.extend(_line(row) for row in text_rows)
    return "\n".join(lines)
