"""Per-series win/tie/loss comparison (paper Tables 6–9, Figure 10).

The paper compares the ensemble against each baseline per test series: a
*win* is a strictly higher Score, a *tie* an equal Score, a *loss* a
strictly lower one. Scores are real-valued, so equality uses a tolerance
(most ties in practice are exact 0-vs-0 or 1-vs-1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: Two scores within this distance count as a tie.
DEFAULT_TIE_TOLERANCE = 1e-6


@dataclass(frozen=True)
class WinsTiesLosses:
    """Win/tie/loss counts of method A against method B."""

    wins: int
    ties: int
    losses: int

    def __post_init__(self) -> None:
        if min(self.wins, self.ties, self.losses) < 0:
            raise ValueError("counts must be non-negative")

    @property
    def total(self) -> int:
        return self.wins + self.ties + self.losses

    def __str__(self) -> str:
        """The paper's ``wins/ties/losses`` cell format, e.g. ``12/5/8``."""
        return f"{self.wins}/{self.ties}/{self.losses}"


def wins_ties_losses(
    scores_a: Sequence[float] | np.ndarray,
    scores_b: Sequence[float] | np.ndarray,
    tolerance: float = DEFAULT_TIE_TOLERANCE,
) -> WinsTiesLosses:
    """Count per-case wins/ties/losses of ``scores_a`` against ``scores_b``."""
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(
            f"score arrays must be 1-D and aligned, got shapes {a.shape} and {b.shape}"
        )
    if a.size == 0:
        raise ValueError("cannot compare empty score arrays")
    differences = a - b
    ties = int(np.sum(np.abs(differences) <= tolerance))
    wins = int(np.sum(differences > tolerance))
    losses = int(np.sum(differences < -tolerance))
    return WinsTiesLosses(wins=wins, ties=ties, losses=losses)
