"""Evaluation harness (paper Section 7).

- :mod:`repro.evaluation.metrics` — Score (Eq. 5), HitRate, per-case best.
- :mod:`repro.evaluation.comparison` — wins/ties/losses between methods.
- :mod:`repro.evaluation.baselines` — GI-Random, GI-Fix, GI-Select and the
  Discord baseline, all behind the common detector protocol.
- :mod:`repro.evaluation.harness` — corpus runners and aggregation used by
  every accuracy bench.
- :mod:`repro.evaluation.tables` — ASCII table rendering for the benches.
"""

from repro.evaluation.baselines import (
    GIRandomDetector,
    GISelectDetector,
    gi_fix_detector,
    make_baseline_factories,
    select_parameters,
)
from repro.evaluation.comparison import WinsTiesLosses, wins_ties_losses
from repro.evaluation.harness import (
    DetectorFactory,
    MethodScores,
    evaluate_detector,
    evaluate_methods,
    evaluate_methods_on_corpus,
)
from repro.evaluation.metrics import best_score, hit_rate, score
from repro.evaluation.tables import format_float, format_table

__all__ = [
    "DetectorFactory",
    "GIRandomDetector",
    "GISelectDetector",
    "MethodScores",
    "WinsTiesLosses",
    "best_score",
    "evaluate_detector",
    "evaluate_methods",
    "evaluate_methods_on_corpus",
    "format_float",
    "format_table",
    "gi_fix_detector",
    "hit_rate",
    "make_baseline_factories",
    "score",
    "select_parameters",
    "wins_ties_losses",
]
