"""Evaluation metrics (paper Section 7.1.2).

The paper scores a predicted anomaly location against the planted ground
truth with Eq. (5):

``Score = 1 - min(1, |PredictLocation - GTLocation| / GTLength)``

Score is 1 for an exact location match, decays linearly with the offset,
and is 0 once the candidate no longer overlaps the ground truth. Each
method reports its top-3 non-overlapping candidates and is credited with
the best of their scores; HitRate is the fraction of test series where that
best score is positive.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.anomaly import Anomaly


def score(predict_location: int, gt_location: int, gt_length: int) -> float:
    """Eq. (5): linear-decay location score in [0, 1]."""
    if gt_length < 1:
        raise ValueError(f"gt_length must be positive, got {gt_length}")
    offset = abs(int(predict_location) - int(gt_location))
    return 1.0 - min(1.0, offset / gt_length)


def best_score(
    anomalies: Iterable[Anomaly],
    gt_location: int,
    gt_length: int,
) -> float:
    """Best Eq. (5) score over a method's reported candidates (0 if none)."""
    best = 0.0
    for anomaly in anomalies:
        best = max(best, score(anomaly.position, gt_location, gt_length))
    return best


def hit_rate(scores: Sequence[float] | np.ndarray) -> float:
    """Fraction of cases with Score > 0 (candidate overlapped ground truth)."""
    values = np.asarray(scores, dtype=np.float64)
    if values.size == 0:
        raise ValueError("hit_rate of an empty score list is undefined")
    if np.any((values < 0) | (values > 1)):
        raise ValueError("scores must lie in [0, 1]")
    return float(np.mean(values > 0.0))


def average_score(scores: Sequence[float] | np.ndarray) -> float:
    """Mean Score over a corpus (the paper's per-dataset headline number)."""
    values = np.asarray(scores, dtype=np.float64)
    if values.size == 0:
        raise ValueError("average_score of an empty score list is undefined")
    return float(values.mean())
