"""Result serialization: JSON/CSV exports of detections and evaluations.

Backs the command-line interface and gives downstream users a stable
on-disk format for detections (positions, lengths, scores) and evaluation
summaries (per-method average Score / HitRate / per-case scores).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.anomaly import Anomaly
from repro.evaluation.harness import MethodScores

#: Format version written into every JSON document.
FORMAT_VERSION = 1


def anomalies_to_dicts(anomalies: Sequence[Anomaly]) -> list[dict]:
    """Plain-dict form of a detection result (JSON-ready)."""
    return [
        {
            "rank": anomaly.rank,
            "position": anomaly.position,
            "length": anomaly.length,
            "score": float(anomaly.score),
        }
        for anomaly in anomalies
    ]


def anomalies_from_dicts(records: Sequence[Mapping]) -> list[Anomaly]:
    """Inverse of :func:`anomalies_to_dicts`."""
    return [
        Anomaly(
            position=int(record["position"]),
            length=int(record["length"]),
            score=float(record["score"]),
            rank=int(record["rank"]),
        )
        for record in records
    ]


def write_detections_json(
    path: str | Path,
    anomalies: Sequence[Anomaly],
    *,
    metadata: Mapping[str, object] | None = None,
) -> None:
    """Write a detection result with optional run metadata."""
    document = {
        "format_version": FORMAT_VERSION,
        "metadata": dict(metadata or {}),
        "anomalies": anomalies_to_dicts(anomalies),
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")


def read_detections_json(path: str | Path) -> tuple[list[Anomaly], dict]:
    """Read a detection result written by :func:`write_detections_json`."""
    document = json.loads(Path(path).read_text())
    if document.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported detections format version {document.get('format_version')!r}"
        )
    return anomalies_from_dicts(document["anomalies"]), dict(document.get("metadata", {}))


def write_detections_csv(path: str | Path, anomalies: Sequence[Anomaly]) -> None:
    """CSV export: one candidate per row (rank, position, length, score)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["rank", "position", "length", "score"])
        for anomaly in anomalies:
            writer.writerow([anomaly.rank, anomaly.position, anomaly.length, anomaly.score])


def evaluation_to_dict(results: Mapping[str, MethodScores]) -> dict:
    """JSON-ready form of one corpus evaluation (method -> scores)."""
    return {
        "format_version": FORMAT_VERSION,
        "methods": {
            name: {
                "average_score": scores.average,
                "hit_rate": scores.hit_rate,
                "scores": list(scores.scores),
            }
            for name, scores in results.items()
        },
    }


def write_evaluation_json(path: str | Path, results: Mapping[str, MethodScores]) -> None:
    """Persist a corpus evaluation."""
    Path(path).write_text(json.dumps(evaluation_to_dict(results), indent=2) + "\n")


def read_evaluation_json(path: str | Path) -> dict[str, MethodScores]:
    """Load a corpus evaluation back into :class:`MethodScores` records."""
    document = json.loads(Path(path).read_text())
    if document.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported evaluation format version {document.get('format_version')!r}"
        )
    return {
        name: MethodScores(name, tuple(float(s) for s in payload["scores"]))
        for name, payload in document["methods"].items()
    }
