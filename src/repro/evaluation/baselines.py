"""The paper's four baselines (Section 7.1.3).

- **GI-Random** — grammar induction with one ``(w, a)`` drawn uniformly from
  the same ranges the ensemble samples from.
- **GI-Fix** — grammar induction with the fixed generic values ``w=4, a=4``
  reported as broadly usable in GrammarViz [20].
- **GI-Select** — grammar induction with ``(w, a)`` chosen by an
  unsupervised optimization on the first 10% of the (normal) series,
  following the GrammarViz 3.0 procedure [19]: prefer the discretization
  whose grammar *covers* the normal sample best, breaking ties by grammar
  description length (see :func:`select_parameters`).
- **Discord** — the STOMP matrix-profile discord detector
  (:class:`repro.discord.discords.DiscordDetector`).

All baselines implement the common ``detect(series, k)`` protocol, so the
harness treats them interchangeably with the ensemble.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.anomaly import Anomaly
from repro.core.detector import GrammarAnomalyDetector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.discord.discords import DiscordDetector
from repro.grammar.density import rule_density_curve
from repro.grammar.sequitur import induce_grammar
from repro.sax.numerosity import numerosity_reduction
from repro.sax.sax import discretize
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import ensure_time_series, validate_window


def gi_fix_detector(window: int) -> GrammarAnomalyDetector:
    """GI-Fix: the fixed generic parameter values ``w = 4, a = 4``."""
    return GrammarAnomalyDetector(window, paa_size=4, alphabet_size=4)


class GIRandomDetector:
    """GI-Random: one uniformly drawn ``(w, a)`` per detection call.

    Parameters
    ----------
    window:
        Sliding-window length.
    max_paa_size, max_alphabet_size:
        Sampling ranges, identical to the ensemble's (paper requirement).
    seed:
        Seed or generator; consecutive calls draw fresh parameters from the
        same stream, so a full corpus run is reproducible.
    """

    def __init__(
        self,
        window: int,
        *,
        max_paa_size: int = 10,
        max_alphabet_size: int = 10,
        seed: RandomState = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        self.window = int(window)
        self.max_paa_size = int(max_paa_size)
        self.max_alphabet_size = int(max_alphabet_size)
        self._rng = ensure_rng(seed)
        self.last_parameters: tuple[int, int] | None = None

    def detect(self, series: np.ndarray, k: int = 3) -> list[Anomaly]:
        paa_size = int(self._rng.integers(2, min(self.max_paa_size, self.window) + 1))
        alphabet_size = int(self._rng.integers(2, self.max_alphabet_size + 1))
        self.last_parameters = (paa_size, alphabet_size)
        detector = GrammarAnomalyDetector(self.window, paa_size, alphabet_size)
        return detector.detect(series, k)


def select_parameters(
    sample: np.ndarray,
    window: int,
    *,
    max_paa_size: int = 10,
    max_alphabet_size: int = 10,
) -> tuple[int, int]:
    """Unsupervised ``(w, a)`` selection on a normal sample (GI-Select).

    Grid search over ``[2, wmax] x [2, amax]`` minimizing, lexicographically:

    1. the fraction of sample points *not covered* by any grammar rule — on
       purely normal data everything should compress, so uncovered points
       signal a discretization that fails to expose the data's regularity;
    2. the grammar description length (total RHS symbols + rule count)
       relative to the token count, preferring the more compact grammar
       among equally covering ones.

    This reproduces the intent of the GrammarViz 3.0 sampling-based
    parameter optimization [19] (see DESIGN.md, Substitutions).
    """
    sample = ensure_time_series(sample, name="sample", min_length=4)
    window = validate_window(window, len(sample))
    best: tuple[float, float] | None = None
    best_params = (2, 2)
    for paa_size in range(2, min(max_paa_size, window) + 1):
        for alphabet_size in range(2, max_alphabet_size + 1):
            words = discretize(sample, window, paa_size, alphabet_size)
            tokens = numerosity_reduction(words, window)
            grammar = induce_grammar(tokens.words)
            curve = rule_density_curve(grammar, tokens, len(sample))
            uncovered = float(np.mean(curve == 0.0))
            relative_size = grammar.grammar_size() / max(len(tokens), 1)
            cost = (uncovered, relative_size)
            if best is None or cost < best:
                best = cost
                best_params = (paa_size, alphabet_size)
    return best_params


class GISelectDetector:
    """GI-Select: parameters tuned on the first ``sample_fraction`` of the series.

    The paper plants anomalies between 40% and 80% of each test series, so
    the leading 10% is normal data — the "10% of the normal time series"
    the optimization procedure of [19] uses.
    """

    def __init__(
        self,
        window: int,
        *,
        max_paa_size: int = 10,
        max_alphabet_size: int = 10,
        sample_fraction: float = 0.1,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
        self.window = int(window)
        self.max_paa_size = int(max_paa_size)
        self.max_alphabet_size = int(max_alphabet_size)
        self.sample_fraction = float(sample_fraction)
        self.last_parameters: tuple[int, int] | None = None

    def detect(self, series: np.ndarray, k: int = 3) -> list[Anomaly]:
        series = ensure_time_series(series, name="series", min_length=2)
        sample_length = max(int(self.sample_fraction * len(series)), 2 * self.window)
        sample_length = min(sample_length, len(series))
        paa_size, alphabet_size = select_parameters(
            series[:sample_length],
            self.window,
            max_paa_size=self.max_paa_size,
            max_alphabet_size=self.max_alphabet_size,
        )
        self.last_parameters = (paa_size, alphabet_size)
        detector = GrammarAnomalyDetector(self.window, paa_size, alphabet_size)
        return detector.detect(series, k)


def make_baseline_factories(
    *,
    max_paa_size: int = 10,
    max_alphabet_size: int = 10,
    ensemble_size: int = 50,
    selectivity: float = 0.4,
    seed: RandomState = 0,
) -> dict[str, Callable[[int], object]]:
    """Factories for the paper's five compared methods, keyed by table name.

    Each factory maps a window length to a ready detector. The proposed
    ensemble and GI-Random consume independent child seeds derived from
    ``seed`` so corpus runs are reproducible end to end.
    """
    base = ensure_rng(seed)
    ensemble_seed = int(base.integers(0, 2**63 - 1))
    random_seed = int(base.integers(0, 2**63 - 1))
    return {
        "Proposed": lambda window: EnsembleGrammarDetector(
            window,
            max_paa_size=max_paa_size,
            max_alphabet_size=max_alphabet_size,
            ensemble_size=ensemble_size,
            selectivity=selectivity,
            seed=ensemble_seed,
        ),
        "GI-Random": lambda window: GIRandomDetector(
            window,
            max_paa_size=max_paa_size,
            max_alphabet_size=max_alphabet_size,
            seed=random_seed,
        ),
        "GI-Fix": lambda window: gi_fix_detector(window),
        "GI-Select": lambda window: GISelectDetector(
            window,
            max_paa_size=max_paa_size,
            max_alphabet_size=max_alphabet_size,
        ),
        "Discord": lambda window: DiscordDetector(window),
    }
