"""Corpus evaluation runners (the engine behind every accuracy bench).

The flow mirrors Section 7.1: per dataset, generate a corpus of planted
test series, run each method's detector (window = planted instance length
unless overridden), collect each case's best top-3 Score, and aggregate
into average Score / HitRate / win-tie-loss records.

Detectors are created per *corpus* via a factory (``window -> detector``)
so stateful baselines (GI-Random's parameter stream) behave as in the
paper: fresh randomness per series, reproducible per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

from repro.datasets.planting import AnomalyTestCase
from repro.evaluation.metrics import average_score, best_score, hit_rate


class _Detector(Protocol):
    def detect(self, series: np.ndarray, k: int = 3) -> list:
        ...


#: A factory mapping a window length to a ready detector.
DetectorFactory = Callable[[int], _Detector]


@dataclass(frozen=True)
class MethodScores:
    """Per-case best Scores of one method on one corpus."""

    method: str
    scores: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.scores:
            raise ValueError("a MethodScores needs at least one case")

    @property
    def average(self) -> float:
        """The paper's "average Score" (Table 4 cells)."""
        return average_score(self.scores)

    @property
    def hit_rate(self) -> float:
        """The paper's HitRate (Table 5 cells)."""
        return hit_rate(self.scores)

    def as_array(self) -> np.ndarray:
        return np.asarray(self.scores, dtype=np.float64)


def evaluate_detector(
    detector: _Detector,
    cases: Sequence[AnomalyTestCase],
    k: int = 3,
) -> list[float]:
    """Best top-``k`` Score of one detector on each case."""
    results: list[float] = []
    for case in cases:
        anomalies = detector.detect(case.series, k)
        results.append(best_score(anomalies, case.gt_location, case.gt_length))
    return results


def evaluate_methods_on_corpus(
    cases: Sequence[AnomalyTestCase],
    factories: Mapping[str, DetectorFactory],
    *,
    k: int = 3,
    window: int | None = None,
) -> dict[str, MethodScores]:
    """Run every method on a corpus and collect per-case Scores.

    Parameters
    ----------
    cases:
        The corpus (all cases must share one ground-truth length unless an
        explicit ``window`` is given).
    factories:
        Method name -> detector factory.
    k:
        Candidates per method (paper: top-3, non-overlapping).
    window:
        Sliding-window length; defaults to the corpus ground-truth length
        (the paper's ``n = na`` setting). Tables 13/14 pass fractions of it.
    """
    if not cases:
        raise ValueError("empty corpus")
    if window is None:
        lengths = {case.gt_length for case in cases}
        if len(lengths) != 1:
            raise ValueError(
                f"corpus has mixed ground-truth lengths {sorted(lengths)}; "
                "pass an explicit window"
            )
        window = lengths.pop()
    results: dict[str, MethodScores] = {}
    for name, factory in factories.items():
        detector = factory(window)
        scores = evaluate_detector(detector, cases, k)
        results[name] = MethodScores(name, tuple(scores))
    return results


def evaluate_methods(
    corpora: Mapping[str, Sequence[AnomalyTestCase]],
    factories: Mapping[str, DetectorFactory],
    *,
    k: int = 3,
) -> dict[str, dict[str, MethodScores]]:
    """Run every method on every dataset corpus: ``{dataset: {method: scores}}``."""
    return {
        dataset: evaluate_methods_on_corpus(cases, factories, k=k)
        for dataset, cases in corpora.items()
    }
