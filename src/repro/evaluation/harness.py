"""Corpus evaluation runners (the engine behind every accuracy bench).

The flow mirrors Section 7.1: per dataset, generate a corpus of planted
test series, run each method's detector (window = planted instance length
unless overridden), collect each case's best top-3 Score, and aggregate
into average Score / HitRate / win-tie-loss records.

Detectors are created per *corpus* via a factory (``window -> detector``)
so stateful baselines (GI-Random's parameter stream) behave as in the
paper: fresh randomness per series, reproducible per run.

Method comparisons parallelize over one shared executor
(:mod:`repro.core.executors`): each ``(dataset, method)`` pair is one task
that evaluates its corpus *sequentially* with its own detector, exactly as
the serial path does — so stateful parameter streams keep their in-order
semantics and results are identical across backends. Detectors are built in
the parent (factories may be closures) and pickled into process workers,
and the corpus travels by pickle once per task — a deliberate trade-off:
corpora are evaluation-sized, and sharing structured ``AnomalyTestCase``
records would need more machinery than the engine's flat-series path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

from repro.core.executors import MemberExecutor, open_executor
from repro.datasets.planting import AnomalyTestCase
from repro.evaluation.metrics import average_score, best_score, hit_rate


class _Detector(Protocol):
    def detect(self, series: np.ndarray, k: int = 3) -> list:
        ...


#: A factory mapping a window length to a ready detector.
DetectorFactory = Callable[[int], _Detector]


@dataclass(frozen=True)
class MethodScores:
    """Per-case best Scores of one method on one corpus."""

    method: str
    scores: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.scores:
            raise ValueError("a MethodScores needs at least one case")

    @property
    def average(self) -> float:
        """The paper's "average Score" (Table 4 cells)."""
        return average_score(self.scores)

    @property
    def hit_rate(self) -> float:
        """The paper's HitRate (Table 5 cells)."""
        return hit_rate(self.scores)

    def as_array(self) -> np.ndarray:
        return np.asarray(self.scores, dtype=np.float64)


def evaluate_detector(
    detector: _Detector,
    cases: Sequence[AnomalyTestCase],
    k: int = 3,
) -> list[float]:
    """Best top-``k`` Score of one detector on each case."""
    results: list[float] = []
    for case in cases:
        anomalies = detector.detect(case.series, k)
        results.append(best_score(anomalies, case.gt_location, case.gt_length))
    return results


def _corpus_window(cases: Sequence[AnomalyTestCase], window: int | None) -> int:
    """The corpus' sliding window: explicit, or the shared ground-truth length."""
    if not cases:
        raise ValueError("empty corpus")
    if window is not None:
        return int(window)
    lengths = {case.gt_length for case in cases}
    if len(lengths) != 1:
        raise ValueError(
            f"corpus has mixed ground-truth lengths {sorted(lengths)}; "
            "pass an explicit window"
        )
    return lengths.pop()


def _evaluate_method_task(payload) -> list[float]:
    """Worker: evaluate one ready detector on one corpus, sequentially.

    The whole corpus stays in one task so stateful detectors (GI-Random's
    parameter stream) see the cases in the exact order the serial path
    would — which is what makes executor results identical to serial ones.
    """
    detector, cases, k = payload
    return evaluate_detector(detector, cases, k)


def _close_detectors(detectors) -> None:
    """Release any detector-owned executors (factory detectors are ours)."""
    for detector in detectors:
        close = getattr(detector, "close", None)
        if close is not None:
            close()


def _prepare_for_pool(detector, pool_kind: str):
    """Make a factory-built detector safe to ship into a pooled task.

    Detectors configured with ``n_jobs > 1`` or their own executor would
    spawn a member pool per ``detect()`` call *inside* each harness worker
    — nested pools and an oversubscribed machine (and, under the thread
    backend, pools nobody ever closes). The harness owns these instances
    (the factory contract is to build a *fresh* detector per call — the
    harness configures and closes them), so force member execution fully
    serial whenever the harness itself is the parallel layer. Results are
    unchanged: member curves are identical across worker counts.
    """
    if pool_kind != "serial":
        if getattr(detector, "n_jobs", 1) != 1:
            detector.n_jobs = 1
        # Peek at the fields, not the lazy `executor` property (which would
        # build the very pool we're avoiding); close() drops spec and pool.
        if getattr(detector, "_executor", None) is not None or getattr(
            detector, "_executor_spec", None
        ) is not None:
            detector.close()
    return detector


def evaluate_methods_on_corpus(
    cases: Sequence[AnomalyTestCase],
    factories: Mapping[str, DetectorFactory],
    *,
    k: int = 3,
    window: int | None = None,
    executor: MemberExecutor | str | None = None,
) -> dict[str, MethodScores]:
    """Run every method on a corpus and collect per-case Scores.

    Parameters
    ----------
    cases:
        The corpus (all cases must share one ground-truth length unless an
        explicit ``window`` is given).
    factories:
        Method name -> detector factory.
    k:
        Candidates per method (paper: top-3, non-overlapping).
    window:
        Sliding-window length; defaults to the corpus ground-truth length
        (the paper's ``n = na`` setting). Tables 13/14 pass fractions of it.
    executor:
        Optional :class:`~repro.core.executors.MemberExecutor` (or backend
        name) to spread the methods across; each method's corpus is still
        evaluated sequentially inside one task, so results are identical to
        the serial path.
    """
    window = _corpus_window(cases, window)
    if executor is None:
        results: dict[str, MethodScores] = {}
        for name, factory in factories.items():
            detector = factory(window)
            try:
                scores = evaluate_detector(detector, cases, k)
            finally:
                _close_detectors([detector])
            results[name] = MethodScores(name, tuple(scores))
        return results
    names = list(factories)
    with open_executor(executor) as pool:
        # Detectors are built here in serial order (factories may be
        # closures or share construction-time randomness) and shipped to
        # workers ready-made.
        payloads = [
            (_prepare_for_pool(factories[name](window), pool.kind), tuple(cases), k)
            for name in names
        ]
        try:
            score_lists = pool.map(_evaluate_method_task, payloads)
        finally:
            _close_detectors(payload[0] for payload in payloads)
    return {
        name: MethodScores(name, tuple(scores))
        for name, scores in zip(names, score_lists)
    }


def evaluate_methods(
    corpora: Mapping[str, Sequence[AnomalyTestCase]],
    factories: Mapping[str, DetectorFactory],
    *,
    k: int = 3,
    executor: MemberExecutor | str | None = None,
) -> dict[str, dict[str, MethodScores]]:
    """Run every method on every dataset corpus: ``{dataset: {method: scores}}``.

    With an ``executor``, every ``(dataset, method)`` pair becomes one task
    and the whole comparison runs through a single shared pool — the paper's
    five-method suite saturates the machine instead of running dataset by
    dataset. Results are identical to the serial path.
    """
    if executor is None:
        return {
            dataset: evaluate_methods_on_corpus(cases, factories, k=k)
            for dataset, cases in corpora.items()
        }
    pairs: list[tuple[str, str]] = []
    payloads = []
    with open_executor(executor) as pool:
        for dataset, cases in corpora.items():
            window = _corpus_window(cases, None)
            for name, factory in factories.items():
                pairs.append((dataset, name))
                payloads.append(
                    (_prepare_for_pool(factory(window), pool.kind), tuple(cases), k)
                )
        try:
            score_lists = pool.map(_evaluate_method_task, payloads)
        finally:
            _close_detectors(payload[0] for payload in payloads)
    results: dict[str, dict[str, MethodScores]] = {dataset: {} for dataset in corpora}
    for (dataset, name), scores in zip(pairs, score_lists):
        results[dataset][name] = MethodScores(name, tuple(scores))
    return results
