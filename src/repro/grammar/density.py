"""Rule density curve (paper Section 5.2).

The rule density curve is a meta time series: its value at point ``t`` is the
number of grammar-rule occurrences whose mapped time-series interval covers
``t``. Incompressible stretches — candidates for anomalies — have low (often
zero) density.

Construction is O(#occurrences + N) using a difference array: each occurrence
contributes +1 at its interval start and -1 one past its end, and a prefix
sum yields the curve.
"""

from __future__ import annotations

import numpy as np

from repro.grammar.rules import Grammar
from repro.sax.numerosity import TokenSequence


def density_from_intervals(
    intervals: list[tuple[int, int]] | np.ndarray,
    length: int,
) -> np.ndarray:
    """Build a coverage-count curve from inclusive point intervals.

    Parameters
    ----------
    intervals:
        ``(start, end)`` inclusive index pairs — a list of tuples or an
        equivalent ``(k, 2)`` array; ends are clipped to the curve.
    length:
        Length of the output curve (the time series length ``N``).

    Notes
    -----
    The difference array is built with one ``np.add.at`` scatter per
    endpoint column rather than a Python loop over occurrences — on dense
    grammars this is the hot step of curve construction. Clipping and
    validation semantics match the scalar reference loop exactly (pinned by
    a ground-truth test).
    """
    if length <= 0:
        raise ValueError(f"curve length must be positive, got {length}")
    raw = np.asarray(intervals)
    if raw.size == 0:
        return np.zeros(length, dtype=np.float64)
    if raw.ndim != 2 or raw.shape[1] != 2:
        raise ValueError(f"intervals must be (start, end) pairs, got shape {raw.shape}")
    if np.issubdtype(raw.dtype, np.inexact) and not np.all(np.isfinite(raw)):
        raise ValueError("interval endpoints must be finite")
    # Emptiness is judged on the values as given (before any integer
    # truncation), exactly like the scalar loop's `end < start` check.
    empty = raw[:, 1] < raw[:, 0]
    if np.any(empty):
        first = int(np.argmax(empty))
        raise ValueError(f"interval ({raw[first, 0]}, {raw[first, 1]}) is empty")
    # Bound the values before the int64 cast so huge endpoints cannot
    # overflow; [-1, length] preserves every downstream comparison (only
    # "< 0", "< length", ">= length" are ever asked of them).
    pairs = np.clip(raw, -1, length).astype(np.int64)
    starts = pairs[:, 0]
    ends = pairs[:, 1]
    clipped_starts = np.maximum(starts, 0)
    clipped_ends = np.minimum(ends, length - 1)
    in_range = (clipped_starts < length) & (clipped_ends >= 0)
    diff = np.zeros(length + 1, dtype=np.int64)
    np.add.at(diff, clipped_starts[in_range], 1)
    np.add.at(diff, clipped_ends[in_range] + 1, -1)
    return np.cumsum(diff[:-1]).astype(np.float64)


def density_curve_from_token_spans(
    offsets: np.ndarray,
    window: int,
    firsts: np.ndarray,
    lasts: np.ndarray,
    series_length: int,
    *,
    horizon_start: int = 0,
) -> np.ndarray:
    """Density curve from occurrence token spans, fully vectorized.

    The fused fast path shared by batch and streaming detection: token
    spans (from :meth:`Grammar.occurrence_spans` or a kernel builder's
    ``occurrence_spans``) are mapped to time-series intervals with two
    gathers — ``starts = offsets[firsts]``, ``ends = offsets[lasts] +
    window - 1`` (the :meth:`TokenSequence.token_span` convention) — and
    accumulated by :func:`density_from_intervals`, whose validation and
    clipping make the result bitwise identical to the per-occurrence
    reference path.
    """
    starts = offsets[firsts]
    ends = offsets[lasts] + (window - 1)
    if horizon_start:
        starts = starts - horizon_start
        ends = ends - horizon_start
    return density_from_intervals(np.column_stack((starts, ends)), series_length)


def rule_density_curve(
    grammar: Grammar,
    tokens: TokenSequence,
    series_length: int,
    *,
    horizon_start: int = 0,
) -> np.ndarray:
    """Rule density curve of a series from its grammar and token sequence.

    Every occurrence of every rule except R0 (R0 spans the whole sequence
    and carries no locality information) is mapped back to the time-series
    interval recorded at numerosity reduction:
    ``[offsets[first_token], offsets[last_token] + window - 1]``.

    Parameters
    ----------
    grammar:
        Result of :func:`repro.grammar.induce_grammar` over ``tokens.words``.
    tokens:
        The numerosity-reduced token sequence, carrying window offsets.
    series_length:
        Length ``N`` of the output curve. With ``horizon_start=0`` this is
        the original series length.
    horizon_start:
        Origin of the curve in stream coordinates. The streaming eviction
        layer renormalizes density over the live horizon only: curve index
        ``i`` covers stream point ``horizon_start + i``, and token spans are
        shifted (and clipped) accordingly. The default 0 is the batch
        behaviour.

    Returns
    -------
    numpy.ndarray
        Float array of length ``series_length``; higher = more rule coverage.
    """
    expected = grammar.expanded_lengths()[0]
    if expected != len(tokens):
        raise ValueError(
            f"grammar expands to {expected} tokens but the token sequence "
            f"has {len(tokens)}; they must come from the same discretization"
        )
    firsts, lasts = grammar.occurrence_spans()
    return density_curve_from_token_spans(
        np.asarray(tokens.offsets, dtype=np.int64),
        tokens.window,
        firsts,
        lasts,
        series_length,
        horizon_start=int(horizon_start),
    )
