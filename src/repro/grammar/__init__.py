"""Grammar-induction substrate (paper Section 5) and its applications.

- :mod:`repro.grammar.sequitur` — the linear-time Sequitur algorithm
  (digram uniqueness + rule utility) over discrete token sequences.
- :mod:`repro.grammar._kernel` — the selectable Sequitur backends
  (``REPRO_KERNEL``): the pure-Python array kernel (``fast``, default),
  the numba kernel (``compiled``, import-guarded), and the object-graph
  reference oracle (``python``). All produce bitwise-identical grammars.
- :mod:`repro.grammar.rules` — the frozen :class:`Grammar` produced by
  induction: rules, expansions, occurrence enumeration, size metrics.
- :mod:`repro.grammar.density` — the rule density curve (Section 5.2), the
  meta time series whose minima mark anomaly candidates.
- :mod:`repro.grammar.rra` — GrammarViz's Rare Rule Anomaly algorithm
  [18, 19], the variable-length predecessor the paper's density method
  streamlines.
- :mod:`repro.grammar.motifs` — frequent-rule motif discovery, the flip
  side of grammar-based anomaly detection.
"""

from repro.grammar._kernel import KERNELS, current_kernel, set_kernel, use_kernel
from repro.grammar.density import density_from_intervals, rule_density_curve
from repro.grammar.motifs import Motif, discover_motifs, motifs_from_grammar
from repro.grammar.rra import RRADetector, RuleInterval, rule_intervals
from repro.grammar.rules import Grammar, GrammarRule, RuleOccurrence
from repro.grammar.sequitur import GenerationalSequitur, induce_grammar

__all__ = [
    "GenerationalSequitur",
    "KERNELS",
    "current_kernel",
    "set_kernel",
    "use_kernel",
    "Grammar",
    "GrammarRule",
    "Motif",
    "RRADetector",
    "RuleInterval",
    "RuleOccurrence",
    "density_from_intervals",
    "discover_motifs",
    "induce_grammar",
    "motifs_from_grammar",
    "rule_density_curve",
    "rule_intervals",
]
