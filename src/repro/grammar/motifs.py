"""Grammar-based motif discovery (GrammarViz [10, 19]; Gao & Lin [6, 7]).

The flip side of grammar-based anomaly detection: where anomalies are the
*incompressible* parts, motifs — frequently repeating variable-length
patterns — are the grammar rules with the most occurrences. The paper
leans on this machinery (its Section 3.1 motivates compressibility for
motif discovery), and the ensemble's member grammars expose motifs for
free; this module extracts them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grammar.rules import Grammar
from repro.grammar.sequitur import induce_grammar
from repro.sax.numerosity import TokenSequence, numerosity_reduction
from repro.sax.sax import discretize
from repro.utils.validation import ensure_time_series, validate_window


@dataclass(frozen=True)
class Motif:
    """A repeating variable-length pattern found via grammar induction.

    Attributes
    ----------
    rule_index:
        The grammar rule whose expansions are the motif instances.
    occurrences:
        ``(start, end)`` inclusive time intervals, one per instance.
    word_length:
        Length of the rule's expansion in tokens (pattern complexity).
    """

    rule_index: int
    occurrences: tuple[tuple[int, int], ...]
    word_length: int

    def __post_init__(self) -> None:
        if len(self.occurrences) < 2:
            raise ValueError("a motif needs at least two occurrences")

    @property
    def count(self) -> int:
        return len(self.occurrences)

    @property
    def mean_length(self) -> float:
        return float(np.mean([end - start + 1 for start, end in self.occurrences]))


def motifs_from_grammar(
    grammar: Grammar,
    tokens: TokenSequence,
    series_length: int,
    *,
    min_occurrences: int = 2,
    min_token_length: int = 2,
) -> list[Motif]:
    """Extract motifs from an induced grammar, most frequent first.

    Parameters
    ----------
    grammar, tokens:
        The grammar and the token sequence it was induced from.
    series_length:
        Used to clip interval ends.
    min_occurrences:
        Keep only rules occurring at least this often (rule utility already
        guarantees 2).
    min_token_length:
        Drop rules whose expansion is shorter than this many tokens —
        single-digram rules are usually trivial patterns.
    """
    lengths = grammar.expanded_lengths()
    by_rule: dict[int, list[tuple[int, int]]] = {}
    for occurrence in grammar.rule_occurrences():
        start, end = tokens.token_span(occurrence.first_token, occurrence.last_token)
        by_rule.setdefault(occurrence.rule_index, []).append(
            (start, min(end, series_length - 1))
        )
    found = [
        Motif(rule_index=rule, occurrences=tuple(sorted(intervals)), word_length=lengths[rule])
        for rule, intervals in by_rule.items()
        if len(intervals) >= min_occurrences and lengths[rule] >= min_token_length
    ]
    # Most frequent first; longer patterns break ties (more informative).
    found.sort(key=lambda motif: (-motif.count, -motif.word_length, motif.rule_index))
    return found


def discover_motifs(
    series: np.ndarray,
    window: int,
    paa_size: int = 4,
    alphabet_size: int = 4,
    *,
    k: int = 5,
    min_token_length: int = 2,
) -> list[Motif]:
    """End-to-end motif discovery on a raw series.

    Example
    -------
    >>> import numpy as np
    >>> series = np.tile(np.sin(np.linspace(0, 2 * np.pi, 100)), 20)
    >>> motifs = discover_motifs(series, window=100, paa_size=5, alphabet_size=4)
    >>> motifs[0].count >= 2
    True
    """
    series = ensure_time_series(series, name="series", min_length=2)
    window = validate_window(window, len(series))
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    words = discretize(series, window, paa_size, alphabet_size)
    tokens = numerosity_reduction(words, window)
    grammar = induce_grammar(tokens.words)
    return motifs_from_grammar(
        grammar, tokens, len(series), min_token_length=min_token_length
    )[:k]
