"""Grammar-induction kernel seam: selectable Sequitur hot-path backends.

The object-graph :class:`~repro.grammar.sequitur._SequiturBuilder` is the
*reference oracle*: a faithful port of the canonical linked-list Sequitur,
easy to audit against the paper but interpreter-bound (every token allocates
symbols, every digram hashes a tuple of strings). This module provides the
fast backends behind one seam so every caller — batch, streaming, baselines
— picks up the same speedup without touching the public API:

- ``"python"`` — the reference object implementation (oracle).
- ``"fast"`` — :class:`FastSequitur` below: the same algorithm transliterated
  onto an array-backed symbol arena (parallel ``next``/``prev``/``value``
  lists indexed by integer slot) with a packed-int digram table. No symbol
  objects, no tuple keys; terminals are interned integer token ids.
- ``"compiled"`` — a numba-jitted port of the fast kernel
  (:mod:`repro.grammar._kernel_compiled`), import-guarded exactly like the
  optional Dask executor: selecting it without numba installed raises with
  an install hint, and its tests are skipped when it cannot be imported.

Selection: the ``REPRO_KERNEL`` environment variable (read lazily on first
use, so test harnesses and CI matrices can set it per run), overridable
programmatically with :func:`set_kernel` / :func:`use_kernel`. The default
is ``"fast"``; the bitwise-parity suites run the whole test matrix under
both ``python`` and ``fast`` to keep the kernels interchangeable.

Kernel equivalence contract (pinned by ``tests/test_grammar_kernel.py``):
for any token sequence, every backend produces the identical frozen
:class:`~repro.grammar.rules.Grammar` (same rules, same numbering, same
refcounts) and the identical occurrence spans. Grammar structure depends
only on the *equality pattern* of the tokens, never on id values, so
interning is invisible to the result.

Encoding of the symbol arena (``FastSequitur``):

- ``value >= 0`` and even — a terminal with token id ``value >> 1``;
- ``value >= 1`` and odd — a non-terminal referencing the rule with serial
  ``(value - 1) >> 1``;
- ``value < 0`` — the guard of the rule with serial ``-value - 1``.

A digram key packs the two adjacent values into one int
(``left << 32 | right``); guards never enter the table (negative values are
checked first), and rule serials are never reused, so stale table entries
can never collide — the same ownership discipline as the oracle's
``digrams.get(key) is symbol`` identity check, with arena indices playing
the role of object identity (slots are never recycled).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from repro.grammar.rules import Grammar, GrammarRule

#: Recognized kernel names, in documentation order.
KERNELS = ("python", "fast", "compiled")

#: Kernel used when ``REPRO_KERNEL`` is unset.
DEFAULT_KERNEL = "fast"

#: Environment variable consulted (lazily) for the kernel choice.
KERNEL_ENV = "REPRO_KERNEL"

#: Programmatic override; ``None`` defers to the environment.
_override: str | None = None


def _validate_kernel(name: str) -> str:
    name = str(name)
    if name not in KERNELS:
        raise ValueError(f"unknown grammar kernel {name!r}; expected one of {KERNELS}")
    return name


def current_kernel() -> str:
    """The active kernel name (override, else ``REPRO_KERNEL``, else fast)."""
    if _override is not None:
        return _override
    env = os.environ.get(KERNEL_ENV)
    if env is None or env == "":
        return DEFAULT_KERNEL
    return _validate_kernel(env)


def set_kernel(name: str | None) -> str | None:
    """Override the kernel programmatically; returns the previous override.

    ``None`` removes the override, deferring to ``REPRO_KERNEL`` again.
    """
    global _override
    previous = _override
    _override = None if name is None else _validate_kernel(name)
    return previous


@contextmanager
def use_kernel(name: str | None) -> Iterator[None]:
    """Context manager scoping a kernel override (tests and benchmarks)."""
    previous = set_kernel(name)
    try:
        yield
    finally:
        set_kernel(previous)


def make_builder(kernel: str | None = None) -> "FastSequitur":
    """Instantiate the id-based builder for ``kernel`` (default: current).

    Only the id-based backends are constructible here; the ``"python"``
    oracle consumes words, not ids, and its callers keep using
    :class:`~repro.grammar.sequitur._SequiturBuilder` directly.
    """
    kernel = current_kernel() if kernel is None else _validate_kernel(kernel)
    if kernel == "fast":
        return FastSequitur()
    if kernel == "compiled":
        try:
            from repro.grammar._kernel_compiled import CompiledSequitur
        except ImportError as error:
            raise ImportError(
                "REPRO_KERNEL=compiled requires numba, which is not installed; "
                "install numba or select REPRO_KERNEL=fast (the pure-Python "
                "array kernel) or REPRO_KERNEL=python (the reference oracle)"
            ) from error
        return CompiledSequitur()
    raise ValueError(
        "the python kernel has no id-based builder; use _SequiturBuilder "
        "with word tokens"
    )


class FastSequitur:
    """Sequitur on an array-backed symbol arena keyed by integer token ids.

    A 1:1 transliteration of the oracle's linked-list algorithm: arena slot
    ``i`` is a symbol, ``_next[i]``/``_prev[i]`` are its neighbours (``-1``
    for unlinked), ``_value[i]`` encodes terminal/non-terminal/guard (see
    the module docstring). Rules live in parallel lists indexed by serial:
    ``_rule_guard[s]`` is the guard slot, ``_rule_count[s]`` the reference
    count. Slots are never recycled, so a stale digram-table entry can
    never be mistaken for a live occurrence (the arena-index analogue of
    the oracle's object-identity ownership check).
    """

    __slots__ = ("_next", "_prev", "_value", "_digrams", "_rule_guard", "_rule_count", "_fed")

    def __init__(self) -> None:
        self._next: list[int] = []
        self._prev: list[int] = []
        self._value: list[int] = []
        #: Packed digram key -> arena index of its registered occurrence.
        self._digrams: dict[int, int] = {}
        self._rule_guard: list[int] = []
        self._rule_count: list[int] = []
        self._fed = 0
        self._new_rule()  # serial 0 = R0

    # ------------------------------------------------------------------
    # Arena primitives.
    # ------------------------------------------------------------------

    def _new_symbol(self, value: int) -> int:
        self._value.append(value)
        self._next.append(-1)
        self._prev.append(-1)
        return len(self._value) - 1

    def _new_rule(self) -> int:
        serial = len(self._rule_guard)
        guard = self._new_symbol(-serial - 1)
        self._rule_guard.append(guard)
        self._rule_count.append(0)
        self._next[guard] = guard
        self._prev[guard] = guard
        return serial

    @property
    def n_tokens(self) -> int:
        """Number of tokens fed so far."""
        return self._fed

    # ------------------------------------------------------------------
    # Core Sequitur steps.
    #
    # The oracle's _check/_process_match/_substitute/_cleanup/_join call
    # chain is flattened into _check (light probe) and _match (one
    # straight-line function over local aliases): on the hot path the
    # attribute lookups and method-call frames of the 1:1 transliteration
    # cost more than the algorithm itself. The control flow — including
    # the exact order of digram-table updates, which the output grammar
    # depends on — mirrors the oracle statement for statement; the
    # property suite pins the equivalence.
    # ------------------------------------------------------------------

    def _check(self, symbol: int) -> bool:
        nxt, value = self._next, self._value
        after = nxt[symbol]
        if value[symbol] < 0 or after == -1 or value[after] < 0:
            return False
        key = (value[symbol] << 32) | value[after]
        found = self._digrams.get(key, -1)
        if found == -1:
            self._digrams[key] = symbol
            return False
        if nxt[found] != symbol:
            self._match(symbol, found)
        return True

    def _match(self, new: int, match: int) -> None:
        nxt, prv, value = self._next, self._prev, self._value
        digrams = self._digrams
        rule_guard, rule_count = self._rule_guard, self._rule_count
        match_prev = prv[match]
        if value[match_prev] < 0 and value[nxt[nxt[match]]] < 0:
            # The match is the entire body of an existing rule: reuse it.
            serial = -value[match_prev] - 1
            site = new
            other_site = -1
            first = -1
        else:
            # New rule from clones of the digram (oracle _process_match).
            serial = len(rule_guard)
            guard = len(value)
            value.append(-serial - 1)
            nxt.append(-1)
            prv.append(-1)
            rule_guard.append(guard)
            rule_count.append(0)
            v1 = value[new]
            v2 = value[nxt[new]]
            first = guard + 1
            second = guard + 2
            value.append(v1)
            nxt.append(-1)
            prv.append(-1)
            value.append(v2)
            nxt.append(-1)
            prv.append(-1)
            if v1 & 1:
                rule_count[(v1 - 1) >> 1] += 1
            if v2 & 1:
                rule_count[(v2 - 1) >> 1] += 1
            nxt[guard] = first
            prv[first] = guard
            nxt[first] = second
            prv[second] = first
            nxt[second] = guard
            prv[guard] = second
            site = match
            other_site = new
        while site != -1:
            # ---- oracle _substitute(site, serial) ----------------------
            anchor = prv[site]
            victim = site
            second_victim = nxt[site]
            # _cleanup(victim) for victim in (site, site.next)
            while True:
                v = value[victim]
                if v >= 0:
                    # _join(prev, next) with digram maintenance
                    left, right = prv[victim], nxt[victim]
                    if nxt[left] != -1:
                        lv = value[left]
                        la = nxt[left]
                        if lv >= 0 and la != -1 and value[la] >= 0:
                            k = (lv << 32) | value[la]
                            if digrams.get(k, -1) == left:
                                del digrams[k]
                        rp, rn = prv[right], nxt[right]
                        rv = value[right]
                        if rp != -1 and rn != -1 and rv >= 0 and value[rp] == rv and value[rn] == rv:
                            digrams[(rv << 32) | rv] = right
                        lp, ln = prv[left], nxt[left]
                        lv = value[left]
                        if lp != -1 and ln != -1 and lv >= 0 and value[ln] == lv and value[lp] == lv:
                            digrams[(lv << 32) | lv] = lp
                    nxt[left] = right
                    prv[right] = left
                    # _delete_digram(victim): reads victim's (stale) next
                    va = nxt[victim]
                    if va != -1 and value[va] >= 0:
                        k = (v << 32) | value[va]
                        if digrams.get(k, -1) == victim:
                            del digrams[k]
                    if v & 1:
                        rule_count[(v - 1) >> 1] -= 1
                if victim == second_victim:
                    break
                victim = second_victim
            # _insert_after(anchor, NonTerminal(serial))
            nonterminal = len(value)
            value.append((serial << 1) | 1)
            nxt.append(-1)
            prv.append(-1)
            rule_count[serial] += 1
            after_anchor = nxt[anchor]
            # _join(nonterminal, anchor.next): fresh symbol, plain links.
            nxt[nonterminal] = after_anchor
            prv[after_anchor] = nonterminal
            # _join(anchor, nonterminal): anchor.next was just relinked, so
            # only anchor's own stale digram needs deleting; the triple fix
            # cannot fire (the fresh non-terminal has no prev yet at the
            # oracle's equivalent point, and anchor.next is the fresh one).
            av = value[anchor]
            if av >= 0 and value[after_anchor] >= 0:
                k = (av << 32) | value[after_anchor]
                if digrams.get(k, -1) == anchor:
                    del digrams[k]
            nxt[anchor] = nonterminal
            prv[nonterminal] = anchor
            # if not _check(anchor): _check(anchor.next)
            if not self._check(anchor):
                self._check(nxt[anchor])
            site = other_site
            other_site = -1
        if first != -1:
            digrams[(value[first] << 32) | value[nxt[first]]] = first
        # Rule utility: the replacement may have dropped another rule's
        # reference count to one, in which case it is inlined (_expand).
        first_of_rule = nxt[rule_guard[serial]]
        head = value[first_of_rule]
        if head > 0 and head & 1 and rule_count[(head - 1) >> 1] == 1:
            inner = (head - 1) >> 1
            left = prv[first_of_rule]
            right = nxt[first_of_rule]
            inner_guard = rule_guard[inner]
            inner_first = nxt[inner_guard]
            inner_last = prv[inner_guard]
            # _delete_digram(nonterminal being expanded)
            fa = nxt[first_of_rule]
            if fa != -1 and value[fa] >= 0:
                k = (head << 32) | value[fa]
                if digrams.get(k, -1) == first_of_rule:
                    del digrams[k]
            self._join(left, inner_first)
            self._join(inner_last, right)
            digrams[(value[inner_last] << 32) | value[nxt[inner_last]]] = inner_last
            rule_count[inner] = 0
            nxt[inner_guard] = inner_guard
            prv[inner_guard] = inner_guard

    def _join(self, left: int, right: int) -> None:
        """Oracle ``_join`` (cold path: only rule expansion uses it now)."""
        nxt, prv, value = self._next, self._prev, self._value
        digrams = self._digrams
        if nxt[left] != -1:
            lv = value[left]
            la = nxt[left]
            if lv >= 0 and la != -1 and value[la] >= 0:
                k = (lv << 32) | value[la]
                if digrams.get(k, -1) == left:
                    del digrams[k]
            # Triple-repetition fix: when unlinking inside a run of identical
            # symbols (e.g. ``aaa``) the overlapping digram that becomes
            # primary must be (re-)registered.
            rp, rn = prv[right], nxt[right]
            rv = value[right]
            if rp != -1 and rn != -1 and rv >= 0 and value[rp] == rv and value[rn] == rv:
                digrams[(rv << 32) | rv] = right
            lp, ln = prv[left], nxt[left]
            lv = value[left]
            if lp != -1 and ln != -1 and lv >= 0 and value[ln] == lv and value[lp] == lv:
                digrams[(lv << 32) | lv] = lp
        nxt[left] = right
        prv[right] = left

    # ------------------------------------------------------------------
    # Public builder API.
    # ------------------------------------------------------------------

    def feed(self, token_id: int) -> None:
        """Append one interned token and restore the Sequitur invariants.

        The common case — a fresh digram at the end of R0 — is fully
        inlined: one arena append, two link writes, one dict probe.
        """
        nxt, prv, value = self._next, self._prev, self._value
        encoded = token_id << 1
        value.append(encoded)
        nxt.append(-1)
        prv.append(-1)
        terminal = len(value) - 1
        guard = self._rule_guard[0]
        last = prv[guard]
        # _insert_after(root.last(), terminal): both joins reduce to plain
        # link writes (the fresh terminal has no neighbours yet, and the
        # digram ending at the guard is never registered).
        nxt[terminal] = guard
        prv[guard] = terminal
        nxt[last] = terminal
        prv[terminal] = last
        self._fed += 1
        # _check(terminal.prev), inlined for the no-match fast path.
        last_value = value[last]
        if last_value < 0:
            return
        key = (last_value << 32) | encoded
        digrams = self._digrams
        found = digrams.get(key, -1)
        if found == -1:
            digrams[key] = last
            return
        if nxt[found] != last:
            self._match(last, found)

    def feed_many(self, token_ids: Sequence[int]) -> None:
        """Feed a batch of token ids — the streaming layer's bulk entry.

        The :meth:`feed` fast path is inlined into the loop body with every
        container bound to a local: the common no-match token costs a few
        list appends and one dict probe with no method-call frame at all.
        Only a digram match (and the structural repairs it may cascade
        into) leaves the loop.
        """
        if isinstance(token_ids, np.ndarray):
            # Unbox once: numpy scalars are slower than ints in the arena
            # (and heavier to keep in the value list).
            token_ids = token_ids.tolist()
        nxt, prv, value = self._next, self._prev, self._value
        append_n, append_p, append_v = nxt.append, prv.append, value.append
        digrams = self._digrams
        digram_get = digrams.get
        guard = self._rule_guard[0]
        match = self._match
        fed = self._fed
        for token_id in token_ids:
            encoded = token_id << 1
            append_v(encoded)
            append_n(guard)
            append_p(-1)
            terminal = len(value) - 1
            last = prv[guard]
            prv[guard] = terminal
            nxt[last] = terminal
            prv[terminal] = last
            fed += 1
            last_value = value[last]
            if last_value < 0:
                continue
            key = (last_value << 32) | encoded
            found = digram_get(key, -1)
            if found == -1:
                digrams[key] = last
            elif nxt[found] != last:
                match(last, found)
        self._fed = fed

    def freeze(self, words: Sequence[str]) -> Grammar:
        """Snapshot into an immutable :class:`Grammar`, mapping ids to words.

        ``words[token_id]`` must be the word string of ``token_id`` (the
        interner's vocabulary). Rule numbering matches the oracle exactly:
        1..k in order of first reference during a pre-order walk from R0.
        """
        nxt, value = self._next, self._value
        rule_guard = self._rule_guard
        numbering: dict[int, int] = {}
        ordered: list[int] = []
        stack: list[int] = [nxt[rule_guard[0]]]
        while stack:
            symbol = stack.pop()
            while value[symbol] >= 0:
                v = value[symbol]
                if v & 1:
                    serial = (v - 1) >> 1
                    if serial not in numbering:
                        numbering[serial] = len(ordered) + 1
                        ordered.append(serial)
                        stack.append(nxt[symbol])
                        symbol = nxt[rule_guard[serial]]
                        continue
                symbol = nxt[symbol]

        def _rhs(serial: int) -> tuple[str | int, ...]:
            body: list[str | int] = []
            symbol = nxt[rule_guard[serial]]
            while value[symbol] >= 0:
                v = value[symbol]
                if v & 1:
                    body.append(numbering[(v - 1) >> 1])
                else:
                    body.append(words[v >> 1])
                symbol = nxt[symbol]
            return tuple(body)

        grammar_rules = [GrammarRule(0, _rhs(0))]
        grammar_rules.extend(
            GrammarRule(position + 1, _rhs(serial))
            for position, serial in enumerate(ordered)
        )
        return Grammar(tuple(grammar_rules))

    def _expanded_lengths(self) -> list[int]:
        """Terminal count each live rule expands to, indexed by serial.

        Iterative post-order; dead (expanded-away) serials stay at ``-1``.
        """
        nxt, value = self._next, self._value
        rule_guard = self._rule_guard
        lengths = [-1] * len(rule_guard)
        stack = [0]
        while stack:
            serial = stack[-1]
            if lengths[serial] >= 0:
                stack.pop()
                continue
            pending: list[int] = []
            symbol = nxt[rule_guard[serial]]
            while value[symbol] >= 0:
                v = value[symbol]
                if v & 1:
                    ref = (v - 1) >> 1
                    if lengths[ref] < 0:
                        pending.append(ref)
                symbol = nxt[symbol]
            if pending:
                stack.extend(pending)
                continue
            total = 0
            symbol = nxt[rule_guard[serial]]
            while value[symbol] >= 0:
                v = value[symbol]
                total += lengths[(v - 1) >> 1] if v & 1 else 1
                symbol = nxt[symbol]
            lengths[serial] = total
            stack.pop()
        return lengths

    def occurrence_spans(self) -> tuple[np.ndarray, np.ndarray]:
        """Token spans of every rule occurrence except R0, as two arrays.

        The fused-density entry point: an in-order walk of R0's parse tree
        emitting ``(first_token, last_token)`` per non-terminal node —
        exactly the spans of ``Grammar.rule_occurrences()`` (same walk
        order) without materializing a Grammar, occurrence objects, or
        per-occurrence tuples.
        """
        nxt, value = self._next, self._value
        rule_guard = self._rule_guard
        lengths = self._expanded_lengths()
        firsts: list[int] = []
        lasts: list[int] = []
        append_first = firsts.append
        append_last = lasts.append
        position = 0
        stack: list[int] = []
        push = stack.append
        symbol = nxt[rule_guard[0]]
        while True:
            v = value[symbol]
            if v < 0:
                if not stack:
                    break
                symbol = stack.pop()
                continue
            if v & 1:
                serial = (v - 1) >> 1
                append_first(position)
                append_last(position + lengths[serial] - 1)
                push(nxt[symbol])
                symbol = nxt[rule_guard[serial]]
            else:
                position += 1
                symbol = nxt[symbol]
        return (
            np.asarray(firsts, dtype=np.int64),
            np.asarray(lasts, dtype=np.int64),
        )

    def memory_bytes(self) -> int:
        """O(1) estimate of the arena's retained bytes.

        Three Python-int lists plus the digram table; used by the streaming
        layer's session memory accounting.
        """
        slots = len(self._value)
        return slots * (3 * 8 + 3 * 28) + len(self._digrams) * 100


__all__ = [
    "DEFAULT_KERNEL",
    "FastSequitur",
    "KERNELS",
    "KERNEL_ENV",
    "current_kernel",
    "make_builder",
    "set_kernel",
    "use_kernel",
]
