"""Frozen grammar produced by Sequitur: rules, expansions, occurrences.

A :class:`Grammar` is the immutable result of :func:`repro.grammar.sequitur.
induce_grammar`. Rule right-hand sides mix two element types:

- ``str`` — a terminal (a SAX word);
- ``int`` — a reference to ``rules[i]`` (a non-terminal), always ``>= 1``.

``rules[0]`` is R0, the compressed token sequence; by the rule-utility
invariant every other rule is referenced at least twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Grammar", "GrammarRule", "RuleOccurrence"]


@dataclass(frozen=True)
class GrammarRule:
    """One grammar rule: ``R<index> -> rhs``."""

    index: int
    rhs: tuple[str | int, ...]

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"rule index must be non-negative, got {self.index}")
        for element in self.rhs:
            if isinstance(element, int) and element < 1:
                raise ValueError(f"rule references must be >= 1, got {element}")

    def references(self) -> Iterator[int]:
        """Indices of the rules this rule's body references."""
        for element in self.rhs:
            if isinstance(element, int):
                yield element

    def __str__(self) -> str:
        body = " ".join(f"R{e}" if isinstance(e, int) else e for e in self.rhs)
        return f"R{self.index} -> {body}"


@dataclass(frozen=True)
class RuleOccurrence:
    """One occurrence of a rule in the expanded token sequence.

    ``first_token``/``last_token`` are inclusive indices into the
    (numerosity-reduced) token sequence the grammar was induced from.
    Nested occurrences (a rule used inside another rule's expansion) are
    enumerated too, matching GrammarViz's rule-density accounting.
    """

    rule_index: int
    first_token: int
    last_token: int

    def __post_init__(self) -> None:
        if self.first_token > self.last_token:
            raise ValueError(
                f"occurrence spans [{self.first_token}, {self.last_token}] — empty"
            )

    @property
    def token_length(self) -> int:
        return self.last_token - self.first_token + 1


class Grammar:
    """An immutable context-free grammar over SAX-word terminals.

    Parameters
    ----------
    rules:
        ``rules[0]`` is R0; every ``int`` element of a rule body indexes into
        this tuple.
    """

    def __init__(self, rules: tuple[GrammarRule, ...]) -> None:
        if not rules:
            raise ValueError("a grammar needs at least R0")
        for position, rule in enumerate(rules):
            if rule.index != position:
                raise ValueError(
                    f"rules must be stored in index order; rules[{position}] "
                    f"has index {rule.index}"
                )
            for reference in rule.references():
                if reference >= len(rules):
                    raise ValueError(
                        f"R{rule.index} references undefined rule R{reference}"
                    )
        self.rules = rules
        self._expanded_lengths: list[int] | None = None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def n_rules(self) -> int:
        """Number of rules including R0."""
        return len(self.rules)

    def grammar_size(self) -> int:
        """Description-length proxy: total RHS symbols plus one per rule.

        Used by the GI-Select baseline as the MDL criterion — smaller means
        the discretization exposed more structure to compress.
        """
        return sum(len(rule.rhs) + 1 for rule in self.rules)

    def rule_refcounts(self) -> list[int]:
        """Number of references to each rule across all rule bodies.

        ``refcounts[0]`` is always 0 (nothing references R0); by Sequitur's
        rule-utility invariant every other rule has refcount >= 2. The
        streaming eviction layer uses these counts to account for rules
        retired when a grammar generation is dropped wholesale.
        """
        counts = [0] * len(self.rules)
        for rule in self.rules:
            for reference in rule.references():
                counts[reference] += 1
        return counts

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grammar):
            return NotImplemented
        return self.rules == other.rules

    def __hash__(self) -> int:
        return hash(self.rules)

    # ------------------------------------------------------------------
    # Expansion.
    # ------------------------------------------------------------------

    def expanded_lengths(self) -> list[int]:
        """Number of terminals each rule expands to (memoized, iterative)."""
        if self._expanded_lengths is not None:
            return self._expanded_lengths
        lengths: list[int | None] = [None] * len(self.rules)

        for start in range(len(self.rules) - 1, -1, -1):
            if lengths[start] is not None:
                continue
            # Iterative post-order over the rule DAG.
            stack: list[int] = [start]
            while stack:
                index = stack[-1]
                if lengths[index] is not None:
                    stack.pop()
                    continue
                pending = [
                    ref for ref in self.rules[index].references() if lengths[ref] is None
                ]
                if pending:
                    stack.extend(pending)
                    continue
                total = 0
                for element in self.rules[index].rhs:
                    if isinstance(element, int):
                        total += lengths[element]  # type: ignore[operator]
                    else:
                        total += 1
                lengths[index] = total
                stack.pop()
        self._expanded_lengths = [int(length) for length in lengths]  # type: ignore[arg-type]
        return self._expanded_lengths

    def expand(self, rule_index: int = 0) -> list[str]:
        """Fully expand a rule into its terminal sequence (iterative)."""
        if not 0 <= rule_index < len(self.rules):
            raise IndexError(f"rule index {rule_index} out of range")
        terminals: list[str] = []
        stack: list[str | int] = list(reversed(self.rules[rule_index].rhs))
        while stack:
            element = stack.pop()
            if isinstance(element, int):
                stack.extend(reversed(self.rules[element].rhs))
            else:
                terminals.append(element)
        return terminals

    # ------------------------------------------------------------------
    # Occurrence enumeration (feeds the rule density curve).
    # ------------------------------------------------------------------

    def rule_occurrences(self) -> list[RuleOccurrence]:
        """Every occurrence of every rule except R0, nested ones included.

        A full in-order walk of R0's parse tree: the k-th terminal visited
        corresponds to token k of the induced sequence, and each non-terminal
        node contributes one :class:`RuleOccurrence` spanning the tokens of
        its subtree. Runs in O(parse-tree size) = O(#tokens).
        """
        lengths = self.expanded_lengths()
        occurrences: list[RuleOccurrence] = []
        position = 0
        # Stack of (rule_index, next_element_position) frames.
        stack: list[tuple[int, int]] = [(0, 0)]
        while stack:
            rule_index, cursor = stack.pop()
            rhs = self.rules[rule_index].rhs
            while cursor < len(rhs):
                element = rhs[cursor]
                cursor += 1
                if isinstance(element, int):
                    occurrences.append(
                        RuleOccurrence(element, position, position + lengths[element] - 1)
                    )
                    stack.append((rule_index, cursor))
                    rule_index, cursor, rhs = element, 0, self.rules[element].rhs
                else:
                    position += 1
        return occurrences

    def occurrence_spans(self) -> tuple[np.ndarray, np.ndarray]:
        """Token spans of :meth:`rule_occurrences` as two int64 arrays.

        Same walk, same spans — but no :class:`RuleOccurrence` objects, so
        the density layer can map every span to a time-series interval with
        two vectorized gathers instead of a per-occurrence Python loop.
        Returns ``(firsts, lasts)``, inclusive token indices.
        """
        lengths = self.expanded_lengths()
        firsts: list[int] = []
        lasts: list[int] = []
        position = 0
        stack: list[tuple[int, int]] = [(0, 0)]
        while stack:
            rule_index, cursor = stack.pop()
            rhs = self.rules[rule_index].rhs
            while cursor < len(rhs):
                element = rhs[cursor]
                cursor += 1
                if isinstance(element, int):
                    firsts.append(position)
                    lasts.append(position + lengths[element] - 1)
                    stack.append((rule_index, cursor))
                    rule_index, cursor, rhs = element, 0, self.rules[element].rhs
                else:
                    position += 1
        return (
            np.asarray(firsts, dtype=np.int64),
            np.asarray(lasts, dtype=np.int64),
        )
