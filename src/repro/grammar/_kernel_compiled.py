"""Numba-jitted Sequitur kernel (``REPRO_KERNEL=compiled``).

Import-guarded: importing this module requires numba. The seam
(:func:`repro.grammar._kernel.make_builder`) catches the ImportError and
re-raises with an install hint, the same pattern as the optional Dask
executor; the kernel-equivalence tests skip themselves when numba is
missing, and run the compiled kernel through the exact same oracle
comparisons when it is present.

The state layout is the :class:`~repro.grammar._kernel.FastSequitur` arena
with numpy storage: ``next``/``prev``/``value`` int64 arrays, rule guard
and refcount arrays indexed by serial, and a ``numba.typed.Dict`` digram
table. The jitted code is a line-for-line port of the pure-Python kernel:
``_check_at`` inlines the oracle's ``_check``/``_process_match``/
``_substitute`` chain into one *self-recursive* function (numba supports
self- but not mutual recursion), so the depth-first cascade order — which
the frozen grammar depends on — is identical to the reference. Arena
growth happens between batches in Python: capacity is sized to
``8 * tokens + 1024`` slots, far above Sequitur's linear-in-n allocation
bound, and the jitted code raises rather than write past the end.
:class:`CompiledSequitur` subclasses ``FastSequitur`` so the cold paths —
``freeze``, ``occurrence_spans`` — are inherited (they only read the
arena) and only the feed hot loop is compiled.
"""

from __future__ import annotations

import numpy as np
from numba import int64, njit
from numba.typed import Dict

from repro.grammar._kernel import FastSequitur

#: state[] slot indices for the scalar registers shared with the jit code.
_N_SYMBOLS = 0
_N_RULES = 1
_FED = 2


@njit(cache=True)
def _delete_digram(nxt, val, digrams, symbol):  # pragma: no cover - requires numba
    after = nxt[symbol]
    if val[symbol] < 0 or after == -1 or val[after] < 0:
        return
    key = (val[symbol] << 32) | val[after]
    if digrams.get(key, int64(-1)) == symbol:
        del digrams[key]


@njit(cache=True)
def _join(nxt, prv, val, digrams, left, right):  # pragma: no cover - requires numba
    if nxt[left] != -1:
        _delete_digram(nxt, val, digrams, left)
        rp, rn = prv[right], nxt[right]
        rv = val[right]
        if rp != -1 and rn != -1 and rv >= 0 and val[rp] == rv and val[rn] == rv:
            digrams[(rv << 32) | rv] = right
        lp, ln = prv[left], nxt[left]
        lv = val[left]
        if lp != -1 and ln != -1 and lv >= 0 and val[ln] == lv and val[lp] == lv:
            digrams[(lv << 32) | lv] = lp
    nxt[left] = right
    prv[right] = left


@njit(cache=True)
def _check_at(symbol, state, nxt, prv, val, rule_guard, rule_count, digrams):  # pragma: no cover - requires numba
    """Oracle ``_check`` with ``_process_match``/``_substitute`` inlined.

    Returns True when the digram at ``symbol`` matched an existing
    occurrence. Recursive calls mirror the oracle's
    ``if not check(anchor): check(anchor.next)`` exactly.
    """
    after = nxt[symbol]
    if val[symbol] < 0 or after == -1 or val[after] < 0:
        return False
    key = (val[symbol] << 32) | val[after]
    found = digrams.get(key, int64(-1))
    if found == -1:
        digrams[key] = symbol
        return False
    if nxt[found] == symbol:
        return True

    # ---- _process_match(new=symbol, match=found) ----------------------
    new = symbol
    match = found
    match_prev = prv[match]
    match_next_next = nxt[nxt[match]]
    first_clone = int64(-1)
    if val[match_prev] < 0 and val[match_next_next] < 0:
        # The match is the entire body of an existing rule: reuse it.
        serial = -val[match_prev] - 1
        new_rule = False
    else:
        n_symbols = state[_N_SYMBOLS]
        n_rules = state[_N_RULES]
        if n_symbols + 3 > val.shape[0] or n_rules + 1 > rule_guard.shape[0]:
            raise RuntimeError("compiled Sequitur arena overflow")
        serial = n_rules
        guard = n_symbols
        val[guard] = -serial - 1
        nxt[guard] = -1
        prv[guard] = -1
        rule_guard[serial] = guard
        rule_count[serial] = 0
        first_clone = n_symbols + 1
        val[first_clone] = val[new]
        second = n_symbols + 2
        val[second] = val[nxt[new]]
        state[_N_SYMBOLS] = n_symbols + 3
        state[_N_RULES] = n_rules + 1
        if val[first_clone] & 1:
            rule_count[(val[first_clone] - 1) >> 1] += 1
        if val[second] & 1:
            rule_count[(val[second] - 1) >> 1] += 1
        nxt[guard] = first_clone
        prv[first_clone] = guard
        nxt[first_clone] = second
        prv[second] = first_clone
        nxt[second] = guard
        prv[guard] = second
        new_rule = True

    # ---- substitutions, in oracle order --------------------------------
    n_sites = 2 if new_rule else 1
    for site_index in range(n_sites):
        site = match if (new_rule and site_index == 0) else new
        anchor = prv[site]
        # _cleanup(site); _cleanup(site.next)
        second_victim = nxt[site]
        for victim_index in range(2):
            victim = site if victim_index == 0 else second_victim
            v = val[victim]
            if v < 0:
                continue
            _join(nxt, prv, val, digrams, prv[victim], nxt[victim])
            _delete_digram(nxt, val, digrams, victim)
            if v & 1:
                rule_count[(v - 1) >> 1] -= 1
        n_symbols = state[_N_SYMBOLS]
        if n_symbols + 1 > val.shape[0]:
            raise RuntimeError("compiled Sequitur arena overflow")
        nonterminal = n_symbols
        val[nonterminal] = (serial << 1) | 1
        nxt[nonterminal] = -1
        prv[nonterminal] = -1
        state[_N_SYMBOLS] = n_symbols + 1
        rule_count[serial] += 1
        _join(nxt, prv, val, digrams, nonterminal, nxt[anchor])
        _join(nxt, prv, val, digrams, anchor, nonterminal)
        if not _check_at(anchor, state, nxt, prv, val, rule_guard, rule_count, digrams):
            _check_at(nxt[anchor], state, nxt, prv, val, rule_guard, rule_count, digrams)

    if new_rule:
        digrams[(val[first_clone] << 32) | val[nxt[first_clone]]] = first_clone

    # ---- rule utility: inline a once-referenced rule heading this one --
    first_of_rule = nxt[rule_guard[serial]]
    head = val[first_of_rule]
    if head > 0 and head & 1 and rule_count[(head - 1) >> 1] == 1:
        inner = (head - 1) >> 1
        left = prv[first_of_rule]
        right = nxt[first_of_rule]
        inner_guard = rule_guard[inner]
        inner_first = nxt[inner_guard]
        inner_last = prv[inner_guard]
        _delete_digram(nxt, val, digrams, first_of_rule)
        _join(nxt, prv, val, digrams, left, inner_first)
        _join(nxt, prv, val, digrams, inner_last, right)
        digrams[(val[inner_last] << 32) | val[nxt[inner_last]]] = inner_last
        rule_count[inner] = 0
        nxt[inner_guard] = inner_guard
        prv[inner_guard] = inner_guard
    return True


@njit(cache=True)
def _feed_batch(tokens, state, nxt, prv, val, rule_guard, rule_count, digrams):  # pragma: no cover - requires numba
    for t in range(tokens.shape[0]):
        n_symbols = state[_N_SYMBOLS]
        if n_symbols + 1 > val.shape[0]:
            raise RuntimeError("compiled Sequitur arena overflow")
        encoded = tokens[t] << 1
        terminal = n_symbols
        val[terminal] = encoded
        state[_N_SYMBOLS] = n_symbols + 1
        guard0 = rule_guard[0]
        last = prv[guard0]
        nxt[terminal] = guard0
        prv[guard0] = terminal
        nxt[last] = terminal
        prv[terminal] = last
        state[_FED] += 1
        _check_at(last, state, nxt, prv, val, rule_guard, rule_count, digrams)


class CompiledSequitur(FastSequitur):
    """FastSequitur with the feed loop compiled by numba.

    Cold paths (``freeze``, ``occurrence_spans``) are inherited — they only
    read the arena, which numpy storage serves identically. Equivalence
    with the oracle is enforced by the same property tests as the fast
    kernel, run whenever numba is importable.
    """

    __slots__ = ("_state",)

    _INITIAL = 4096

    def __init__(self) -> None:
        self._next = np.full(self._INITIAL, -1, dtype=np.int64)
        self._prev = np.full(self._INITIAL, -1, dtype=np.int64)
        self._value = np.zeros(self._INITIAL, dtype=np.int64)
        self._rule_guard = np.zeros(self._INITIAL // 8, dtype=np.int64)
        self._rule_count = np.zeros(self._INITIAL // 8, dtype=np.int64)
        self._digrams = Dict.empty(key_type=int64, value_type=int64)
        self._state = np.zeros(4, dtype=np.int64)
        # serial 0 = R0, created here so the jit loop never sees an empty arena.
        self._value[0] = -1
        self._next[0] = 0
        self._prev[0] = 0
        self._state[_N_SYMBOLS] = 1
        self._state[_N_RULES] = 1

    @property
    def n_tokens(self) -> int:
        return int(self._state[_FED])

    def _grow(self, incoming: int) -> None:
        needed = int(self._state[_N_SYMBOLS]) + 8 * incoming + 1024
        if needed > len(self._value):
            capacity = max(needed, 2 * len(self._value))
            for name in ("_next", "_prev", "_value"):
                old = getattr(self, name)
                grown = np.full(capacity, -1, dtype=np.int64)
                grown[: len(old)] = old
                setattr(self, name, grown)
        rules_needed = int(self._state[_N_RULES]) + incoming + 64
        if rules_needed > len(self._rule_guard):
            capacity = max(rules_needed, 2 * len(self._rule_guard))
            for name in ("_rule_guard", "_rule_count"):
                old = getattr(self, name)
                grown = np.zeros(capacity, dtype=np.int64)
                grown[: len(old)] = old
                setattr(self, name, grown)

    def feed(self, token_id: int) -> None:
        self.feed_many(np.asarray([token_id], dtype=np.int64))

    def feed_many(self, token_ids) -> None:
        tokens = np.asarray(token_ids, dtype=np.int64)
        if tokens.size == 0:
            return
        self._grow(len(tokens))
        _feed_batch(
            tokens,
            self._state,
            self._next,
            self._prev,
            self._value,
            self._rule_guard,
            self._rule_count,
            self._digrams,
        )

    def memory_bytes(self) -> int:
        return int(
            self._next.nbytes
            + self._prev.nbytes
            + self._value.nbytes
            + self._rule_guard.nbytes
            + self._rule_count.nbytes
            + len(self._digrams) * 32
        )


__all__ = ["CompiledSequitur"]
