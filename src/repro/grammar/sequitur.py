"""Sequitur grammar induction (Nevill-Manning & Witten 1997; paper Section 5.1).

Sequitur reads a token sequence left to right and maintains two invariants:

- **Digram uniqueness** — no pair of adjacent symbols occurs more than once
  in the grammar; a repeated digram is replaced by a (possibly new)
  non-terminal.
- **Rule utility** — every rule is referenced at least twice; a rule whose
  reference count drops to one is inlined and deleted.

The implementation follows the canonical linked-list design from the
reference implementation: each rule body is a circular doubly-linked list
anchored by a *guard* symbol, and a hash table maps digram keys to their
single current occurrence. Amortized cost is O(1) per input token.

The builder (:class:`_SequiturBuilder`) is internal; the public entry points
are :func:`induce_grammar`, which returns a frozen
:class:`repro.grammar.rules.Grammar`, and :class:`GenerationalSequitur`,
the generation-segmented variant whose old generations can be retired
wholesale (the streaming eviction layer's grammar forgetting).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.grammar import _kernel
from repro.grammar.rules import Grammar, GrammarRule

#: Type of a digram-table key: a pair of per-symbol keys (see ``_Symbol.key``).
_DigramKey = tuple[object, object]


class _Rule:
    """A grammar rule under construction: circular list body + refcount."""

    __slots__ = ("guard", "count", "serial")

    def __init__(self, serial: int) -> None:
        self.serial = serial
        self.count = 0
        self.guard = _Guard(self)
        self.guard.next = self.guard
        self.guard.prev = self.guard

    def first(self) -> "_Symbol":
        return self.guard.next

    def last(self) -> "_Symbol":
        return self.guard.prev


class _Symbol:
    """Base node of a rule body's doubly-linked list."""

    __slots__ = ("prev", "next")

    is_guard = False
    is_nonterminal = False

    def __init__(self) -> None:
        self.prev: _Symbol | None = None
        self.next: _Symbol | None = None

    @property
    def key(self) -> object:
        raise NotImplementedError

    def clone(self) -> "_Symbol":
        raise NotImplementedError


class _Terminal(_Symbol):
    __slots__ = ("word",)

    def __init__(self, word: str) -> None:
        super().__init__()
        self.word = word

    @property
    def key(self) -> object:
        return self.word

    def clone(self) -> "_Terminal":
        return _Terminal(self.word)


class _NonTerminal(_Symbol):
    __slots__ = ("rule",)

    is_nonterminal = True

    def __init__(self, rule: _Rule) -> None:
        super().__init__()
        self.rule = rule
        rule.count += 1

    @property
    def key(self) -> object:
        # Rules are identified by serial number; serials are never reused,
        # so stale digram-table entries for deleted rules can never collide.
        return self.rule.serial

    def clone(self) -> "_NonTerminal":
        return _NonTerminal(self.rule)


class _Guard(_Symbol):
    __slots__ = ("rule",)

    is_guard = True

    def __init__(self, rule: _Rule) -> None:
        super().__init__()
        self.rule = rule

    @property
    def key(self) -> object:
        # A guard participates in no digram; a unique key guarantees that.
        return self

    def clone(self) -> "_Symbol":
        raise TypeError("guards are never cloned")


class _SequiturBuilder:
    """Incremental Sequitur: feed tokens, then freeze into a Grammar."""

    def __init__(self) -> None:
        self._digrams: dict[_DigramKey, _Symbol] = {}
        self._serial = 0
        self.root = self._new_rule()

    def _new_rule(self) -> _Rule:
        rule = _Rule(self._serial)
        self._serial += 1
        return rule

    # ------------------------------------------------------------------
    # Linked-list primitives (ports of the reference implementation).
    # ------------------------------------------------------------------

    def _digram_key(self, symbol: _Symbol) -> _DigramKey:
        return (symbol.key, symbol.next.key)

    def _delete_digram(self, symbol: _Symbol) -> None:
        """Drop the digram starting at ``symbol`` from the table, if it owns it."""
        if symbol.is_guard or symbol.next is None or symbol.next.is_guard:
            return
        key = self._digram_key(symbol)
        if self._digrams.get(key) is symbol:
            del self._digrams[key]

    def _join(self, left: _Symbol, right: _Symbol) -> None:
        """Link ``left -> right``, maintaining the digram table.

        Includes the triple-repetition fix from the reference implementation:
        when unlinking inside a run of identical symbols (e.g. ``aaa``), the
        overlapping digram that becomes primary must be (re-)registered.
        """
        if left.next is not None:
            self._delete_digram(left)
            if (
                right.prev is not None
                and right.next is not None
                and not right.is_guard
                and not right.prev.is_guard
                and not right.next.is_guard
                and right.key == right.prev.key
                and right.key == right.next.key
            ):
                self._digrams[self._digram_key(right)] = right
            if (
                left.prev is not None
                and left.next is not None
                and not left.is_guard
                and not left.prev.is_guard
                and not left.next.is_guard
                and left.key == left.next.key
                and left.key == left.prev.key
            ):
                self._digrams[self._digram_key(left.prev)] = left.prev
        left.next = right
        right.prev = left

    def _insert_after(self, anchor: _Symbol, new: _Symbol) -> None:
        self._join(new, anchor.next)
        self._join(anchor, new)

    def _cleanup(self, symbol: _Symbol) -> None:
        """Unlink ``symbol`` from its rule body, updating table and refcounts."""
        if symbol.is_guard:
            return
        self._join(symbol.prev, symbol.next)
        self._delete_digram(symbol)
        if symbol.is_nonterminal:
            symbol.rule.count -= 1

    # ------------------------------------------------------------------
    # Core Sequitur steps.
    # ------------------------------------------------------------------

    def _check(self, symbol: _Symbol) -> bool:
        """Enforce digram uniqueness for the digram starting at ``symbol``.

        Returns True when the digram matched an existing occurrence (whether
        or not a replacement happened — overlapping matches are skipped, as
        in the reference implementation).
        """
        if symbol.is_guard or symbol.next is None or symbol.next.is_guard:
            return False
        key = self._digram_key(symbol)
        found = self._digrams.get(key)
        if found is None:
            self._digrams[key] = symbol
            return False
        if found.next is not symbol:
            self._process_match(symbol, found)
        return True

    def _process_match(self, new: _Symbol, match: _Symbol) -> None:
        """Replace both occurrences of a repeated digram by a non-terminal."""
        if match.prev.is_guard and match.next.next.is_guard:
            # The matching occurrence is the entire body of an existing rule:
            # reuse that rule instead of creating a new one.
            rule = match.prev.rule
            self._substitute(new, rule)
        else:
            rule = self._new_rule()
            first = new.clone()
            second = new.next.clone()
            rule.guard.next = first
            first.prev = rule.guard
            first.next = second
            second.prev = first
            second.next = rule.guard
            rule.guard.prev = second
            self._substitute(match, rule)
            self._substitute(new, rule)
            self._digrams[self._digram_key(first)] = first
        # Rule utility: the replacement may have dropped another rule's
        # reference count to one, in which case it is inlined.
        first_of_rule = rule.first()
        if first_of_rule.is_nonterminal and first_of_rule.rule.count == 1:
            self._expand(first_of_rule)

    def _substitute(self, symbol: _Symbol, rule: _Rule) -> None:
        """Replace the digram starting at ``symbol`` with ``NonTerminal(rule)``."""
        anchor = symbol.prev
        self._cleanup(symbol)
        self._cleanup(symbol.next)
        self._insert_after(anchor, _NonTerminal(rule))
        if not self._check(anchor):
            self._check(anchor.next)

    def _expand(self, nonterminal: _NonTerminal) -> None:
        """Inline a once-referenced rule at its sole remaining use site."""
        rule = nonterminal.rule
        left = nonterminal.prev
        right = nonterminal.next
        first = rule.first()
        last = rule.last()
        # Remove the table entries owned by the disappearing digrams around
        # the non-terminal before relinking.
        self._delete_digram(nonterminal)
        self._join(left, first)
        self._join(last, right)
        self._digrams[self._digram_key(last)] = last
        rule.count = 0
        rule.guard.next = rule.guard
        rule.guard.prev = rule.guard

    # ------------------------------------------------------------------
    # Public builder API.
    # ------------------------------------------------------------------

    def feed(self, word: str) -> None:
        """Append one token to the sequence and restore the invariants."""
        terminal = _Terminal(word)
        self._insert_after(self.root.last(), terminal)
        self._check(terminal.prev)

    def freeze(self) -> Grammar:
        """Snapshot the builder into an immutable :class:`Grammar`.

        Rules are renumbered 1..k in the order of first reference during a
        pre-order walk from R0, so output numbering is deterministic and
        deleted rules leave no gaps.
        """
        numbering: dict[int, int] = {}
        ordered_rules: list[_Rule] = []
        # Pre-order walk with an explicit stack: deep grammars must not hit
        # the interpreter recursion limit.
        stack: list[_Symbol] = [self.root.first()]
        while stack:
            symbol = stack.pop()
            while not symbol.is_guard:
                if symbol.is_nonterminal and symbol.rule.serial not in numbering:
                    numbering[symbol.rule.serial] = len(ordered_rules) + 1
                    ordered_rules.append(symbol.rule)
                    stack.append(symbol.next)
                    symbol = symbol.rule.first()
                    continue
                symbol = symbol.next

        def _rhs(rule: _Rule) -> tuple[str | int, ...]:
            body: list[str | int] = []
            symbol = rule.first()
            while not symbol.is_guard:
                if symbol.is_nonterminal:
                    body.append(numbering[symbol.rule.serial])
                else:
                    body.append(symbol.word)
                symbol = symbol.next
            return tuple(body)

        grammar_rules = [GrammarRule(0, _rhs(self.root))]
        grammar_rules.extend(
            GrammarRule(index + 1, _rhs(rule)) for index, rule in enumerate(ordered_rules)
        )
        return Grammar(tuple(grammar_rules))


class GenerationalSequitur:
    """Generation-segmented Sequitur with wholesale rule retirement.

    The streaming eviction layer's grammar-forgetting backend for the
    ``"decay"`` policy: tokens are routed by their window offset into fixed
    ``generation_size``-point generations, each owning an independent
    Sequitur builder. A generation is *sealed* (frozen into an immutable
    :class:`~repro.grammar.rules.Grammar`, its builder discarded) as soon as
    the first token of the next generation arrives, and
    :meth:`drop_before` retires whole sealed generations once the eviction
    horizon passes them — their rules are reference-counted into the
    retirement stats and forgotten wholesale, which is what keeps a live
    grammar's memory proportional to the horizon instead of the stream.

    The relaxation relative to a single grammar over the same tokens: rules
    never span a generation boundary, so repeated structure crossing a
    boundary is not compressed (and contributes less rule density there).
    The sliding policy avoids this by re-inducing over the live tokens
    instead; see :mod:`repro.core.streaming`.

    Each generation's builder comes from the active grammar kernel (see
    :mod:`repro.grammar._kernel`): id-based kernels intern words internally
    (:meth:`feed`) or accept pre-interned ids against a caller-owned
    vocabulary (:meth:`feed_id`, the streaming layer's path). Sealing a
    generation always frees the builder arena — only the frozen
    :class:`Grammar` (plain word strings, no token-array references) is
    retained, which :meth:`memory_bytes` makes observable.
    """

    def __init__(
        self,
        generation_size: int,
        *,
        kernel: str | None = None,
        vocabulary: Sequence[str] | None = None,
    ) -> None:
        generation_size = int(generation_size)
        if generation_size < 1:
            raise ValueError(f"generation_size must be positive, got {generation_size}")
        self.generation_size = generation_size
        #: Kernel every generation builder is created from, pinned at
        #: construction so a mid-stream env change cannot mix kernels.
        self.kernel = _kernel.current_kernel() if kernel is None else kernel
        if self.kernel not in _kernel.KERNELS:
            raise ValueError(f"unknown grammar kernel {self.kernel!r}")
        #: Caller-owned vocabulary for :meth:`feed_id` (``vocabulary[id]`` is
        #: the word of token id ``id``; it may keep growing between calls).
        self._vocabulary = vocabulary
        #: Internal interner backing :meth:`feed` under id-based kernels.
        self._own_vocabulary: list[str] = []
        self._own_ids: dict[str, int] = {}
        #: Sealed generations: ``{generation_index: (grammar, token_count)}``.
        self._sealed: dict[int, tuple[Grammar, int]] = {}
        #: Sealed generations' occurrence spans, extracted once at seal time
        #: (id kernels only) — what makes decay polls amortized: a sealed
        #: grammar never changes, so its spans never need re-walking.
        self._sealed_spans: dict[int, tuple] = {}
        self._current_index: int | None = None
        self._current_builder = None
        self._current_count = 0
        #: Snapshot caches of the (still growing) current generation.
        self._current_frozen: tuple[int, Grammar] | None = None
        self._current_spans: tuple[int, tuple] | None = None
        self.retired_generations = 0
        self.retired_tokens = 0
        #: Rules (excluding R0) dropped wholesale with their generation.
        self.retired_rules = 0
        #: Total rule references those retired rules had (each >= 2 by the
        #: rule-utility invariant; see :meth:`Grammar.rule_refcounts`).
        self.retired_rule_refs = 0

    @classmethod
    def replay(
        cls,
        tokens: Iterable[tuple[int, int]],
        *,
        generation_size: int,
        kernel: str | None = None,
        vocabulary: Sequence[str] | None = None,
    ) -> "GenerationalSequitur":
        """Rebuild generation-segmented grammar state from live tokens.

        The session-snapshot restore path: ``tokens`` is the live
        ``(token_id, offset)`` stream (offsets non-decreasing, ids against
        ``vocabulary``). Generation routing is a pure function of the
        offsets (``offset // generation_size``) and each generation's
        grammar a pure function of its token ids, so replaying the live
        tokens reconstructs every live generation bitwise — sealed ones
        re-seal at the same boundaries, and the newest keeps growing.
        Retirement statistics are *not* live state and restart at zero.
        """
        instance = cls(generation_size, kernel=kernel, vocabulary=vocabulary)
        feed_id = instance.feed_id
        for token_id, offset in tokens:
            feed_id(token_id, offset)
        return instance

    def generation_of(self, offset: int) -> int:
        """Generation index owning the window offset ``offset``."""
        return int(offset) // self.generation_size

    def _freeze_current(self) -> Grammar:
        if self.kernel == "python":
            return self._current_builder.freeze()
        vocabulary = self._vocabulary if self._vocabulary is not None else self._own_vocabulary
        return self._current_builder.freeze(vocabulary)

    def _seal_current(self) -> None:
        if self._current_builder is None:
            return
        # The frozen Grammar holds word strings only; dropping the builder
        # here releases the generation's symbol arena and digram table —
        # sealed generations must not pin retired token storage.
        self._sealed[self._current_index] = (
            self._freeze_current(),
            self._current_count,
        )
        if self.kernel != "python":
            # Spans are two small int arrays per generation — kept so decay
            # polls never re-walk a sealed grammar (see live_spans).
            self._sealed_spans[self._current_index] = (
                self._current_builder.occurrence_spans()
            )
        self._current_builder = None
        self._current_frozen = None
        self._current_spans = None
        self._current_count = 0

    def _route(self, offset: int) -> None:
        index = self.generation_of(offset)
        if self._current_index is not None and index < self._current_index:
            raise ValueError(
                f"token offsets must be non-decreasing: generation {index} "
                f"after generation {self._current_index}"
            )
        if index != self._current_index:
            self._seal_current()
            self._current_index = index
        if self._current_builder is None:
            if self.kernel == "python":
                self._current_builder = _SequiturBuilder()
            else:
                self._current_builder = _kernel.make_builder(self.kernel)

    def feed(self, word: str, offset: int) -> None:
        """Route one token (with its window offset) to its generation.

        Offsets must be fed in increasing order — they are window start
        positions of a numerosity-reduced stream, which is naturally
        monotone.
        """
        self._route(offset)
        if self.kernel == "python":
            self._current_builder.feed(word)
        else:
            token_id = self._own_ids.get(word)
            if token_id is None:
                token_id = len(self._own_vocabulary)
                self._own_ids[word] = token_id
                self._own_vocabulary.append(word)
            self._current_builder.feed(token_id)
        self._current_count += 1
        self._current_frozen = None
        self._current_spans = None

    def feed_id(self, token_id: int, offset: int) -> None:
        """Route one pre-interned token id to its generation.

        Requires the ``vocabulary`` constructor argument (the caller's
        interner owns the id space); the streaming layer uses this entry so
        ids flow straight from the discretizer without materializing words
        per token. Must not be mixed with :meth:`feed` on the same instance.
        """
        if self._vocabulary is None:
            raise ValueError("feed_id requires a vocabulary at construction")
        self._route(offset)
        if self.kernel == "python":
            self._current_builder.feed(self._vocabulary[token_id])
        else:
            self._current_builder.feed(token_id)
        self._current_count += 1
        self._current_frozen = None
        self._current_spans = None

    def drop_before(self, offset: int) -> int:
        """Retire every sealed generation ending at or before ``offset``.

        Returns the number of generations dropped. Only *sealed* generations
        are eligible (the current one is still growing and, with the decay
        policy's aligned horizon, never expired).
        """
        boundary = int(offset)
        dropped = 0
        for index in sorted(self._sealed):
            if (index + 1) * self.generation_size > boundary:
                break
            grammar, count = self._sealed.pop(index)
            self._sealed_spans.pop(index, None)
            self.retired_generations += 1
            self.retired_tokens += count
            self.retired_rules += grammar.n_rules - 1
            self.retired_rule_refs += sum(grammar.rule_refcounts())
            dropped += 1
        return dropped

    def live_grammars(self) -> list[tuple[int, Grammar, int]]:
        """``(generation_index, grammar, token_count)`` of every live generation.

        Sealed generations return their cached frozen grammar; the current
        generation is frozen on demand (cached until the next token).
        Generations are returned oldest first.
        """
        live: list[tuple[int, Grammar, int]] = [
            (index, grammar, count) for index, (grammar, count) in sorted(self._sealed.items())
        ]
        if self._current_builder is not None:
            if self._current_frozen is None or self._current_frozen[0] != self._current_count:
                self._current_frozen = (self._current_count, self._freeze_current())
            live.append((self._current_index, self._current_frozen[1], self._current_count))
        return live

    def live_spans(self) -> list[tuple[int, "object", "object", int]]:
        """``(index, firsts, lasts, count)`` of every live generation.

        The span-level twin of :meth:`live_grammars` for id-based kernels:
        sealed generations return occurrence spans extracted once at seal
        time (their grammars never change again), and only the growing
        generation reads its live builder arena (cached until the next
        token). No frozen grammars, rule objects, or word strings are built
        — the decay snapshot path feeds these straight into the fused
        density scatter. Oldest generation first, matching
        :meth:`live_grammars` so accumulated curves stay bitwise equal.
        """
        if self.kernel == "python":
            raise ValueError(
                "live_spans requires an id-based kernel; the oracle kernel "
                "snapshots through live_grammars()"
            )
        live = [
            (index, *self._sealed_spans[index], self._sealed[index][1])
            for index in sorted(self._sealed)
        ]
        if self._current_builder is not None:
            if self._current_spans is None or self._current_spans[0] != self._current_count:
                self._current_spans = (
                    self._current_count,
                    self._current_builder.occurrence_spans(),
                )
            firsts, lasts = self._current_spans[1]
            live.append((self._current_index, firsts, lasts, self._current_count))
        return live

    def memory_bytes(self) -> int:
        """Estimate of bytes retained by live grammar state.

        The growing generation is charged its builder arena (id kernels
        report exactly; the oracle is estimated per fed token); sealed
        generations are charged only their frozen rules. The decay soak
        asserts this stays bounded as generations retire — the accounting
        that catches a sealed generation accidentally pinning its builder.
        """
        total = 0
        if self._current_builder is not None:
            if self.kernel == "python":
                # ~3 slot objects per token (terminal + amortized rule
                # machinery) at CPython object prices.
                total += self._current_count * 200
            else:
                total += self._current_builder.memory_bytes()
        for grammar, _count in self._sealed.values():
            total += 64 * grammar.grammar_size()
        for firsts, lasts in self._sealed_spans.values():
            total += firsts.nbytes + lasts.nbytes
        return total


def induce_grammar(tokens: Iterable[str] | Sequence[str]) -> Grammar:
    """Run Sequitur over ``tokens`` and return the induced grammar.

    Parameters
    ----------
    tokens:
        The (numerosity-reduced) SAX words, or any iterable of hashable
        strings.

    Returns
    -------
    Grammar
        Frozen grammar with ``rules[0]`` being R0 (the compressed sequence).

    Example
    -------
    The paper's Eq. (4) token sequence compresses to
    ``R0 -> R2 cc ca R2`` with ``R2 -> ab bc aa`` (Table 2):

    >>> grammar = induce_grammar(["ab", "bc", "aa", "cc", "ca", "ab", "bc", "aa"])
    >>> grammar.rules[0].rhs
    (1, 'cc', 'ca', 1)
    >>> grammar.rules[1].rhs
    ('ab', 'bc', 'aa')
    """
    kernel = _kernel.current_kernel()
    if kernel == "python":
        builder = _SequiturBuilder()
        fed = False
        for word in tokens:
            if not isinstance(word, str):
                raise TypeError(f"tokens must be strings, got {type(word).__name__}")
            builder.feed(word)
            fed = True
        if not fed:
            raise ValueError("cannot induce a grammar from an empty token sequence")
        return builder.freeze()
    # Id-based kernels: intern words on the fly, feed integer ids, map back
    # at freeze time. Grammar structure depends only on the equality pattern
    # of the tokens, so the result is identical to the oracle's.
    ids: dict[str, int] = {}
    vocabulary: list[str] = []
    id_builder = _kernel.make_builder(kernel)
    feed = id_builder.feed
    fed = False
    for word in tokens:
        if not isinstance(word, str):
            raise TypeError(f"tokens must be strings, got {type(word).__name__}")
        token_id = ids.get(word)
        if token_id is None:
            token_id = len(vocabulary)
            ids[word] = token_id
            vocabulary.append(word)
        feed(token_id)
        fed = True
    if not fed:
        raise ValueError("cannot induce a grammar from an empty token sequence")
    return id_builder.freeze(vocabulary)
