"""RRA — Rare Rule Anomaly detection (Senin et al. [18, 19]).

The paper's rule-density method is a streamlined variant of GrammarViz's
RRA algorithm, which this module implements as an additional baseline and
as the library's *variable-length* anomaly detector:

1. every grammar-rule occurrence maps to a time interval, annotated with
   the rule's occurrence count (its "frequency");
2. maximal stretches covered by **no** rule are added as frequency-0
   intervals — the strongest candidates (incompressible regions);
3. candidate intervals are examined in ascending frequency order and
   re-ranked by the z-normalized Euclidean distance to their nearest
   non-overlapping neighbour interval of similar length (a discord-style
   refinement with early abandoning);
4. the top-k non-overlapping intervals are reported — each with its own
   length, unlike fixed-window methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.anomaly import Anomaly
from repro.core.executors import StatelessBatchMixin
from repro.grammar.density import density_from_intervals
from repro.grammar.rules import Grammar
from repro.grammar.sequitur import induce_grammar
from repro.sax.numerosity import TokenSequence, numerosity_reduction
from repro.sax.sax import discretize
from repro.sax.znorm import znorm
from repro.utils.validation import ensure_time_series, validate_window


@dataclass(frozen=True)
class RuleInterval:
    """A candidate interval: a rule occurrence (or uncovered gap)."""

    start: int
    end: int  # inclusive
    rule_index: int  # -1 for zero-coverage gaps
    frequency: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"empty interval [{self.start}, {self.end}]")
        if self.frequency < 0:
            raise ValueError("frequency must be non-negative")

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    def overlaps(self, other: "RuleInterval") -> bool:
        return self.start <= other.end and other.start <= self.end


def rule_intervals(
    grammar: Grammar,
    tokens: TokenSequence,
    series_length: int,
) -> list[RuleInterval]:
    """All rule-occurrence intervals plus frequency-0 gap intervals."""
    occurrences = grammar.rule_occurrences()
    counts: dict[int, int] = {}
    for occurrence in occurrences:
        counts[occurrence.rule_index] = counts.get(occurrence.rule_index, 0) + 1
    intervals = []
    spans = []
    for occurrence in occurrences:
        start, end = tokens.token_span(occurrence.first_token, occurrence.last_token)
        end = min(end, series_length - 1)
        intervals.append(
            RuleInterval(start, end, occurrence.rule_index, counts[occurrence.rule_index])
        )
        spans.append((start, end))
    # Zero-coverage gaps: maximal runs where the density curve is zero.
    density = density_from_intervals(spans, series_length)
    uncovered = density == 0
    position = 0
    while position < series_length:
        if uncovered[position]:
            gap_start = position
            while position < series_length and uncovered[position]:
                position += 1
            # Ignore trivially short gaps (shorter than one window).
            if position - gap_start >= tokens.window:
                intervals.append(RuleInterval(gap_start, position - 1, -1, 0))
        else:
            position += 1
    return intervals


def _nearest_match_distance(series: np.ndarray, candidate: RuleInterval) -> float:
    """Length-normalized 1-NN distance of an interval vs the whole series.

    The discord-style refinement of RRA: slide a same-length window over the
    entire series (excluding positions overlapping the candidate), track the
    nearest z-normalized Euclidean match, and normalize by sqrt(length) so
    candidates of different lengths are comparable. A stride of length/8
    keeps the scan near-linear; early abandoning skips hopeless offsets.
    """
    length = candidate.length
    if length > len(series) // 2:
        return float("inf")
    query = znorm(series[candidate.start : candidate.end + 1])
    stride = max(1, length // 8)
    best = np.inf
    for offset in range(0, len(series) - length + 1, stride):
        if offset <= candidate.end and candidate.start <= offset + length - 1:
            continue  # self-overlap
        other = znorm(series[offset : offset + length])
        distance = float(np.linalg.norm(query - other))
        if distance < best:
            best = distance
    return best / np.sqrt(length)


class RRADetector(StatelessBatchMixin):
    """Rare Rule Anomaly detection — variable-length grammar anomalies.

    Parameters
    ----------
    window:
        SAX sliding-window length (sets discretization granularity; found
        anomalies may be longer or shorter).
    paa_size, alphabet_size:
        Discretization parameters of the single grammar run.
    refine_top:
        How many lowest-frequency candidates get the distance refinement.

    Example
    -------
    >>> import numpy as np
    >>> series = np.sin(np.linspace(0, 60 * np.pi, 3000))
    >>> series[1500:1570] = np.sin(np.linspace(0, 10 * np.pi, 70))
    >>> detector = RRADetector(window=100, paa_size=5, alphabet_size=5)
    >>> top = detector.detect(series, k=1)[0]
    >>> abs(top.position - 1450) < 200
    True
    """

    def __init__(
        self,
        window: int,
        paa_size: int = 4,
        alphabet_size: int = 4,
        *,
        refine_top: int = 12,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        if refine_top < 1:
            raise ValueError(f"refine_top must be positive, got {refine_top}")
        self.window = int(window)
        self.paa_size = int(paa_size)
        self.alphabet_size = int(alphabet_size)
        self.refine_top = int(refine_top)

    def intervals(self, series: np.ndarray) -> list[RuleInterval]:
        """The full candidate interval set for ``series``."""
        series = ensure_time_series(series, name="series", min_length=2)
        validate_window(self.window, len(series))
        words = discretize(series, self.window, self.paa_size, self.alphabet_size)
        tokens = numerosity_reduction(words, self.window)
        grammar = induce_grammar(tokens.words)
        return rule_intervals(grammar, tokens, len(series))

    def detect(self, series: np.ndarray, k: int = 3) -> list[Anomaly]:
        """Top-``k`` non-overlapping variable-length anomalies.

        Candidates are screened by *rule coverage* — the mean rule density
        over the interval, the paper's own rarity criterion — and the least-
        covered ``refine_top`` candidates are re-ranked by their discord-
        style 1-NN distance against the whole series. This mirrors RRA's
        two-phase design: grammar rarity proposes, distance disposes.
        """
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        series = ensure_time_series(series, name="series", min_length=2)
        candidates = self.intervals(series)
        if not candidates:
            return []
        density = density_from_intervals(
            [(c.start, c.end) for c in candidates if c.rule_index >= 0], len(series)
        )
        prefix = np.concatenate(([0.0], np.cumsum(density)))

        def coverage(interval: RuleInterval) -> float:
            return float(
                (prefix[interval.end + 1] - prefix[interval.start]) / interval.length
            )

        # Screening: least-covered intervals first; prefer longer intervals
        # within (approximately) equal coverage, then earlier positions.
        candidates.sort(key=lambda c: (round(coverage(c), 6), -c.length, c.start))
        pool_size = max(self.refine_top, k)
        pool: list[RuleInterval] = []
        for candidate in candidates:
            if any(candidate.overlaps(chosen) for chosen in pool):
                continue
            pool.append(candidate)
            if len(pool) >= pool_size:
                break
        # Refinement: discord distance against the whole series.
        scored = [
            (_nearest_match_distance(series, candidate), candidate)
            for candidate in pool
        ]
        scored.sort(
            key=lambda item: -(item[0] if np.isfinite(item[0]) else float(self.window))
        )
        results: list[Anomaly] = []
        for nearest, candidate in scored[:k]:
            score = nearest if np.isfinite(nearest) else float(self.window)
            results.append(
                Anomaly(
                    position=candidate.start,
                    length=candidate.length,
                    score=score,
                    rank=len(results) + 1,
                )
            )
        return results
