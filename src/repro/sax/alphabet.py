"""SAX alphabet helpers: symbol set and word <-> index conversions."""

from __future__ import annotations

import numpy as np

#: The SAX symbol set, ordered by breakpoint region (lowest region = 'a').
ALPHABET = "abcdefghijklmnopqrstuvwxyz"

#: Code point of the first symbol; symbol index ``i`` maps to ``chr(_BASE + i)``.
_BASE = ord("a")


def indices_to_word(indices: np.ndarray) -> str:
    """Convert an array of symbol indices (0-based) into a SAX word string."""
    codes = np.asarray(indices)
    if codes.size and (codes.min() < 0 or codes.max() >= len(ALPHABET)):
        raise ValueError(f"symbol indices must be in [0, {len(ALPHABET) - 1}]")
    return (codes.astype(np.uint8) + _BASE).tobytes().decode("ascii")


def word_to_indices(word: str) -> np.ndarray:
    """Convert a SAX word string back into an array of 0-based symbol indices."""
    codes = np.frombuffer(word.encode("ascii"), dtype=np.uint8).astype(np.int64) - _BASE
    if codes.size and (codes.min() < 0 or codes.max() >= len(ALPHABET)):
        raise ValueError(f"word {word!r} contains characters outside the SAX alphabet")
    return codes


def index_matrix_to_words(indices: np.ndarray) -> list[str]:
    """Convert a 2-D matrix of symbol indices into one word string per row.

    This is the hot path of sliding-window discretization, so it converts the
    whole matrix to bytes once and slices per row.
    """
    matrix = np.asarray(indices)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D index matrix, got shape {matrix.shape}")
    byte_matrix = (matrix.astype(np.uint8) + _BASE).tobytes()
    width = matrix.shape[1]
    return [
        byte_matrix[row * width : (row + 1) * width].decode("ascii")
        for row in range(matrix.shape[0])
    ]


class WordInterner:
    """Map symbol-matrix rows to stable integer token ids.

    The string-deferral boundary of the tokenizer refactor: downstream of
    numerosity reduction the grammar kernels consume token *ids*, so word
    strings only exist once per *distinct* row — materialized here, on first
    sight, into :attr:`vocabulary` (``vocabulary[id]`` is the word of ``id``).
    Ids are assigned in first-seen order and stay stable for the lifetime of
    the interner, which is what lets a streaming member keep one interner
    across drains and feed ids straight into an incremental grammar builder.

    Two rows get the same id exactly when they are element-wise equal, so a
    grammar induced over ids is structurally identical to one induced over
    the corresponding word strings.
    """

    __slots__ = ("_ids", "vocabulary")

    def __init__(self) -> None:
        self._ids: dict[bytes, int] = {}
        #: Word string of each token id, in id order. Callers may hold a
        #: reference; the list only ever grows (ids are never reassigned).
        self.vocabulary: list[str] = []

    def __len__(self) -> int:
        return len(self.vocabulary)

    @classmethod
    def from_vocabulary(cls, vocabulary) -> "WordInterner":
        """Rebuild an interner whose id space matches ``vocabulary`` exactly.

        The session-snapshot restore path: ids are first-seen-ordered and
        never reassigned, so a vocabulary list *is* the interner's full
        state — word ``vocabulary[i]`` gets id ``i`` again, and previously
        interned token-id sequences remain valid against the restored
        instance.
        """
        interner = cls()
        table = interner._ids
        words = interner.vocabulary
        for word in vocabulary:
            key = word.encode("ascii")
            if key in table:
                raise ValueError(f"duplicate word {word!r} in vocabulary")
            table[key] = len(words)
            words.append(word)
        return interner

    def intern_matrix(self, indices: np.ndarray) -> np.ndarray:
        """Token ids of every row of a 2-D symbol-index matrix (int64)."""
        matrix = np.asarray(indices)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D index matrix, got shape {matrix.shape}")
        byte_matrix = (matrix.astype(np.uint8) + _BASE).tobytes()
        width = matrix.shape[1]
        ids = np.empty(matrix.shape[0], dtype=np.int64)
        table = self._ids
        get = table.get
        vocabulary = self.vocabulary
        for row in range(matrix.shape[0]):
            key = byte_matrix[row * width : (row + 1) * width]
            token_id = get(key)
            if token_id is None:
                token_id = len(vocabulary)
                table[key] = token_id
                vocabulary.append(key.decode("ascii"))
            ids[row] = token_id
        return ids

    def memory_bytes(self) -> int:
        """Rough retained-bytes estimate (vocabulary + id table)."""
        if not self.vocabulary:
            return 0
        width = len(self.vocabulary[0])
        # bytes key + str value + two dict/list slots, per distinct word.
        return len(self.vocabulary) * (2 * width + 120)
