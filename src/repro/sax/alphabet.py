"""SAX alphabet helpers: symbol set and word <-> index conversions."""

from __future__ import annotations

import numpy as np

#: The SAX symbol set, ordered by breakpoint region (lowest region = 'a').
ALPHABET = "abcdefghijklmnopqrstuvwxyz"

#: Code point of the first symbol; symbol index ``i`` maps to ``chr(_BASE + i)``.
_BASE = ord("a")


def indices_to_word(indices: np.ndarray) -> str:
    """Convert an array of symbol indices (0-based) into a SAX word string."""
    codes = np.asarray(indices)
    if codes.size and (codes.min() < 0 or codes.max() >= len(ALPHABET)):
        raise ValueError(f"symbol indices must be in [0, {len(ALPHABET) - 1}]")
    return (codes.astype(np.uint8) + _BASE).tobytes().decode("ascii")


def word_to_indices(word: str) -> np.ndarray:
    """Convert a SAX word string back into an array of 0-based symbol indices."""
    codes = np.frombuffer(word.encode("ascii"), dtype=np.uint8).astype(np.int64) - _BASE
    if codes.size and (codes.min() < 0 or codes.max() >= len(ALPHABET)):
        raise ValueError(f"word {word!r} contains characters outside the SAX alphabet")
    return codes


def index_matrix_to_words(indices: np.ndarray) -> list[str]:
    """Convert a 2-D matrix of symbol indices into one word string per row.

    This is the hot path of sliding-window discretization, so it converts the
    whole matrix to bytes once and slices per row.
    """
    matrix = np.asarray(indices)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D index matrix, got shape {matrix.shape}")
    byte_matrix = (matrix.astype(np.uint8) + _BASE).tobytes()
    width = matrix.shape[1]
    return [
        byte_matrix[row * width : (row + 1) * width].decode("ascii")
        for row in range(matrix.shape[0])
    ]
