"""SAX alphabet helpers: symbol set and word <-> index conversions."""

from __future__ import annotations

import numpy as np

#: The SAX symbol set, ordered by breakpoint region (lowest region = 'a').
ALPHABET = "abcdefghijklmnopqrstuvwxyz"

#: Code point of the first symbol; symbol index ``i`` maps to ``chr(_BASE + i)``.
_BASE = ord("a")

#: Bits per symbol in a packed word code; 5 bits cover indices 0..25 (< 32).
_CODE_BITS = 5

#: Widest word packable into one length-tagged int64 code: the tag bit must
#: stay below bit 63, so ``5 * width + 1 <= 63``.
MAX_PACKED_WIDTH = 12


def pack_symbol_rows(indices: np.ndarray) -> np.ndarray | None:
    """Pack each symbol row into one length-tagged int64 code, or ``None``.

    ``code = (1 << 5·width) | Σ_j symbols[j] << 5·(width-1-j)`` — symbols
    occupy 5 bits each and the tag bit encodes the width, so codes are
    injective over ``(width, row)``: two codes are equal exactly when they
    pack equal-length, element-wise-equal rows. This turns row-level
    operations (numerosity run detection, vocabulary lookup) into scalar
    int64 operations. Returns ``None`` when the rows are too wide to pack
    (``width > 12``), in which case callers fall back to the bytes path.
    """
    matrix = np.asarray(indices)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D index matrix, got shape {matrix.shape}")
    width = matrix.shape[1]
    if width > MAX_PACKED_WIDTH:
        return None
    codes = np.full(matrix.shape[0], np.int64(1) << (_CODE_BITS * width), dtype=np.int64)
    for column in range(width):
        codes |= matrix[:, column].astype(np.int64) << (_CODE_BITS * (width - 1 - column))
    return codes


def indices_to_word(indices: np.ndarray) -> str:
    """Convert an array of symbol indices (0-based) into a SAX word string."""
    codes = np.asarray(indices)
    if codes.size and (codes.min() < 0 or codes.max() >= len(ALPHABET)):
        raise ValueError(f"symbol indices must be in [0, {len(ALPHABET) - 1}]")
    return (codes.astype(np.uint8) + _BASE).tobytes().decode("ascii")


def word_to_indices(word: str) -> np.ndarray:
    """Convert a SAX word string back into an array of 0-based symbol indices."""
    codes = np.frombuffer(word.encode("ascii"), dtype=np.uint8).astype(np.int64) - _BASE
    if codes.size and (codes.min() < 0 or codes.max() >= len(ALPHABET)):
        raise ValueError(f"word {word!r} contains characters outside the SAX alphabet")
    return codes


def index_matrix_to_words(indices: np.ndarray) -> list[str]:
    """Convert a 2-D matrix of symbol indices into one word string per row.

    This is the hot path of sliding-window discretization, so it converts the
    whole matrix to bytes once and slices per row.
    """
    matrix = np.asarray(indices)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D index matrix, got shape {matrix.shape}")
    byte_matrix = (matrix.astype(np.uint8) + _BASE).tobytes()
    width = matrix.shape[1]
    return [
        byte_matrix[row * width : (row + 1) * width].decode("ascii")
        for row in range(matrix.shape[0])
    ]


def _pack_word_key(key: bytes) -> int:
    """Packed code of one ASCII word key (scalar :func:`pack_symbol_rows`)."""
    code = 0
    for byte in key:
        code = (code << _CODE_BITS) | (byte - _BASE)
    return code | (1 << (_CODE_BITS * len(key)))


class WordInterner:
    """Map symbol-matrix rows to stable integer token ids.

    The string-deferral boundary of the tokenizer refactor: downstream of
    numerosity reduction the grammar kernels consume token *ids*, so word
    strings only exist once per *distinct* row — materialized into
    :attr:`vocabulary` (``vocabulary[id]`` is the word of ``id``). Ids are
    assigned in first-seen order and stay stable for the lifetime of the
    interner, which is what lets a streaming member keep one interner
    across drains and feed ids straight into an incremental grammar builder.

    The packed path (:meth:`intern_packed`) defers even the string: a new
    code costs one dict insert at ingest, and its word is decoded only when
    :attr:`vocabulary` is next read (a poll, a grammar freeze, a snapshot
    export). The property materializes any pending words first, and the
    underlying list object never changes identity, so callers that captured
    the list at construction time (grammar builders, generation routers)
    see the appended words — provided the property is read before they
    index a freshly allocated id.

    Two rows get the same id exactly when they are element-wise equal, so a
    grammar induced over ids is structurally identical to one induced over
    the corresponding word strings.
    """

    __slots__ = ("_ids", "_code_ids", "_pending", "_n_ids", "_vocabulary")

    def __init__(self) -> None:
        self._ids: dict[bytes, int] = {}
        #: Packed-code table (:func:`pack_symbol_rows` codes -> ids). Codes
        #: are length-tagged, so one table serves every word width. The
        #: invariant that keeps :meth:`intern_packed` to pure int work:
        #: every interned word of packable width has its code here, no
        #: matter which method interned it.
        self._code_ids: dict[int, int] = {}
        #: Packed codes whose word strings are not yet materialized, as
        #: ``(code, width)`` in id-allocation order; their ids are the
        #: dense suffix ``_n_ids - len(_pending) .. _n_ids`` of the id
        #: space, continuing straight after ``_vocabulary``.
        self._pending: list[tuple[int, int]] = []
        self._n_ids = 0
        self._vocabulary: list[str] = []

    def __len__(self) -> int:
        return self._n_ids

    @property
    def vocabulary(self) -> list[str]:
        """Word string of each token id, in id order.

        Callers may hold a reference; the list only ever grows (ids are
        never reassigned). Reading the property materializes any words the
        packed fast path deferred.
        """
        if self._pending:
            self._materialize()
        return self._vocabulary

    def _materialize(self) -> None:
        """Decode pending packed codes into the bytes table + vocabulary."""
        pending, self._pending = self._pending, []
        vocabulary = self._vocabulary
        table = self._ids
        total = len(pending)
        index = 0
        while index < total:
            # One vectorized decode per run of equal-width codes (a
            # streaming member has a single width; a multi-resolution
            # interner alternates in runs).
            width = pending[index][1]
            stop = index
            while stop < total and pending[stop][1] == width:
                stop += 1
            codes = np.asarray(
                [pending[i][0] for i in range(index, stop)], dtype=np.int64
            )
            shifts = _CODE_BITS * np.arange(width - 1, -1, -1, dtype=np.int64)
            symbols = (codes[:, None] >> shifts[None, :]) & ((1 << _CODE_BITS) - 1)
            byte_block = (symbols.astype(np.uint8) + _BASE).tobytes()
            for row in range(stop - index):
                key = byte_block[row * width : (row + 1) * width]
                table[key] = len(vocabulary)
                vocabulary.append(key.decode("ascii"))
            index = stop

    @classmethod
    def from_vocabulary(cls, vocabulary) -> "WordInterner":
        """Rebuild an interner whose id space matches ``vocabulary`` exactly.

        The session-snapshot restore path: ids are first-seen-ordered and
        never reassigned, so a vocabulary list *is* the interner's full
        state — word ``vocabulary[i]`` gets id ``i`` again, and previously
        interned token-id sequences remain valid against the restored
        instance.
        """
        interner = cls()
        table = interner._ids
        code_table = interner._code_ids
        words = interner._vocabulary
        for word in vocabulary:
            key = word.encode("ascii")
            if key in table:
                raise ValueError(f"duplicate word {word!r} in vocabulary")
            table[key] = len(words)
            if len(key) <= MAX_PACKED_WIDTH:
                code_table[_pack_word_key(key)] = len(words)
            words.append(word)
        interner._n_ids = len(words)
        return interner

    def intern_matrix(self, indices: np.ndarray) -> np.ndarray:
        """Token ids of every row of a 2-D symbol-index matrix (int64)."""
        matrix = np.asarray(indices)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D index matrix, got shape {matrix.shape}")
        if self._pending:
            # Direct appends need the dense vocabulary, and a pending
            # packed word must be findable under its bytes key.
            self._materialize()
        byte_matrix = (matrix.astype(np.uint8) + _BASE).tobytes()
        width = matrix.shape[1]
        packable = width <= MAX_PACKED_WIDTH
        ids = np.empty(matrix.shape[0], dtype=np.int64)
        table = self._ids
        get = table.get
        code_table = self._code_ids
        vocabulary = self._vocabulary
        for row in range(matrix.shape[0]):
            key = byte_matrix[row * width : (row + 1) * width]
            token_id = get(key)
            if token_id is None:
                token_id = len(vocabulary)
                table[key] = token_id
                if packable:
                    code_table[_pack_word_key(key)] = token_id
                vocabulary.append(key.decode("ascii"))
            ids[row] = token_id
        self._n_ids = len(vocabulary)
        return ids

    def intern_packed(self, codes: np.ndarray, width: int) -> np.ndarray:
        """Token ids of packed word codes; id-equal to :meth:`intern_matrix`.

        ``codes`` must come from :func:`pack_symbol_rows` over rows of
        ``width`` symbols. One ``np.unique`` collapses the block to its
        distinct codes, and a *new* distinct code costs one dict insert —
        the word string itself is deferred until :attr:`vocabulary` is next
        read. New ids are allocated in first-occurrence order, exactly as
        :meth:`intern_matrix`'s row loop would assign them.
        """
        codes = np.asarray(codes, dtype=np.int64)
        unique, first_index, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        get = self._code_ids.get
        # Plain-int iteration: numpy scalar unboxing dominates this loop
        # otherwise (the block is one drain's worth of kept tokens, and on
        # high-entropy streams most of them are distinct).
        unique_list = unique.tolist()
        ids_list = [get(code) for code in unique_list]
        missing = [position for position, t in enumerate(ids_list) if t is None]
        if missing:
            # Visit misses in first-occurrence order so fresh ids come out
            # exactly as intern_matrix's row loop would assign them. The
            # code-table invariant (every packable interned word has a code
            # entry) makes a code miss a true vocabulary miss, so no bytes
            # lookup is needed here.
            first_list = first_index.tolist()
            missing.sort(key=first_list.__getitem__)
            table = self._code_ids
            pending = self._pending
            token_id = self._n_ids
            for position in missing:
                code = unique_list[position]
                table[code] = token_id
                pending.append((code, width))
                ids_list[position] = token_id
                token_id += 1
            self._n_ids = token_id
        return np.asarray(ids_list, dtype=np.int64)[inverse]

    def memory_bytes(self) -> int:
        """Rough retained-bytes estimate (vocabulary + id tables).

        Pending (not yet materialized) words count at the same price as
        materialized ones: the estimate must not dip just because no poll
        has forced their strings into existence yet.
        """
        if not self._n_ids:
            return 0
        if self._vocabulary:
            width = len(self._vocabulary[0])
        else:
            width = self._pending[0][1]
        # bytes key + str value + two dict/list slots, per distinct word,
        # plus one packed-code dict entry per packable word.
        return self._n_ids * (2 * width + 120) + len(self._code_ids) * 60
