"""z-normalization (paper Section 3.1).

Anomaly discovery should be offset- and amplitude-invariant, so every
subsequence is normalized to zero mean and unit standard deviation before
discretization or distance computation.

Following Algorithm 2 in the paper, the *sample* standard deviation
(``ddof=1``) is used throughout the library so the prefix-sum fast path and
this reference implementation agree exactly.
"""

from __future__ import annotations

import numpy as np

#: Subsequences whose standard deviation falls below this threshold —
#: *relative to their magnitude scale* ``max(1, |mean|)`` — are treated as
#: constant: they are centred but not scaled, which keeps flat regions from
#: amplifying numerical noise into spurious shapes. The relative form makes
#: the constancy decision scale-invariant (a constant array stays constant
#: after multiplication by any factor, despite float rounding).
DEFAULT_ZNORM_THRESHOLD = 1e-8


def constancy_cutoff(mean: float, threshold: float = DEFAULT_ZNORM_THRESHOLD) -> float:
    """The std below which a subsequence of this mean counts as constant."""
    return threshold * max(1.0, abs(mean))


def constancy_mask(
    means: np.ndarray,
    stds: np.ndarray,
    threshold: float = DEFAULT_ZNORM_THRESHOLD,
) -> np.ndarray:
    """Vectorized :func:`constancy_cutoff`: which windows count as constant.

    ``mask[i]`` is True when ``stds[i] < threshold * max(1, |means[i]|)`` —
    the same comparison, and therefore the same float semantics, as the
    scalar cutoff; the batched PAA paths use this so their constancy
    decisions stay bitwise aligned with the per-window reference.
    """
    return stds < threshold * np.maximum(np.abs(means), 1.0)


def znorm(values: np.ndarray, threshold: float = DEFAULT_ZNORM_THRESHOLD) -> np.ndarray:
    """Return a z-normalized copy of ``values``.

    Parameters
    ----------
    values:
        1-D numeric array.
    threshold:
        Relative constancy threshold; standard deviations below
        ``threshold * max(1, |mean|)`` are treated as zero (constant input).

    Returns
    -------
    numpy.ndarray
        ``(values - mean) / std`` with sample std (``ddof=1``); when the
        input is (numerically) constant, only the mean is removed.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"znorm expects a 1-D array, got shape {array.shape}")
    if array.size == 0:
        return array.copy()
    mean = array.mean()
    if array.size == 1:
        return array - mean
    std = array.std(ddof=1)
    if std < constancy_cutoff(mean, threshold):
        return array - mean
    return (array - mean) / std
