"""Discretization kernel seam: selectable PAA/symbol hot-path backends.

PR 6 put the grammar stage behind ``REPRO_KERNEL``; this module extends the
same seam one layer up, to the discretization front end, so a single
environment variable governs the whole tokenize→grammar pipeline:

- ``"python"`` — the reference path: :func:`repro.sax.paa.sliding_paa_rows`
  per PAA size (each call re-derives the window statistics) and
  ``np.searchsorted`` against the merged breakpoint table. This is the
  oracle the property suite compares everything against.
- ``"fast"`` — shared window statistics computed once per sweep and reused
  by every PAA size, plus an integer-stride prefix-sum gather for the
  common case ``window % paa_size == 0`` (segment boundaries land exactly
  on samples, so the fractional interpolation term is identically zero and
  the cumulative sums are plain ``prefix_sum`` lookups).
- ``"compiled"`` — a numba-jitted port (:mod:`repro.sax._kernel_compiled`),
  import-guarded exactly like the grammar kernel: selecting it without
  numba installed raises with an install hint, and its tests skip
  themselves when the module cannot be imported.

Selection is shared with the grammar seam — :func:`current_kernel`,
:func:`set_kernel` and :func:`use_kernel` are re-exported from
:mod:`repro.grammar._kernel` — so ``REPRO_KERNEL=compiled`` (or a
``use_kernel`` scope) switches both stages together.

Parity contract (pinned by ``tests/test_sax_properties.py`` and
``tests/test_kernel_differential.py``): for every kernel, the symbol
matrices — and therefore every token, grammar and anomaly curve downstream
— are bitwise identical to the reference path. For the PAA coefficient
values themselves, ``python`` and ``compiled`` replicate the reference
float operations term for term; the ``fast`` integer-stride path omits the
reference's ``+ 0.0 * values[k]`` interpolation term, which can only flip
the *sign of an exactly-zero* coefficient (the term is a signed zero when
the boundary is integral), never its value. All downstream consumers —
``searchsorted`` discretization, the parity suites' ``array_equal`` —
compare by ``==``, under which ``-0.0 == 0.0``.
"""

from __future__ import annotations

import numpy as np

from repro.grammar._kernel import (  # noqa: F401  (re-exported seam controls)
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KERNELS,
    current_kernel,
    set_kernel,
    use_kernel,
)
from repro.sax.paa import _fractional_prefix, sliding_paa_rows
from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD, constancy_mask

#: Lazily imported compiled backend module (None until first use).
_COMPILED = None


def _compiled():
    """Import the numba backend, translating ImportError into an install hint."""
    global _COMPILED
    if _COMPILED is None:
        try:
            from repro.sax import _kernel_compiled
        except ImportError as error:
            raise ImportError(
                "REPRO_KERNEL=compiled requires numba, which is not installed; "
                "install numba or select REPRO_KERNEL=fast (the default) or "
                "REPRO_KERNEL=python (the reference oracle)"
            ) from error
        _COMPILED = _kernel_compiled
    return _COMPILED


def window_stats(
    prefix_sum: np.ndarray,
    prefix_sq: np.ndarray,
    start: int,
    stop: int,
    window: int,
    znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    *,
    origin: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(means, safe_stds, constant)`` for window starts in ``[start, stop)``.

    Exactly the statistics block of :func:`~repro.sax.paa.sliding_paa_rows`
    — same operations in the same order, so reusing one result across every
    PAA size of a sweep is bitwise indistinguishable from recomputing it.
    ``safe_stds`` substitutes 1.0 on constant windows (whose rows are zeroed
    afterwards), ``constant`` is the boolean constancy row mask.
    """
    local = np.arange(start - origin, stop - origin)
    totals = prefix_sum[local + window] - prefix_sum[local]
    totals_sq = prefix_sq[local + window] - prefix_sq[local]
    means = totals / window
    if window == 1:
        stds = np.zeros_like(means)
    else:
        variances = np.maximum((totals_sq - totals * totals / window) / (window - 1), 0.0)
        stds = np.sqrt(variances)
    constant = constancy_mask(means, stds, znorm_threshold)
    safe_stds = np.where(constant, 1.0, stds)
    return means, safe_stds, constant


def _fast_paa_rows(
    prefix_sum: np.ndarray,
    values: np.ndarray,
    start: int,
    stop: int,
    window: int,
    paa_size: int,
    means: np.ndarray,
    safe_stds: np.ndarray,
    constant: np.ndarray,
    origin: int,
) -> np.ndarray:
    """The ``fast`` PAA block: shared stats + integer-stride gather.

    When ``window % paa_size == 0`` every segment boundary is an exact
    integer position: the fractional parts are identically zero and the
    cumulative sums collapse to direct ``prefix_sum`` lookups (see the
    module docstring for the signed-zero caveat this introduces). Otherwise
    the exact fractional interpolation of the reference path runs verbatim.
    """
    step = window / paa_size
    if window % paa_size == 0:
        local = np.arange(start - origin, stop - origin, dtype=np.int64)
        offsets = np.arange(paa_size + 1, dtype=np.int64) * (window // paa_size)
        cumulative = prefix_sum[local[:, None] + offsets[None, :]]
    else:
        starts = np.arange(start, stop)
        relative = np.arange(paa_size + 1) * step
        positions = starts[:, None] + relative[None, :]
        cumulative = _fractional_prefix(prefix_sum, values, positions, origin)
    coefficients = (cumulative[:, 1:] - cumulative[:, :-1]) / step
    normalized = (coefficients - means[:, None]) / safe_stds[:, None]
    normalized[constant] = 0.0
    return normalized


def paa_rows_block(
    prefix_sum: np.ndarray,
    prefix_sq: np.ndarray,
    values: np.ndarray,
    start: int,
    stop: int,
    window: int,
    paa_size: int,
    znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    *,
    origin: int = 0,
    stats: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """Kernel-dispatched z-normalized PAA rows for starts in ``[start, stop)``.

    Row ``i`` corresponds to the window starting at global index
    ``start + i``; every kernel produces output ``==``-equal to
    :func:`~repro.sax.paa.sliding_paa_rows` (``python`` and ``compiled``
    bitwise so). ``stats`` may carry a precomputed :func:`window_stats`
    triple to share across PAA sizes; the ``python`` oracle ignores it and
    re-derives the statistics, exactly as the pre-seam code did.
    """
    kernel = current_kernel() if kernel is None else kernel
    if kernel == "python":
        return sliding_paa_rows(
            prefix_sum, prefix_sq, values, start, stop, window, paa_size,
            znorm_threshold, origin=origin,
        )
    if stats is None:
        stats = window_stats(
            prefix_sum, prefix_sq, start, stop, window, znorm_threshold, origin=origin
        )
    means, safe_stds, constant = stats
    if kernel == "compiled":
        return _compiled().paa_rows(
            prefix_sum, values, start, stop, window, paa_size,
            means, safe_stds, constant, origin,
        )
    return _fast_paa_rows(
        prefix_sum, values, start, stop, window, paa_size,
        means, safe_stds, constant, origin,
    )


def interval_rows_from(
    rows: np.ndarray,
    merged_breakpoints: np.ndarray,
    *,
    kernel: str | None = None,
) -> np.ndarray:
    """Locate each PAA coefficient's merged-table interval, kernel-dispatched.

    ``python`` and ``fast`` use ``np.searchsorted(..., side="right")``;
    ``compiled`` runs an equivalent jitted ``bisect_right`` (the
    breakpoint-tie golden vectors in ``tests/test_sax_properties.py`` pin
    both to the identical closed-on-the-left region convention).
    """
    kernel = current_kernel() if kernel is None else kernel
    if kernel == "compiled":
        return _compiled().interval_rows_from(rows, merged_breakpoints)
    return np.searchsorted(merged_breakpoints, rows, side="right")


def interval_rows_block(
    prefix_sum: np.ndarray,
    prefix_sq: np.ndarray,
    values: np.ndarray,
    start: int,
    stop: int,
    window: int,
    paa_size: int,
    merged_breakpoints: np.ndarray,
    znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    *,
    origin: int = 0,
    stats: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """PAA + interval location in one call (convenience composition)."""
    kernel = current_kernel() if kernel is None else kernel
    rows = paa_rows_block(
        prefix_sum, prefix_sq, values, start, stop, window, paa_size,
        znorm_threshold, origin=origin, stats=stats, kernel=kernel,
    )
    return interval_rows_from(rows, merged_breakpoints, kernel=kernel)
