"""Shared multi-window discretization plan (the ensemble front end).

Before this module, every ensemble member re-ran the full discretization
pipeline over the same series: PAA matrix formation re-derived the window
means/stds per member, and each member paid its own breakpoint search. The
statistics depend only on the *window* (shared by all members), the PAA
matrix only on ``(window, paa_size)``, and the merged-table interval of a
coefficient only on its value — so for an ensemble with ``m`` members over
``k ≤ m`` distinct PAA sizes, one plan computes:

- the window means/stds **once** per sweep (``fast``/``compiled`` kernels),
- one PAA matrix and one interval matrix per *distinct* PAA size,
- each member's symbol matrix as a fancy-index into the precomputed
  symbol matrix of :class:`~repro.sax.breakpoints.MultiResolutionAlphabet`
  (Figure 6 of the paper) — O(rows × word_length) with no arithmetic.

A :class:`DiscretizationPlan` is built once per detector from the ensemble
configuration; each batch series or streaming drain block then opens a
:class:`DiscretizationSweep` over a window-start range, which caches the
per-PAA-size matrices lazily so batch (all starts at once), streaming
(64Ki-row drain blocks with ring-buffer ``origin`` offsets) and the
multi-resolution discretizer all share one code path.

The hot loops live behind the kernel seam (:mod:`repro.sax._kernel`):
``REPRO_KERNEL={python,fast,compiled}`` selects the backend, and every
backend is pinned bitwise-identical downstream by the property/differential
suites. Stage timers fire here — ``paa`` around matrix formation and
``discretize`` around interval search — once per sweep per PAA size.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.obs.stages import stage_timer
from repro.sax import _kernel
from repro.sax.breakpoints import MultiResolutionAlphabet
from repro.sax.paa import CumulativeStats
from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD
from repro.utils.validation import validate_alphabet_size, validate_paa_size


class DiscretizationPlan:
    """Shared discretization configuration for one window length.

    Parameters
    ----------
    window:
        The sliding-window length shared by every member.
    configs:
        The members' ``(paa_size, alphabet_size)`` pairs (duplicates fine,
        order irrelevant), or ``None`` for an open plan that accepts any
        PAA size up to ``window`` and any alphabet size within the table
        range (the multi-resolution discretizer's lazy case).
    znorm_threshold:
        Relative constancy threshold passed to the PAA stage.
    max_alphabet_size, min_alphabet_size:
        Bounds of the merged breakpoint table. ``max_alphabet_size``
        defaults to the largest configured alphabet; a single-member plan
        may pin ``min == max`` so the merged table *is* that member's
        breakpoint table.
    """

    __slots__ = ("window", "configs", "paa_sizes", "znorm_threshold", "alphabet_table")

    def __init__(
        self,
        window: int,
        configs: Iterable[tuple[int, int]] | None = None,
        *,
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
        max_alphabet_size: int | None = None,
        min_alphabet_size: int = 2,
    ) -> None:
        self.window = int(window)
        if self.window < 1:
            raise ValueError(f"window must be positive, got {window}")
        self.znorm_threshold = float(znorm_threshold)
        if configs is None:
            self.configs: tuple[tuple[int, int], ...] | None = None
            self.paa_sizes: tuple[int, ...] = ()
            if max_alphabet_size is None:
                raise ValueError("an open plan (configs=None) requires max_alphabet_size")
        else:
            pairs = [
                (validate_paa_size(w, self.window), validate_alphabet_size(a))
                for w, a in configs
            ]
            if not pairs:
                raise ValueError("configs must name at least one (paa_size, alphabet_size)")
            self.configs = tuple(pairs)
            self.paa_sizes = tuple(sorted({w for w, _ in pairs}))
            largest = max(a for _, a in pairs)
            if max_alphabet_size is None:
                max_alphabet_size = largest
            elif max_alphabet_size < largest:
                raise ValueError(
                    f"max_alphabet_size={max_alphabet_size} below configured "
                    f"alphabet size {largest}"
                )
        #: Merged breakpoint table shared by every member (Section 6.2.2).
        self.alphabet_table = MultiResolutionAlphabet(max_alphabet_size, min_alphabet_size)

    def sweep(
        self,
        prefix_sum: np.ndarray,
        prefix_sq: np.ndarray,
        values: np.ndarray,
        start: int,
        stop: int,
        *,
        origin: int = 0,
    ) -> "DiscretizationSweep":
        """Open a sweep over window starts ``[start, stop)`` (global indices).

        ``origin`` is the global index of ``values[0]``, exactly as in
        :func:`~repro.sax.paa.sliding_paa_rows` — an evicted stream buffer
        passes its retained arrays plus offset and the float arithmetic
        stays identical to the unevicted computation.
        """
        return DiscretizationSweep(self, prefix_sum, prefix_sq, values, start, stop, origin)

    def sweep_series(self, stats: CumulativeStats, start: int = 0, stop: int | None = None):
        """Open a sweep over a batch series' :class:`CumulativeStats`."""
        if stop is None:
            stop = len(stats.series) - self.window + 1
        return self.sweep(stats.prefix_sum, stats.prefix_sq, stats.series, start, stop)


class DiscretizationSweep:
    """One shared pass over a contiguous range of window starts.

    Lazily computes and caches, per distinct PAA size, the z-normalized PAA
    matrix and the merged-table interval matrix; member symbol matrices are
    derived from the cached intervals. The active kernel and the window
    statistics are pinned at construction so every PAA size of the sweep
    runs the same backend over the same (bitwise) statistics.
    """

    __slots__ = (
        "plan", "_prefix_sum", "_prefix_sq", "_values", "start", "stop",
        "_origin", "_kernel", "_stats", "_paa", "_intervals",
    )

    def __init__(
        self,
        plan: DiscretizationPlan,
        prefix_sum: np.ndarray,
        prefix_sq: np.ndarray,
        values: np.ndarray,
        start: int,
        stop: int,
        origin: int,
    ) -> None:
        start = int(start)
        stop = int(stop)
        origin = int(origin)
        if not origin <= start <= stop:
            raise ValueError(f"need origin <= start <= stop, got {origin}, {start}, {stop}")
        if stop > start and stop - origin + plan.window - 1 > len(values):
            raise ValueError(
                f"window starts up to {stop - 1} need {stop - origin + plan.window - 1} "
                f"values from origin {origin}, buffer holds {len(values)}"
            )
        self.plan = plan
        self._prefix_sum = prefix_sum
        self._prefix_sq = prefix_sq
        self._values = values
        self.start = start
        self.stop = stop
        self._origin = origin
        self._kernel = _kernel.current_kernel()
        self._stats: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._paa: dict[int, np.ndarray] = {}
        self._intervals: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def kernel(self) -> str:
        """The backend pinned for this sweep."""
        return self._kernel

    def _validated(self, paa_size: int) -> int:
        paa_size = validate_paa_size(paa_size, self.plan.window)
        if self.plan.configs is not None and paa_size not in self.plan.paa_sizes:
            raise ValueError(f"paa_size={paa_size} not in plan ({self.plan.paa_sizes})")
        return paa_size

    def _shared_stats(self):
        # The python oracle re-derives statistics inside sliding_paa_rows,
        # exactly as the pre-plan per-member code did; sharing is the
        # fast/compiled kernels' job.
        if self._kernel == "python":
            return None
        if self._stats is None:
            self._stats = _kernel.window_stats(
                self._prefix_sum, self._prefix_sq, self.start, self.stop,
                self.plan.window, self.plan.znorm_threshold, origin=self._origin,
            )
        return self._stats

    def paa_rows(self, paa_size: int) -> np.ndarray:
        """Z-normalized PAA matrix for one PAA size (cached per sweep)."""
        paa_size = self._validated(paa_size)
        rows = self._paa.get(paa_size)
        if rows is None:
            with stage_timer("paa"):
                rows = _kernel.paa_rows_block(
                    self._prefix_sum, self._prefix_sq, self._values,
                    self.start, self.stop, self.plan.window, paa_size,
                    self.plan.znorm_threshold, origin=self._origin,
                    stats=self._shared_stats(), kernel=self._kernel,
                )
                rows.flags.writeable = False
            self._paa[paa_size] = rows
        return rows

    def interval_rows(self, paa_size: int) -> np.ndarray:
        """Merged-table interval matrix for one PAA size (cached per sweep)."""
        paa_size = self._validated(paa_size)
        intervals = self._intervals.get(paa_size)
        if intervals is None:
            rows = self.paa_rows(paa_size)
            with stage_timer("discretize"):
                intervals = _kernel.interval_rows_from(
                    rows, self.plan.alphabet_table.merged_breakpoints, kernel=self._kernel
                )
                intervals.flags.writeable = False
            self._intervals[paa_size] = intervals
        return intervals

    def symbol_rows(self, paa_size: int, alphabet_size: int) -> np.ndarray:
        """One member's symbol-index matrix (intervals shared, lookup per member)."""
        return self.plan.alphabet_table.symbols_for(
            self.interval_rows(paa_size), alphabet_size
        )
