"""SAX discretization substrate (paper Sections 4 and 6.2).

This subpackage turns a real-valued time series into the discrete token
sequence that grammar induction consumes:

- :mod:`repro.sax.znorm` — z-normalization (offset/amplitude invariance).
- :mod:`repro.sax.paa` — Piecewise Aggregate Approximation, both a naive
  reference and the prefix-sum FastPAA of Algorithm 2.
- :mod:`repro.sax.breakpoints` — Gaussian equiprobable breakpoint tables and
  the merged multi-resolution table of Section 6.2.2.
- :mod:`repro.sax.sax` — SAX words, vectorized sliding-window discretization,
  and the MINDIST lower bound.
- :mod:`repro.sax.numerosity` — numerosity reduction with recorded offsets.
- :mod:`repro.sax.plan` — the shared multi-window discretization plan: one
  pass emits every ensemble member's PAA/symbol matrices, with the hot
  loops behind the ``REPRO_KERNEL`` seam (:mod:`repro.sax._kernel`).
"""

from repro.sax.alphabet import ALPHABET, indices_to_word, word_to_indices
from repro.sax.breakpoints import MultiResolutionAlphabet, gaussian_breakpoints
from repro.sax.numerosity import TokenSequence, expand_tokens, numerosity_reduction
from repro.sax.paa import CumulativeStats, paa, paa_naive
from repro.sax.plan import DiscretizationPlan, DiscretizationSweep
from repro.sax.sax import discretize, mindist, sax_word
from repro.sax.znorm import znorm

__all__ = [
    "ALPHABET",
    "CumulativeStats",
    "DiscretizationPlan",
    "DiscretizationSweep",
    "MultiResolutionAlphabet",
    "TokenSequence",
    "discretize",
    "expand_tokens",
    "gaussian_breakpoints",
    "indices_to_word",
    "mindist",
    "numerosity_reduction",
    "paa",
    "paa_naive",
    "sax_word",
    "word_to_indices",
    "znorm",
]
