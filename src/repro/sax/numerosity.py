"""Numerosity reduction (Section 4.2).

Neighbouring sliding windows differ by one sample, so consecutive SAX words
are frequently identical; feeding them all to Sequitur yields an explosion
of trivial-match rules. Numerosity reduction keeps only the *first* word of
each run of consecutive identical words, together with its window offset —
exactly the ``ba1, dc4, aa6, ac7`` compression of the paper's Eq. (3).

The offsets are what later lets a grammar-rule occurrence be mapped back to
a time-series interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Supported reduction strategies. ``"exact"`` collapses runs of identical
#: words (the paper's method); ``"none"`` keeps every word.
STRATEGIES = ("exact", "none")


@dataclass(frozen=True)
class TokenSequence:
    """A discretized, numerosity-reduced token sequence.

    Attributes
    ----------
    words:
        The kept SAX words, in order.
    offsets:
        ``offsets[i]`` is the sliding-window start position (into the
        original series) of ``words[i]``.
    n_windows:
        Number of sliding windows before reduction (needed to recover the
        time span of the final token).
    window:
        The sliding-window length ``n`` used at discretization.
    """

    words: tuple[str, ...]
    offsets: np.ndarray = field(repr=False)
    n_windows: int
    window: int

    def __post_init__(self) -> None:
        if len(self.words) != len(self.offsets):
            raise ValueError(
                f"words and offsets must align, got {len(self.words)} words "
                f"and {len(self.offsets)} offsets"
            )
        if len(self.offsets) and self.n_windows <= int(self.offsets[-1]):
            raise ValueError("n_windows must exceed the last offset")

    def __len__(self) -> int:
        return len(self.words)

    def token_span(self, first_token: int, last_token: int) -> tuple[int, int]:
        """Time-series interval covered by tokens ``first_token..last_token``.

        Follows the GrammarViz convention the paper builds on: the span runs
        from the first token's window start to the end of the last token's
        window, i.e. the inclusive point interval
        ``(offsets[first_token], offsets[last_token] + window - 1)``.
        """
        if not 0 <= first_token <= last_token < len(self.words):
            raise IndexError(
                f"token span [{first_token}, {last_token}] out of range "
                f"for {len(self.words)} tokens"
            )
        start = int(self.offsets[first_token])
        end = int(self.offsets[last_token]) + self.window - 1
        return start, end


@dataclass(frozen=True)
class TokenIdSequence:
    """A numerosity-reduced token sequence carried as interned integer ids.

    The id-native counterpart of :class:`TokenSequence`, produced by the
    vectorized tokenizer path: ``vocabulary[ids[i]]`` is the word string of
    token ``i`` (the vocabulary is owned by a
    :class:`repro.sax.alphabet.WordInterner` and may keep growing — ids are
    stable). Grammar kernels feed on :attr:`ids` directly; word strings are
    only materialized when a frozen :class:`~repro.grammar.rules.Grammar`
    is requested.
    """

    ids: np.ndarray = field(repr=False)
    offsets: np.ndarray = field(repr=False)
    n_windows: int
    window: int
    vocabulary: list[str] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.ids) != len(self.offsets):
            raise ValueError(
                f"ids and offsets must align, got {len(self.ids)} ids "
                f"and {len(self.offsets)} offsets"
            )
        if len(self.offsets) and self.n_windows <= int(self.offsets[-1]):
            raise ValueError("n_windows must exceed the last offset")

    def __len__(self) -> int:
        return len(self.ids)

    def words(self) -> tuple[str, ...]:
        """Materialize the word strings (one interned string per token)."""
        vocabulary = self.vocabulary
        return tuple(vocabulary[token_id] for token_id in self.ids)

    def to_token_sequence(self) -> TokenSequence:
        """The equivalent :class:`TokenSequence` (word-string view)."""
        return TokenSequence(self.words(), self.offsets, self.n_windows, self.window)


def kept_window_mask(symbols: np.ndarray) -> np.ndarray:
    """Exact-numerosity keep mask over a symbol-index matrix.

    ``mask[i]`` is True when row ``i`` differs from row ``i - 1`` (row 0 is
    always kept): exactly the windows :func:`numerosity_reduction` keeps,
    decided on integer symbol rows — two windows share a word iff their
    symbol rows are equal — without materializing any strings.
    """
    matrix = np.asarray(symbols)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D symbol matrix, got shape {matrix.shape}")
    keep = np.ones(len(matrix), dtype=bool)
    keep[1:] = np.any(matrix[1:] != matrix[:-1], axis=1)
    return keep


def numerosity_reduction(
    words: list[str],
    window: int,
    strategy: str = "exact",
) -> TokenSequence:
    """Apply numerosity reduction to a full sliding-window word list.

    Parameters
    ----------
    words:
        One SAX word per window start (output of :func:`repro.sax.discretize`).
    window:
        The sliding-window length used to produce ``words``.
    strategy:
        ``"exact"`` (collapse runs, the paper's choice) or ``"none"``.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    if not words:
        raise ValueError("cannot reduce an empty word list")
    if strategy == "none":
        offsets = np.arange(len(words), dtype=np.int64)
        return TokenSequence(tuple(words), offsets, len(words), window)
    kept_words: list[str] = []
    kept_offsets: list[int] = []
    previous: str | None = None
    for position, word in enumerate(words):
        if word != previous:
            kept_words.append(word)
            kept_offsets.append(position)
            previous = word
    return TokenSequence(
        tuple(kept_words),
        np.asarray(kept_offsets, dtype=np.int64),
        len(words),
        window,
    )


def expand_tokens(tokens: TokenSequence) -> list[str]:
    """Invert numerosity reduction: reconstruct the full word-per-window list.

    ``numerosity_reduction`` is lossless given the offsets, per Section 4.2
    ("S_NR contains all information needed to retrieve the original token
    sequence"); this is the inverse used by the property tests.
    """
    expanded: list[str] = []
    boundaries = list(tokens.offsets) + [tokens.n_windows]
    for word, start, stop in zip(tokens.words, boundaries[:-1], boundaries[1:]):
        expanded.extend([word] * (stop - start))
    return expanded
