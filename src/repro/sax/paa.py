"""Piecewise Aggregate Approximation (Section 4.1) and its fast prefix-sum
variant, FastPAA (Algorithm 2 / Section 6.2.1).

PAA reduces a length-``n`` subsequence to ``w`` coefficients, each the mean
of one of ``w`` equal-width segments. When ``n`` is not a multiple of ``w``
the segment boundaries fall between samples; this module implements the
*exact fractional* convention (a boundary sample contributes to both
neighbouring segments, weighted by the overlap), which is equivalent to
upsampling the series by ``w`` and averaging blocks of ``n``.

:class:`CumulativeStats` pre-computes the prefix sums ``ESum_x`` and
``ESum_xx`` of the paper so that, for any subsequence, the mean and standard
deviation cost O(1) and the ``w`` PAA coefficients cost O(w) — independent of
``n``. It also exposes a fully vectorized sliding-window PAA matrix used by
the discretizer.
"""

from __future__ import annotations

import numpy as np

from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD, constancy_cutoff, constancy_mask, znorm
from repro.utils.validation import ensure_time_series, validate_paa_size, validate_window


def paa_naive(subsequence: np.ndarray, paa_size: int) -> np.ndarray:
    """Reference PAA via the upsample-and-average construction.

    Exact but O(n·w); used in tests as the ground truth for the fast paths.
    """
    values = ensure_time_series(subsequence, name="subsequence")
    paa_size = validate_paa_size(paa_size, len(values))
    n = len(values)
    # Repeating each sample w times and averaging blocks of n implements the
    # exact fractional-boundary convention.
    upsampled = np.repeat(values, paa_size)
    return upsampled.reshape(paa_size, n).mean(axis=1)


def _fractional_prefix(
    prefix: np.ndarray,
    values: np.ndarray,
    positions: np.ndarray,
    origin: int = 0,
) -> np.ndarray:
    """Evaluate the piecewise-linear prefix sum ``F`` at fractional positions.

    ``F(k + f) = prefix[k] + f * values[k]`` for integer ``k`` and fractional
    part ``f`` in [0, 1); ``F`` interpolates the running sum so that
    ``F(b) - F(a)`` is the exact weighted sum of samples over ``[a, b)``.

    ``origin`` supports evicted stream buffers: ``positions`` stay in global
    stream coordinates (so the float arithmetic — and therefore every result
    bit — is identical to the unevicted computation) while ``prefix`` and
    ``values`` only cover the stream from global index ``origin`` on.
    """
    floor = np.floor(positions).astype(np.int64)
    frac = positions - floor
    # Positions may land exactly on the end of the values; frac is 0 there,
    # so clip the index used for the (zero-weighted) value lookup.
    value_idx = np.minimum(floor - origin, len(values) - 1)
    return prefix[floor - origin] + frac * values[value_idx]


def paa(subsequence: np.ndarray, paa_size: int) -> np.ndarray:
    """Exact fractional PAA in O(n + w) via a prefix sum.

    Agrees with :func:`paa_naive` to numerical precision for every ``n, w``.
    """
    values = ensure_time_series(subsequence, name="subsequence")
    paa_size = validate_paa_size(paa_size, len(values))
    n = len(values)
    prefix = np.concatenate(([0.0], np.cumsum(values)))
    boundaries = np.arange(paa_size + 1) * (n / paa_size)
    cumulative = _fractional_prefix(prefix, values, boundaries)
    return np.diff(cumulative) / (n / paa_size)


class CumulativeStats:
    """Prefix-sum statistics of a series (``ESum_x``/``ESum_xx`` of Algorithm 2).

    Parameters
    ----------
    series:
        The full time series ``T``.

    Notes
    -----
    ``prefix_sum[k] = sum(T[:k])`` and ``prefix_sq[k] = sum(T[:k]**2)``, so a
    subsequence ``T[p:q]`` has sum ``prefix_sum[q] - prefix_sum[p]`` — the
    paper's ``ESum_x(q) - ESum_x(p)`` with 0-based half-open indexing.
    """

    def __init__(self, series: np.ndarray) -> None:
        self.series = ensure_time_series(series)
        self.prefix_sum = np.concatenate(([0.0], np.cumsum(self.series)))
        self.prefix_sq = np.concatenate(([0.0], np.cumsum(self.series**2)))

    def __len__(self) -> int:
        return len(self.series)

    def subsequence_sum(self, start: int, stop: int) -> float:
        """Sum of ``series[start:stop]`` in O(1)."""
        return float(self.prefix_sum[stop] - self.prefix_sum[start])

    def mean_std(self, start: int, stop: int) -> tuple[float, float]:
        """Mean and sample standard deviation of ``series[start:stop]`` in O(1).

        Implements lines 3–5 of Algorithm 2 (``ddof=1``); a length-1 window
        has standard deviation 0.
        """
        n = stop - start
        if n <= 0:
            raise ValueError(f"empty subsequence [{start}, {stop})")
        total = self.prefix_sum[stop] - self.prefix_sum[start]
        total_sq = self.prefix_sq[stop] - self.prefix_sq[start]
        mean = total / n
        if n == 1:
            return float(mean), 0.0
        # Cancellation can push the variance a hair below zero; clamp.
        variance = max((total_sq - total * total / n) / (n - 1), 0.0)
        return float(mean), float(np.sqrt(variance))

    def fast_paa(
        self,
        start: int,
        window: int,
        paa_size: int,
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    ) -> np.ndarray:
        """Z-normalized PAA of ``series[start:start + window]`` in O(w).

        This is Algorithm 2 (FastPAA) of the paper: the subsequence mean and
        standard deviation come from the prefix sums in O(1), each PAA
        coefficient from one prefix-sum difference, and the normalization
        ``(coeff - mean) / std`` is applied at the end. Constant windows
        (std below ``znorm_threshold``) map to all-zero coefficients.
        """
        window = validate_window(window, len(self.series) - start)
        paa_size = validate_paa_size(paa_size, window)
        mean, std = self.mean_std(start, start + window)
        boundaries = start + np.arange(paa_size + 1) * (window / paa_size)
        cumulative = _fractional_prefix(self.prefix_sum, self.series, boundaries)
        coefficients = np.diff(cumulative) / (window / paa_size)
        if std < constancy_cutoff(mean, znorm_threshold):
            return np.zeros(paa_size)
        return (coefficients - mean) / std

    def sliding_means_stds(self, window: int) -> tuple[np.ndarray, np.ndarray]:
        """Mean and sample std of every length-``window`` subsequence.

        Returns two arrays of length ``len(series) - window + 1``.
        """
        window = validate_window(window, len(self.series))
        totals = self.prefix_sum[window:] - self.prefix_sum[:-window]
        totals_sq = self.prefix_sq[window:] - self.prefix_sq[:-window]
        means = totals / window
        if window == 1:
            return means, np.zeros_like(means)
        variances = np.maximum((totals_sq - totals * totals / window) / (window - 1), 0.0)
        return means, np.sqrt(variances)

    def sliding_paa_matrix(
        self,
        window: int,
        paa_size: int,
        znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    ) -> np.ndarray:
        """Z-normalized PAA coefficients of *every* window, vectorized.

        Returns a ``(len(series) - window + 1, paa_size)`` matrix; row ``p``
        equals ``fast_paa(p, window, paa_size)``. This is the bulk entry
        point used by the sliding-window discretizer: the relative segment
        boundaries are shared by all windows, so the whole matrix is a pair
        of fancy-indexed prefix-sum lookups.
        """
        window = validate_window(window, len(self.series))
        paa_size = validate_paa_size(paa_size, window)
        n_windows = len(self.series) - window + 1
        return sliding_paa_rows(
            self.prefix_sum,
            self.prefix_sq,
            self.series,
            0,
            n_windows,
            window,
            paa_size,
            znorm_threshold,
        )


def sliding_paa_rows(
    prefix_sum: np.ndarray,
    prefix_sq: np.ndarray,
    values: np.ndarray,
    start: int,
    stop: int,
    window: int,
    paa_size: int,
    znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    *,
    origin: int = 0,
) -> np.ndarray:
    """Z-normalized PAA rows for window starts in ``[start, stop)``.

    Operates directly on pre-built prefix sums so that the batch discretizer
    (:class:`CumulativeStats`) and the streaming engine's shared stream state
    run the *same* floating-point operations — row ``i`` is bitwise equal to
    ``fast_paa(start + i, window, paa_size)``. Callers must guarantee
    ``origin <= start <= stop`` and ``stop + window - 1 <= origin +
    len(values)``.

    ``origin`` is the global stream index of ``values[0]``: an evicted
    stream state passes its retained arrays with their offset, while
    ``start``/``stop`` stay global. Window positions are then formed from
    the *global* indices, which keeps the fractional-boundary float
    arithmetic — and so every output bit — identical to the unevicted
    computation (``start_local + relative`` and ``start_global + relative``
    round differently for fractional segment widths).
    """
    starts = np.arange(start, stop)
    relative = np.arange(paa_size + 1) * (window / paa_size)
    positions = starts[:, None] + relative[None, :]
    cumulative = _fractional_prefix(prefix_sum, values, positions, origin)
    coefficients = np.diff(cumulative, axis=1) / (window / paa_size)
    local = starts - origin
    totals = prefix_sum[local + window] - prefix_sum[local]
    totals_sq = prefix_sq[local + window] - prefix_sq[local]
    means = totals / window
    if window == 1:
        stds = np.zeros_like(means)
    else:
        variances = np.maximum((totals_sq - totals * totals / window) / (window - 1), 0.0)
        stds = np.sqrt(variances)
    constant = constancy_mask(means, stds, znorm_threshold)
    safe_stds = np.where(constant, 1.0, stds)
    normalized = (coefficients - means[:, None]) / safe_stds[:, None]
    normalized[constant] = 0.0
    return normalized


def znorm_paa(
    subsequence: np.ndarray,
    paa_size: int,
    znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
) -> np.ndarray:
    """Z-normalize then PAA — the per-subsequence reference path.

    Matches ``CumulativeStats.fast_paa`` to numerical precision (the PAA of
    a z-normalized subsequence equals the z-normalization of the PAA, since
    both operations are affine).
    """
    return paa(znorm(np.asarray(subsequence, dtype=np.float64), znorm_threshold), paa_size)
