"""Gaussian breakpoint tables (Section 4.1) and the merged multi-resolution
table used for fast multi-alphabet SAX (Section 6.2.2).

A SAX alphabet of size ``a`` partitions the real line into ``a`` regions that
are equiprobable under the standard normal distribution; the ``a - 1``
boundaries are the Gaussian quantiles ``ppf(i / a)``.

For the ensemble, words must be produced for *every* alphabet size in
``[2, amax]``. :class:`MultiResolutionAlphabet` merges all the breakpoint
tables into one sorted array; a single binary search then locates the
interval of a PAA coefficient, and a precomputed symbol matrix maps that
interval to its symbol under each alphabet size simultaneously — the symbol
matrix of Figure 6 in the paper.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.stats import norm

from repro.utils.validation import validate_alphabet_size


@lru_cache(maxsize=64)
def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """Return the ``a - 1`` equiprobable Gaussian breakpoints for alphabet ``a``.

    The returned array is cached and marked read-only; callers must copy
    before mutating.
    """
    alphabet_size = validate_alphabet_size(alphabet_size)
    quantiles = np.arange(1, alphabet_size) / alphabet_size
    breakpoints = norm.ppf(quantiles)
    breakpoints.flags.writeable = False
    return breakpoints


def symbol_indices(values: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Map values to 0-based symbol indices under a single alphabet size.

    Regions are closed on the left (``[beta_i, beta_{i+1})``), matching the
    paper's Figure 3, so the index is the number of breakpoints ``<= value``.
    """
    breakpoints = gaussian_breakpoints(alphabet_size)
    return np.searchsorted(breakpoints, np.asarray(values, dtype=np.float64), side="right")


class MultiResolutionAlphabet:
    """Merged breakpoint table covering every alphabet size in ``[amin, amax]``.

    Parameters
    ----------
    max_alphabet_size:
        Largest alphabet size (``amax`` in the paper).
    min_alphabet_size:
        Smallest alphabet size; the paper always uses 2.

    Notes
    -----
    Let ``B`` be the sorted union of all per-alphabet breakpoints. ``B``
    induces ``len(B) + 1`` intervals; since every per-alphabet breakpoint is
    a member of ``B``, a value's symbol under *any* alphabet size is constant
    within an interval. The symbol matrix therefore has one row per interval
    and one column per alphabet size, and discretizing a value costs one
    binary search in ``B`` (``O(log len(B))``) for *all* resolutions, as in
    Section 6.2.2 of the paper.
    """

    def __init__(self, max_alphabet_size: int, min_alphabet_size: int = 2) -> None:
        self.max_alphabet_size = validate_alphabet_size(max_alphabet_size)
        self.min_alphabet_size = validate_alphabet_size(min_alphabet_size)
        if self.min_alphabet_size > self.max_alphabet_size:
            raise ValueError(
                f"min_alphabet_size={min_alphabet_size} exceeds "
                f"max_alphabet_size={max_alphabet_size}"
            )
        sizes = range(self.min_alphabet_size, self.max_alphabet_size + 1)
        merged = np.unique(np.concatenate([gaussian_breakpoints(a) for a in sizes]))
        merged.flags.writeable = False
        #: Sorted union of all breakpoints ("summary" line of Figure 6).
        self.merged_breakpoints = merged
        #: ``symbol_matrix[i, j]`` = symbol index of interval ``i`` under
        #: alphabet size ``min_alphabet_size + j`` (Figure 6's symbol matrix,
        #: stored interval-major).
        self.symbol_matrix = self._build_symbol_matrix()

    def _build_symbol_matrix(self) -> np.ndarray:
        sizes = range(self.min_alphabet_size, self.max_alphabet_size + 1)
        columns = []
        for a in sizes:
            breakpoints = gaussian_breakpoints(a)
            # Interval 0 is (-inf, merged[0]); interval i >= 1 starts at
            # merged[i - 1], and because breakpoints ⊆ merged no per-alphabet
            # breakpoint falls strictly inside an interval, so the count of
            # breakpoints <= left edge is the symbol for the whole interval.
            upper = np.searchsorted(breakpoints, self.merged_breakpoints, side="right")
            columns.append(np.concatenate(([0], upper)))
        matrix = np.stack(columns, axis=1).astype(np.int64)
        matrix.flags.writeable = False
        return matrix

    @property
    def n_intervals(self) -> int:
        """Number of intervals induced by the merged breakpoints."""
        return len(self.merged_breakpoints) + 1

    def alphabet_sizes(self) -> range:
        """The inclusive range of alphabet sizes this table covers."""
        return range(self.min_alphabet_size, self.max_alphabet_size + 1)

    def interval_indices(self, values: np.ndarray) -> np.ndarray:
        """Locate the merged-table interval of each value (one binary search)."""
        return np.searchsorted(
            self.merged_breakpoints, np.asarray(values, dtype=np.float64), side="right"
        )

    def symbols_for(self, interval_idx: np.ndarray, alphabet_size: int) -> np.ndarray:
        """Symbol indices of pre-located intervals under one alphabet size."""
        alphabet_size = int(alphabet_size)
        if not self.min_alphabet_size <= alphabet_size <= self.max_alphabet_size:
            raise ValueError(
                f"alphabet_size={alphabet_size} outside table range "
                f"[{self.min_alphabet_size}, {self.max_alphabet_size}]"
            )
        column = alphabet_size - self.min_alphabet_size
        return self.symbol_matrix[np.asarray(interval_idx), column]

    def all_symbols_for(self, interval_idx: np.ndarray) -> np.ndarray:
        """Symbol indices of pre-located intervals under *every* alphabet size.

        Returns an array with one trailing axis of length
        ``max_alphabet_size - min_alphabet_size + 1`` — the per-value symbol
        sequence of Figure 6 (e.g. ``aaa``, ``abb``, ``bcd``).
        """
        return self.symbol_matrix[np.asarray(interval_idx)]
