"""SAX word computation and sliding-window discretization (Section 4.1).

``sax_word`` handles a single subsequence; ``discretize`` produces the word
of every sliding window of a series using the vectorized prefix-sum PAA and
a single ``searchsorted`` against the breakpoint table, so the whole series
is discretized without a Python-level loop over windows.

``mindist`` implements the classic SAX lower-bounding distance, used by the
HOTSAX comparator and by the property tests that pin the representation's
correctness.
"""

from __future__ import annotations

import numpy as np

from repro.sax import _kernel
from repro.sax.alphabet import index_matrix_to_words, indices_to_word, word_to_indices
from repro.sax.breakpoints import gaussian_breakpoints, symbol_indices
from repro.sax.paa import CumulativeStats, paa
from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD, znorm
from repro.utils.validation import (
    ensure_time_series,
    validate_alphabet_size,
    validate_paa_size,
    validate_window,
)


def sax_word(
    subsequence: np.ndarray,
    paa_size: int,
    alphabet_size: int,
    znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
) -> str:
    """Discretize one subsequence into a SAX word.

    The subsequence is z-normalized, reduced to ``paa_size`` PAA
    coefficients, and each coefficient mapped to a symbol via the Gaussian
    breakpoint table — Figure 3 of the paper.

    Example
    -------
    >>> import numpy as np
    >>> sax_word(np.array([-2.0, -1.0, 1.0, 2.0]), paa_size=2, alphabet_size=3)
    'ac'
    """
    values = ensure_time_series(subsequence, name="subsequence", min_length=1)
    paa_size = validate_paa_size(paa_size, len(values))
    alphabet_size = validate_alphabet_size(alphabet_size)
    coefficients = paa(znorm(values, znorm_threshold), paa_size)
    return indices_to_word(symbol_indices(coefficients, alphabet_size))


def discretize(
    series: np.ndarray,
    window: int,
    paa_size: int,
    alphabet_size: int,
    znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    stats: CumulativeStats | None = None,
) -> list[str]:
    """SAX words of every sliding window of ``series``.

    Parameters
    ----------
    series:
        Input time series ``T``.
    window:
        Sliding window length ``n``.
    paa_size, alphabet_size:
        The discretization parameters ``w`` and ``a``.
    znorm_threshold:
        Constant-window guard passed through to the PAA stage.
    stats:
        Optional pre-built :class:`CumulativeStats` to share prefix sums
        across calls with different ``(w, a)`` (the ensemble's hot path).

    Returns
    -------
    list[str]
        One word per window start ``p`` in ``0 .. len(series) - window``.
    """
    return index_matrix_to_words(
        discretize_symbols(series, window, paa_size, alphabet_size, znorm_threshold, stats)
    )


def discretize_symbols(
    series: np.ndarray,
    window: int,
    paa_size: int,
    alphabet_size: int,
    znorm_threshold: float = DEFAULT_ZNORM_THRESHOLD,
    stats: CumulativeStats | None = None,
) -> np.ndarray:
    """Symbol-index matrix of every sliding window (``discretize`` sans strings).

    Row ``p`` holds the 0-based alphabet indices of window ``p``'s SAX word;
    :func:`discretize` is exactly ``index_matrix_to_words`` over this matrix.
    The integer form is the tokenizer fast path: numerosity reduction and
    word interning both operate on it, so strings are built only for the
    kept, distinct words at the grammar boundary.
    """
    series = ensure_time_series(series, name="series", min_length=2)
    window = validate_window(window, len(series))
    paa_size = validate_paa_size(paa_size, window)
    alphabet_size = validate_alphabet_size(alphabet_size)
    if stats is None:
        stats = CumulativeStats(series)
    # Kernel-dispatched (REPRO_KERNEL): the python oracle reproduces the
    # historical sliding_paa_matrix + searchsorted path verbatim; fast and
    # compiled run the seam's shared-statistics backends, pinned bitwise
    # identical downstream by the property suite.
    n_windows = len(stats.series) - window + 1
    paa_matrix = _kernel.paa_rows_block(
        stats.prefix_sum, stats.prefix_sq, stats.series,
        0, n_windows, window, paa_size, znorm_threshold,
    )
    return _kernel.interval_rows_from(paa_matrix, gaussian_breakpoints(alphabet_size))


def mindist(
    word_a: str,
    word_b: str,
    alphabet_size: int,
    window: int,
) -> float:
    """SAX MINDIST between two words (Lin et al. 2007).

    A lower bound on the Euclidean distance between the two z-normalized
    subsequences the words represent:

    ``MINDIST = sqrt(n / w) * sqrt(sum_i cell(a_i, b_i)^2)``

    where ``cell(r, c) = 0`` when the symbols are adjacent or equal, and the
    breakpoint gap ``beta_{max(r,c)-1} - beta_{min(r,c)}`` otherwise.
    """
    if len(word_a) != len(word_b):
        raise ValueError(f"words must have equal length, got {len(word_a)} and {len(word_b)}")
    alphabet_size = validate_alphabet_size(alphabet_size)
    paa_size = len(word_a)
    window = validate_window(window, max(window, 2))
    if paa_size == 0:
        return 0.0
    breakpoints = gaussian_breakpoints(alphabet_size)
    idx_a = word_to_indices(word_a)
    idx_b = word_to_indices(word_b)
    if idx_a.max(initial=0) >= alphabet_size or idx_b.max(initial=0) >= alphabet_size:
        raise ValueError("word contains symbols outside the given alphabet size")
    low = np.minimum(idx_a, idx_b)
    high = np.maximum(idx_a, idx_b)
    # np.where evaluates both branches, so clip the lookups into range; the
    # clipped values are only read where high - low > 1, which guarantees
    # the unclipped indices were already valid there.
    top = len(breakpoints) - 1
    upper = breakpoints[np.clip(high - 1, 0, top)]
    lower = breakpoints[np.clip(low, 0, top)]
    gaps = np.where(high - low <= 1, 0.0, upper - lower)
    return float(np.sqrt(window / paa_size) * np.sqrt(np.sum(gaps**2)))
