"""Numba-jitted discretization kernels (``REPRO_KERNEL=compiled``).

Import-guarded: importing this module requires numba. The seam
(:mod:`repro.sax._kernel`) catches the ImportError and re-raises with an
install hint, the same pattern as :mod:`repro.grammar._kernel_compiled`;
the sax property and differential suites skip their compiled cases when
numba is missing and run them through the exact same oracle comparisons
when it is present.

Bitwise contract: :func:`paa_rows` is a scalar transliteration of the
*reference* float operations of :func:`repro.sax.paa.sliding_paa_rows` —
including the ``prefix[k] + frac * values[k]`` fractional-boundary
interpolation with its zero-weighted value lookup — evaluated in the same
order per element, so its output matches the numpy reference bit for bit
(unlike the ``fast`` kernel's integer-stride shortcut, which is only
``==``-equal; see the seam module docstring). :func:`interval_rows_from`
is ``bisect_right``, the loop form of ``np.searchsorted(..., side="right")``:
a value equal to a breakpoint lands in the region to its right, the
closed-on-the-left convention pinned by the breakpoint-tie golden vectors.
"""

from __future__ import annotations

import numpy as np
from numba import njit


@njit(cache=True)
def _paa_rows_kernel(  # pragma: no cover - requires numba
    prefix_sum, values, start, stop, window, paa_size, means, safe_stds, constant, origin, out
):
    n_values = values.shape[0]
    last = n_values - 1
    step = window / paa_size
    for i in range(stop - start):
        if constant[i]:
            for j in range(paa_size):
                out[i, j] = 0.0
            continue
        gstart = float(start + i)
        # F(k + f) = prefix[k] + f * values[k], evaluated at the paa_size + 1
        # segment boundaries; boundary j sits at gstart + j * step, exactly
        # the positions the numpy reference forms by broadcasting.
        pos = gstart + 0.0 * step
        floor = np.floor(pos)
        k = np.int64(floor) - origin
        frac = pos - floor
        vi = k if k < last else last
        prev = prefix_sum[k] + frac * values[vi]
        mean = means[i]
        std = safe_stds[i]
        for j in range(paa_size):
            pos = gstart + (j + 1) * step
            floor = np.floor(pos)
            k = np.int64(floor) - origin
            frac = pos - floor
            vi = k if k < last else last
            cur = prefix_sum[k] + frac * values[vi]
            coefficient = (cur - prev) / step
            out[i, j] = (coefficient - mean) / std
            prev = cur


@njit(cache=True)
def _bisect_rows_kernel(breakpoints, rows, out):  # pragma: no cover - requires numba
    m = breakpoints.shape[0]
    for i in range(rows.shape[0]):
        for j in range(rows.shape[1]):
            value = rows[i, j]
            lo = 0
            hi = m
            while lo < hi:
                mid = (lo + hi) >> 1
                if value < breakpoints[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            out[i, j] = lo


def paa_rows(
    prefix_sum: np.ndarray,
    values: np.ndarray,
    start: int,
    stop: int,
    window: int,
    paa_size: int,
    means: np.ndarray,
    safe_stds: np.ndarray,
    constant: np.ndarray,
    origin: int,
) -> np.ndarray:
    """Z-normalized PAA rows, jitted; signature mirrors the ``fast`` block."""
    out = np.empty((int(stop) - int(start), int(paa_size)), dtype=np.float64)
    _paa_rows_kernel(
        np.ascontiguousarray(prefix_sum),
        np.ascontiguousarray(values),
        int(start),
        int(stop),
        int(window),
        int(paa_size),
        np.ascontiguousarray(means),
        np.ascontiguousarray(safe_stds),
        np.ascontiguousarray(constant),
        int(origin),
        out,
    )
    return out


def interval_rows_from(rows: np.ndarray, merged_breakpoints: np.ndarray) -> np.ndarray:
    """Merged-table interval of each coefficient (jitted ``bisect_right``)."""
    rows = np.ascontiguousarray(rows, dtype=np.float64)
    out = np.empty(rows.shape, dtype=np.int64)
    _bisect_rows_kernel(np.ascontiguousarray(merged_breakpoints), rows, out)
    return out
