"""Command-line interface: ``python -m repro <command>``.

Five subcommands cover the library's main workflows:

- ``detect`` — run a detector over one or more series files and print/save
  the ranked anomalies. Passing several ``--input`` files fans the batch out
  with :meth:`repro.core.ensemble.EnsembleGrammarDetector.detect_batch`;
  ``--executor {serial,thread,process}`` picks the execution backend (the
  process backend passes series through shared memory and reuses one pool
  across the run) and ``--n-jobs`` sizes it. A file that fails to load or
  detect does not abort the others: their results are still emitted, the
  failing path(s) are reported on stderr, and the exit code is nonzero.
  Results do not depend on the backend, but each file in a batch gets its
  own seed spawned from ``--seed``, so a file's batch result intentionally
  differs from a single-file run with the same seed::

      python -m repro detect --input series.csv --window 100 \\
          --method ensemble --top 3 --json out.json
      python -m repro detect --input a.csv b.csv c.csv --window 100 \\
          --method ensemble --executor process --n-jobs 4

- ``generate`` — produce the paper's synthetic workloads (planted UCR-like
  test series, appliance traces, scalability series) as CSV plus a ground
  truth sidecar::

      python -m repro generate --dataset Trace --seed 7 --out case.csv
      python -m repro generate --kind fridge --length 120000 --out trace.csv

- ``evaluate`` — run the paper's protocol (Table 4/5 row) on one dataset::

      python -m repro evaluate --dataset Wafer --cases 5 --methods ensemble gi-fix

- ``stream`` — feed a series file chunk-by-chunk through the streaming
  ensemble, optionally with bounded memory for infinite inputs:
  ``--stream-capacity`` retains only the last N points and
  ``--eviction-policy {sliding,decay}`` picks exact or generation-wise
  grammar forgetting (see the README's "Streaming on infinite inputs")::

      python -m repro stream --input feed.csv --window 100 \\
          --stream-capacity 50000 --eviction-policy sliding --chunk-size 8192

- ``serve`` — run the async serving subsystem (:mod:`repro.service`): a
  long-lived HTTP endpoint that micro-batches concurrent ``detect``
  requests onto one shared executor pool, hosts named multi-tenant
  streaming sessions, and caches results by series digest. See
  ``docs/serving.md``::

      python -m repro serve --port 8765 --executor process --n-jobs 4 \\
          --batch-window-ms 2 --max-batch 16

- ``worker`` — join a cluster scheduler as one task-at-a-time worker
  (:mod:`repro.core.cluster`). Any command run with ``--executor cluster
  --scheduler HOST:PORT`` (including ``serve``) binds a scheduler at that
  address; workers on any reachable machine dial in. See
  ``docs/deployment.md``::

      python -m repro worker --connect 10.0.0.5:9123

- ``bench`` — run the declarative benchmark matrix
  (``benchmarks/bench_matrix.toml``) through the ``benchmarks/runner``
  harness: warmup + repeated measurement (median/IQR), normalized NDJSON +
  summary records carrying a machine fingerprint and git SHA, and a
  noise-aware regression gate against the committed per-metric baselines
  in ``benchmarks/baselines/``. See ``docs/benchmarking.md``::

      python -m repro bench --list
      python -m repro bench --compare benchmarks/baselines/
      python -m repro bench --ci    # what the CI bench job runs

Every subcommand that executes work accepts the same ``--executor`` flag,
parsed by one shared helper: ``serial``, ``thread``, ``process``, or
``cluster`` (``--scheduler HOST:PORT`` binds a fixed address for remote
workers; without it a local mini-cluster of ``--n-jobs`` workers is
spawned). Unknown names are rejected up front with the list of valid
choices. Results are bitwise identical across backends.

``detect`` and ``stream`` also take ``--profile FILE``: the run executes
under :mod:`cProfile`, binary stats are dumped to ``FILE`` and a
top-25-by-cumulative-time summary is printed to stderr — the supported way
to see where a slow run spends its time (tokenizer, grammar kernel, or
density accumulation).

Series files are one value per line (CSV with a single column; a header
line is tolerated). All commands are deterministic under ``--seed``.
Executors the CLI creates are context-managed: every pool (and any shared
memory or worker fleet it manages) is released on success *and* on error
paths.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import ExitStack
from pathlib import Path

import numpy as np

from repro import __version__
from repro.core.cluster import ClusterError, run_worker
from repro.core.detector import GrammarAnomalyDetector
from repro.core.engine import EVICTION_POLICIES
from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.executors import (
    BatchItemError,
    MemberExecutor,
    as_executor,
    validate_executor_spec,
)
from repro.core.streaming import StreamingEnsembleDetector
from repro.datasets.generators import random_walk, synthetic_ecg, synthetic_eeg
from repro.datasets.planting import make_corpus, make_test_case
from repro.datasets.power import dishwasher_series, fridge_freezer_series
from repro.datasets.ucr_like import DATASETS, dataset_by_name
from repro.discord.discords import DiscordDetector
from repro.discord.hotsax import HotSaxDetector
from repro.evaluation.baselines import GIRandomDetector, GISelectDetector, gi_fix_detector
from repro.evaluation.harness import evaluate_methods_on_corpus
from repro.evaluation.reporting import write_detections_csv, write_detections_json
from repro.evaluation.tables import format_table
from repro.grammar.rra import RRADetector

#: Methods available to ``detect`` and ``evaluate``.
METHODS = ("ensemble", "gi", "gi-fix", "gi-random", "gi-select", "discord", "hotsax", "rra")


def load_series(path: str | Path) -> np.ndarray:
    """Read a one-column series file (values separated by newlines/commas)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"series file not found: {path}")
    values: list[float] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            token = line.strip().split(",")[0]
            if not token:
                continue
            try:
                values.append(float(token))
            except ValueError:
                if line_number == 1:
                    continue  # tolerate a header line
                raise ValueError(f"{path}:{line_number}: not a number: {token!r}") from None
    if len(values) < 2:
        raise ValueError(f"{path}: need at least 2 observations, got {len(values)}")
    return np.asarray(values, dtype=np.float64)


def save_series(path: str | Path, series: np.ndarray) -> None:
    """Write a one-column series file."""
    Path(path).write_text("\n".join(f"{x:.8g}" for x in series) + "\n")


#: The one ``--executor`` help string every subcommand shares (the parsing
#: helper below is the single place executor flags are interpreted).
EXECUTOR_HELP = (
    "execution backend: 'serial' (inline reference), 'thread' "
    "(GIL-releasing numpy work), 'process' (shared-memory series passing, "
    "reusable pool), or 'cluster' (dispatch to `repro worker` processes "
    "over TCP; spawns --n-jobs local workers, or binds --scheduler "
    "HOST:PORT for remote ones). Results are bitwise identical across "
    "backends. Default: derive from --n-jobs"
)


def _executor_argument(value: str) -> str:
    """Argparse type for ``--executor``: reject unknown names with the choices."""
    try:
        validate_executor_spec(value)
    except (ValueError, TypeError) as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return value


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    """Attach the shared execution-backend flags (one help string, one parser)."""
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="worker count for member/batch execution (default 1)",
    )
    parser.add_argument(
        "--executor",
        type=_executor_argument,
        default=None,
        metavar="BACKEND",
        help=EXECUTOR_HELP,
    )
    parser.add_argument(
        "--scheduler",
        metavar="HOST:PORT",
        default=None,
        help=(
            "with --executor cluster: bind the scheduler at this address and "
            "wait for externally started `repro worker --connect HOST:PORT` "
            "processes instead of spawning local ones"
        ),
    )


def open_cli_executor(args: argparse.Namespace, stack: ExitStack) -> MemberExecutor | None:
    """Build the executor the shared flags ask for; ``None`` means inline.

    The single place CLI executor flags become a live backend: the
    executor is registered on ``stack`` so every subcommand releases its
    pool (or worker fleet) on success and on error paths alike. With
    ``--executor cluster --scheduler HOST:PORT`` the scheduler is bound
    immediately and the worker bring-up line is printed to stderr.
    """
    spec = args.executor
    scheduler = getattr(args, "scheduler", None)
    if spec is None:
        if scheduler:
            raise ValueError("--scheduler requires --executor cluster")
        return None
    if scheduler:
        if spec != "cluster":
            raise ValueError(f"--scheduler requires --executor cluster, not {spec!r}")
        spec = f"cluster:{scheduler}"
    executor = as_executor(spec, None if args.n_jobs <= 1 else args.n_jobs)
    stack.enter_context(executor)
    if scheduler:
        host, port = executor.start(wait=False)
        print(
            f"cluster: scheduler listening on {host}:{port} — start workers "
            f"with: python -m repro worker --connect {host}:{port}",
            file=sys.stderr,
        )
    return executor


def build_detector(
    method: str,
    window: int,
    args: argparse.Namespace,
    executor: str | None = None,
):
    """Instantiate the requested detector with the CLI's parameters.

    ``executor`` wires an execution backend into detectors that can own one
    (the ensemble); the ``evaluate`` command instead parallelizes at the
    harness level, so it leaves this unset.
    """
    if method == "ensemble":
        return EnsembleGrammarDetector(
            window,
            max_paa_size=args.wmax,
            max_alphabet_size=args.amax,
            ensemble_size=args.ensemble_size,
            selectivity=args.selectivity,
            seed=args.seed,
            n_jobs=getattr(args, "n_jobs", 1),
            executor=executor,
        )
    if method == "gi":
        return GrammarAnomalyDetector(window, args.paa_size, args.alphabet_size)
    if method == "gi-fix":
        return gi_fix_detector(window)
    if method == "gi-random":
        return GIRandomDetector(
            window, max_paa_size=args.wmax, max_alphabet_size=args.amax, seed=args.seed
        )
    if method == "gi-select":
        return GISelectDetector(window, max_paa_size=args.wmax, max_alphabet_size=args.amax)
    if method == "discord":
        return DiscordDetector(window)
    if method == "hotsax":
        return HotSaxDetector(window, seed=args.seed)
    if method == "rra":
        return RRADetector(window, args.paa_size, args.alphabet_size)
    raise ValueError(f"unknown method {method!r}; choose from {METHODS}")


def _numbered_path(path: str | Path, index: int, count: int) -> Path:
    """Sidecar path for batch outputs: ``out.json`` -> ``out.0.json``, ``out.1.json``, ..."""
    path = Path(path)
    if count == 1:
        return path
    return path.with_suffix(f".{index}{path.suffix}")


def _emit_detections(anomalies, title: str, json_path, csv_path, metadata: dict) -> None:
    """Print one ranked-anomaly table and write the optional JSON/CSV sidecars."""
    rows = [
        [str(a.rank), str(a.position), str(a.length), f"{a.score:.4f}"] for a in anomalies
    ]
    print(format_table(["rank", "position", "length", "score"], rows, title=title))
    if json_path:
        write_detections_json(json_path, anomalies, metadata=metadata)
        print(f"wrote {json_path}")
    if csv_path:
        write_detections_csv(csv_path, anomalies)
        print(f"wrote {csv_path}")


def _run_profiled(handler, args: argparse.Namespace) -> int:
    """Run one command under :mod:`cProfile` (the ``--profile FILE`` flag).

    Binary stats land in ``args.profile`` (load them with ``pstats`` or
    ``snakeviz``); a top-25-by-cumulative-time summary goes to stderr so the
    hot path — tokenizer, grammar kernel, density scatter — is visible
    without leaving the terminal. Stats are written even when the command
    fails, so a slow *failing* run can still be diagnosed.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(handler, args)
    finally:
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        print(f"profile: stats written to {args.profile}", file=sys.stderr)


def _cmd_detect(args: argparse.Namespace) -> int:
    inputs = args.input
    # A batch run must not let one bad file abort the rest: every series
    # that loads and detects cleanly is reported no matter what its
    # neighbours do, failures are collected per file, and the exit code is
    # nonzero iff anything failed (regression-tested in tests/test_cli.py).
    failures: dict[int, str] = {}
    series_list: list[np.ndarray | None] = []
    for index, path in enumerate(inputs):
        try:
            series_list.append(load_series(path))
        except (ValueError, OSError) as error:
            # OSError covers the non-missing-file load failures too
            # (IsADirectoryError, PermissionError, ...): any unreadable
            # input is reported, not allowed to abort the batch.
            if len(inputs) == 1:
                raise
            failures[index] = str(error)
            series_list.append(None)
    loadable = [(index, series) for index, series in enumerate(series_list) if series is not None]
    results: list = [None] * len(inputs)
    # Every executor (and the shared memory it publishes) is released by the
    # stack on success and on every exception path — including a failure
    # between batch calls — so no pool or /dev/shm segment outlives the
    # command (regression-tested in tests/test_cli.py).
    with ExitStack() as stack:
        executor = open_cli_executor(args, stack)
        detector = build_detector(args.method, args.window, args, executor=executor)
        if hasattr(detector, "close"):
            stack.callback(detector.close)
        if len(inputs) > 1 and hasattr(detector, "detect_batch"):
            # Many independent series: the engine's batch fan-out over the
            # selected executor backend, identical to running each series
            # serially. Labels make a failing file identifiable, and
            # return_exceptions keeps one failing series from aborting the
            # others — its error lands in its own result slot.
            labels = [str(inputs[index]) for index, _ in loadable]
            batch = [series for _, series in loadable]
            if isinstance(detector, EnsembleGrammarDetector):
                # The ensemble detector owns its executor (built from
                # --executor above) and reuses it across the batch. Seeds
                # are spawned over *all* inputs and passed explicitly, so a
                # file's result never depends on whether a neighbour failed
                # to load (matching the worker-failure path, which keeps
                # full-batch seed positions).
                from repro.utils.rng import spawn_rngs

                all_seeds = spawn_rngs(args.seed, len(inputs))
                outcomes = detector.detect_batch(
                    batch,
                    args.top,
                    labels=labels,
                    seeds=[all_seeds[index] for index, _ in loadable],
                    return_exceptions=True,
                )
            else:
                outcomes = detector.detect_batch(
                    batch,
                    args.top,
                    n_jobs=args.n_jobs,
                    executor=executor,
                    labels=labels,
                    return_exceptions=True,
                )
            for (index, _), outcome in zip(loadable, outcomes):
                if isinstance(outcome, BatchItemError):
                    failures[index] = outcome.cause_message
                else:
                    results[index] = outcome
        else:
            if args.executor and not isinstance(detector, EnsembleGrammarDetector):
                # Baselines have no intra-series parallelism: with one input
                # (or no batch support) the flag would change nothing.
                reason = (
                    f"{args.method} does not support batch detection"
                    if len(inputs) > 1
                    else f"a single-series {args.method} run has nothing to parallelize"
                )
                print(f"note: --executor has no effect: {reason}", file=sys.stderr)
            for index, series in loadable:
                try:
                    results[index] = detector.detect(series, args.top)
                except ValueError as error:
                    if len(inputs) == 1:
                        raise
                    failures[index] = str(error)
    for index, path in enumerate(inputs):
        if results[index] is None:
            continue
        _emit_detections(
            results[index],
            title=f"{args.method} anomalies in {path} (window {args.window})",
            json_path=_numbered_path(args.json, index, len(inputs)) if args.json else None,
            csv_path=_numbered_path(args.csv, index, len(inputs)) if args.csv else None,
            metadata={
                "input": str(path),
                "method": args.method,
                "window": args.window,
                "series_length": len(series_list[index]),
            },
        )
    for index in sorted(failures):
        print(f"error: {inputs[index]}: {failures[index]}", file=sys.stderr)
    if failures:
        done = len(inputs) - len(failures)
        print(
            f"error: {len(failures)} of {len(inputs)} input file(s) failed "
            f"({done} succeeded above)",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    ground_truth: list[dict] = []
    if args.dataset:
        dataset = dataset_by_name(args.dataset)
        case = make_test_case(dataset, seed=args.seed)
        series = case.series
        ground_truth.append(
            {
                "position": case.gt_location,
                "length": case.gt_length,
                "kind": f"{args.dataset}-class-{case.anomaly_class}",
            }
        )
    elif args.kind == "fridge":
        series, truths = fridge_freezer_series(length=args.length, seed=args.seed)
        ground_truth = [
            {"position": t.position, "length": t.length, "kind": t.kind} for t in truths
        ]
    elif args.kind == "dishwasher":
        n_cycles = max(3, args.length // 400)
        series, truth = dishwasher_series(n_cycles=n_cycles, seed=args.seed)
        ground_truth = [
            {"position": truth.position, "length": truth.length, "kind": truth.kind}
        ]
    elif args.kind == "rw":
        series = random_walk(args.length, seed=args.seed)
    elif args.kind == "ecg":
        series = synthetic_ecg(args.length, seed=args.seed)
    elif args.kind == "eeg":
        series = synthetic_eeg(args.length, seed=args.seed)
    else:
        raise ValueError("generate needs --dataset or --kind")
    save_series(args.out, series)
    print(f"wrote {args.out} ({len(series)} points)")
    if ground_truth:
        sidecar = Path(args.out).with_suffix(".truth.json")
        sidecar.write_text(json.dumps(ground_truth, indent=2) + "\n")
        print(f"wrote {sidecar}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = dataset_by_name(args.dataset)
    corpus = make_corpus(dataset, n_cases=args.cases, seed=args.seed)
    factories = {
        method: (lambda window, m=method: build_detector(m, window, args))
        for method in args.methods
    }
    # Size the harness pool by --n-jobs (default 1 means "every core" once a
    # backend is named); member-level parallelism inside pooled tasks is
    # disabled by the harness, so --n-jobs bounds total workers.
    with ExitStack() as stack:
        executor = open_cli_executor(args, stack)
        results = evaluate_methods_on_corpus(
            corpus, factories, k=args.top, executor=executor
        )
    rows = [
        [name, f"{scores.average:.4f}", f"{scores.hit_rate:.2f}"]
        for name, scores in results.items()
    ]
    print(
        format_table(
            ["method", "avg Score", "HitRate"],
            rows,
            title=f"{args.dataset}: {args.cases} series, top-{args.top} candidates",
        )
    )
    if args.json:
        from repro.evaluation.reporting import write_evaluation_json

        write_evaluation_json(args.json, results)
        print(f"wrote {args.json}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    series = load_series(args.input)
    if args.chunk_size < 1:
        raise ValueError(f"chunk-size must be positive, got {args.chunk_size}")
    with ExitStack() as stack:
        # Built here, so owned here: entering it on the stack guarantees
        # the pool dies even when a mid-stream chunk is rejected.
        executor = open_cli_executor(args, stack)
        detector = stack.enter_context(
            StreamingEnsembleDetector(
                args.window,
                max_paa_size=args.wmax,
                max_alphabet_size=args.amax,
                ensemble_size=args.ensemble_size,
                selectivity=args.selectivity,
                capacity=args.stream_capacity,
                policy=args.eviction_policy,
                segments=args.segments,
                seed=args.seed,
                executor=executor,
            )
        )
        for offset in range(0, len(series), args.chunk_size):
            detector.extend(series[offset : offset + args.chunk_size])
        anomalies = detector.detect(args.top)
        horizon_start = detector.horizon_start
        live_length = detector.state.live_length
    mode = (
        "unbounded"
        if args.stream_capacity is None
        else f"capacity {args.stream_capacity}, {args.eviction_policy} eviction"
    )
    _emit_detections(
        anomalies,
        title=(
            f"streaming ensemble anomalies in {args.input} "
            f"(window {args.window}, {mode})"
        ),
        json_path=args.json,
        csv_path=args.csv,
        metadata={
            "input": str(args.input),
            "method": "streaming-ensemble",
            "window": args.window,
            "series_length": len(series),
            "stream_capacity": args.stream_capacity,
            "eviction_policy": None if args.stream_capacity is None else args.eviction_policy,
            "horizon_start": horizon_start,
            "live_length": live_length,
        },
    )
    print(
        f"stream: {len(series)} points seen, live range "
        f"[{horizon_start}, {len(series)}) ({live_length} points retained)"
    )
    return 0


def _setup_cli_logging(args: argparse.Namespace) -> None:
    from repro.obs import setup_logging

    setup_logging(log_format=args.log_format, level=args.log_level)


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here: the serving stack (asyncio, sessions, HTTP) is only
    # needed by this command.
    import asyncio

    from repro.service import DetectService
    from repro.service.http import serve
    from repro.service.snapshot import LocalSnapshotStore

    _setup_cli_logging(args)
    if args.batch_window_ms < 0:
        raise ValueError(f"batch-window-ms must be non-negative, got {args.batch_window_ms}")
    memory_budget = (
        None if args.memory_budget_mb is None else int(args.memory_budget_mb * 1024 * 1024)
    )
    snapshot_store = None if args.snapshot_dir is None else LocalSnapshotStore(args.snapshot_dir)
    if args.executor is None and args.n_jobs > 1:
        # Asking for workers without naming a backend: a long-lived service
        # wants one reusable pool, not a fresh one per micro-batch.
        args.executor = "process"

    async def _main(executor: MemberExecutor | None) -> None:
        service = DetectService(
            executor=executor,
            n_jobs=args.n_jobs,
            batch_window=args.batch_window_ms / 1000.0,
            max_batch_size=args.max_batch,
            max_pending=args.max_pending,
            cache_entries=args.cache_entries,
            max_sessions=args.max_sessions,
            idle_timeout=args.idle_timeout,
            memory_budget=memory_budget,
            snapshot_store=snapshot_store,
            snapshot_interval=args.snapshot_every,
            node_id=args.node_id,
            default_timeout=args.request_timeout,
        )

        def _ready(server) -> None:
            # The exact line scripts and the smoke tests key on; printed
            # only once the socket is bound (so --port 0 shows the real
            # ephemeral port).
            print(f"serving on http://{server.host}:{server.port}", flush=True)
            print(
                "endpoints: /v1: GET /healthz /stats /nodes /sessions[/<name>] | "
                "POST /detect /detect_batch /sessions /sessions/<name>/"
                "{append,snapshot,restore} | GET|POST /sessions/<name>/anomalies | "
                "DELETE /sessions/<name> (legacy unprefixed paths are "
                "deprecated aliases)",
                flush=True,
            )

        await serve(
            service,
            args.host,
            args.port,
            ready=_ready,
            slow_request_ms=args.slow_request_ms,
        )
        print("serve: shut down cleanly", flush=True)

    # The executor is built (and torn down) here rather than inside the
    # service, so `serve` shares the exact flag semantics of every other
    # subcommand — including `--executor cluster --scheduler HOST:PORT`,
    # which lets the HTTP front end dispatch to a worker fleet.
    with ExitStack() as stack:
        executor = open_cli_executor(args, stack)
        try:
            asyncio.run(_main(executor))
        except KeyboardInterrupt:  # pragma: no cover — non-Unix fallback path
            pass
    return 0


def _cmd_router(args: argparse.Namespace) -> int:
    # Imported here like the serve stack: only this command needs it.
    import asyncio

    from repro.service.router import SessionRouter, serve_router

    _setup_cli_logging(args)
    nodes = [node.strip() for node in args.nodes.split(",") if node.strip()]
    if not nodes:
        raise ValueError("--nodes must list at least one host:port serve node")
    router = SessionRouter(
        nodes,
        tenant_quota=args.tenant_quota,
        request_timeout=args.request_timeout,
    )

    async def _main() -> None:
        def _ready(server) -> None:
            # Mirrors the serve banner so scripts can scrape the bound port.
            print(f"routing on http://{server.host}:{server.port}", flush=True)
            print(f"nodes: {', '.join(nodes)}", flush=True)

        await serve_router(
            router,
            args.host,
            args.port,
            ready=_ready,
            slow_request_ms=args.slow_request_ms,
        )
        print("router: shut down cleanly", flush=True)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover — non-Unix fallback path
        pass
    return 0


def find_benchmarks_dir() -> Path:
    """Locate the ``benchmarks/`` tree the ``bench`` subcommand drives.

    The runner is repo tooling, not installed library code, so it is found
    rather than imported: ``$REPRO_BENCH_ROOT`` wins, then ``benchmarks/``
    under the working directory, then the checkout this module lives in
    (``src/repro/cli.py`` -> repo root). A directory only counts if it
    holds the ``runner`` package, so a stray ``benchmarks/`` folder in the
    working directory cannot shadow the real harness.
    """
    override = os.environ.get("REPRO_BENCH_ROOT")
    candidates = [Path(override)] if override else []
    candidates.append(Path.cwd() / "benchmarks")
    candidates.append(Path(__file__).resolve().parents[2] / "benchmarks")
    for candidate in candidates:
        if (candidate / "runner" / "__init__.py").is_file():
            return candidate
    raise ValueError(
        "cannot locate the benchmarks/runner harness; run from the repo "
        "checkout or set REPRO_BENCH_ROOT to its benchmarks/ directory"
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    # The runner lives under benchmarks/ (like benchlib), outside the
    # installed package: put that directory on sys.path, then hand the
    # parsed flags to runner.cli. Import errors there are real failures
    # and propagate as such.
    import importlib

    bench_dir = find_benchmarks_dir()
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    runner_cli = importlib.import_module("runner.cli")
    return runner_cli.run_bench(args, bench_dir)


def _cmd_worker(args: argparse.Namespace) -> int:
    _setup_cli_logging(args)
    return run_worker(
        args.connect,
        authkey=args.authkey,
        name=args.name,
        heartbeat=args.heartbeat,
        connect_retry=args.connect_retry,
    )


def _add_logging_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-format",
        choices=("text", "json"),
        default="text",
        help="log line format: human-readable text (default) or one JSON object per line",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum level written to stderr (default info)",
    )


def _add_slow_request_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--slow-request-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "log requests slower than MS milliseconds at WARNING (default "
            "$REPRO_SLOW_REQUEST_MS, then 1000)"
        ),
    )


def _add_detector_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    parser.add_argument("--top", type=int, default=3, help="candidates to report (default 3)")
    parser.add_argument("--wmax", type=int, default=10, help="max PAA size for sampling")
    parser.add_argument("--amax", type=int, default=10, help="max alphabet size for sampling")
    parser.add_argument("--ensemble-size", type=int, default=50, help="ensemble members N")
    parser.add_argument("--selectivity", type=float, default=0.4, help="member keep fraction tau")
    parser.add_argument("--paa-size", type=int, default=4, help="w for gi/rra methods")
    parser.add_argument("--alphabet-size", type=int, default=4, help="a for gi/rra methods")
    _add_executor_options(parser)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with the detect/generate/evaluate commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ensemble grammar induction for time series anomaly detection (EDBT 2020)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    detect = commands.add_parser("detect", help="detect anomalies in series files")
    detect.add_argument(
        "--input",
        required=True,
        nargs="+",
        help="one-column series file(s); several files run as one batch",
    )
    detect.add_argument("--window", type=int, required=True, help="sliding window length n")
    detect.add_argument("--method", choices=METHODS, default="ensemble")
    detect.add_argument("--json", help="write detections to this JSON file")
    detect.add_argument("--csv", help="write detections to this CSV file")
    detect.add_argument(
        "--profile",
        metavar="FILE",
        help=(
            "run under cProfile: write binary stats to FILE and print the "
            "top 25 functions by cumulative time to stderr"
        ),
    )
    _add_detector_options(detect)
    detect.set_defaults(handler=_cmd_detect)

    generate = commands.add_parser("generate", help="generate synthetic workloads")
    generate.add_argument("--dataset", choices=sorted(DATASETS), help="planted UCR-like test series")
    generate.add_argument(
        "--kind",
        choices=["rw", "ecg", "eeg", "fridge", "dishwasher"],
        help="raw series generator (alternative to --dataset)",
    )
    generate.add_argument("--length", type=int, default=20_000, help="series length for --kind")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output series file")
    generate.set_defaults(handler=_cmd_generate)

    stream = commands.add_parser(
        "stream",
        help="run the streaming ensemble over a series fed chunk-by-chunk",
    )
    stream.add_argument("--input", required=True, help="one-column series file")
    stream.add_argument("--window", type=int, required=True, help="sliding window length n")
    stream.add_argument(
        "--chunk-size",
        type=int,
        default=4096,
        help="points fed per extend() call (default 4096)",
    )
    stream.add_argument(
        "--stream-capacity",
        type=int,
        default=None,
        help=(
            "retain only the last N stream points (bounded memory for "
            "infinite inputs); must be at least --window. Default: unbounded"
        ),
    )
    stream.add_argument(
        "--eviction-policy",
        choices=EVICTION_POLICIES,
        default="sliding",
        help=(
            "grammar forgetting once --stream-capacity is set: 'sliding' "
            "(exact horizon, snapshot re-induction) or 'decay' (generation-"
            "segmented grammars dropped wholesale); default sliding"
        ),
    )
    stream.add_argument(
        "--segments",
        type=int,
        default=4,
        help="generations per capacity for the decay policy (default 4)",
    )
    stream.add_argument("--json", help="write detections to this JSON file")
    stream.add_argument("--csv", help="write detections to this CSV file")
    stream.add_argument(
        "--profile",
        metavar="FILE",
        help=(
            "run under cProfile: write binary stats to FILE and print the "
            "top 25 functions by cumulative time to stderr"
        ),
    )
    _add_detector_options(stream)
    stream.set_defaults(handler=_cmd_stream)

    serve = commands.add_parser(
        "serve",
        help="run the async detect service (micro-batched HTTP endpoint)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port; 0 picks an ephemeral port"
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batch coalescing window in milliseconds (default 2; 0 disables)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="largest number of requests coalesced into one batch (default 16)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=128,
        help="backpressure bound: queued requests before 429 rejection (default 128)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="LRU result-cache capacity; 0 disables caching (default 256)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="live streaming-session cap (default 64)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="evict streaming sessions idle for this many seconds (default: never)",
    )
    serve.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        help="global memory budget for streaming sessions in MiB (default: unlimited)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="default per-request deadline in seconds (default 30)",
    )
    serve.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory for session checkpoints; sharing one directory "
            "across nodes enables cross-node restore/migration (default: "
            "no checkpoints)"
        ),
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="POINTS",
        help=(
            "checkpoint a session every POINTS appended points (default: "
            "only on demand, idle eviction, and shutdown)"
        ),
    )
    serve.add_argument(
        "--node-id",
        default=None,
        help="stable node name reported under GET /v1/nodes (default 'node')",
    )
    _add_logging_options(serve)
    _add_slow_request_option(serve)
    _add_executor_options(serve)
    serve.set_defaults(handler=_cmd_serve)

    router = commands.add_parser(
        "router",
        help="route sessions across serve nodes (consistent hashing + failover)",
    )
    router.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    router.add_argument(
        "--port", type=int, default=8766, help="bind port; 0 picks an ephemeral port"
    )
    router.add_argument(
        "--nodes",
        required=True,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="comma-separated serve-node addresses (the static placement ring)",
    )
    router.add_argument(
        "--tenant-quota",
        type=int,
        default=None,
        metavar="N",
        help=(
            "max live sessions per tenant (session-name prefix before the "
            "first '.'); default: unlimited"
        ),
    )
    router.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-proxied-request deadline in seconds (default 30)",
    )
    _add_logging_options(router)
    _add_slow_request_option(router)
    router.set_defaults(handler=_cmd_router)

    worker = commands.add_parser(
        "worker",
        help="join a cluster scheduler and execute dispatched tasks",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="scheduler address (printed by --executor cluster --scheduler)",
    )
    worker.add_argument(
        "--name", default=None, help="worker name shown in scheduler stats"
    )
    worker.add_argument(
        "--authkey",
        default=None,
        help=(
            "shared connection secret; defaults to $REPRO_CLUSTER_AUTHKEY, "
            "then a development constant"
        ),
    )
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=5.0,
        help="seconds between keep-alive heartbeats while computing (default 5)",
    )
    worker.add_argument(
        "--connect-retry",
        type=float,
        default=10.0,
        help="seconds to keep retrying the initial connection (default 10)",
    )
    _add_logging_options(worker)
    worker.set_defaults(handler=_cmd_worker)

    bench = commands.add_parser(
        "bench",
        help="run the benchmark matrix with baselines and a regression gate",
    )
    bench.add_argument(
        "--matrix",
        metavar="FILE",
        default=None,
        help="matrix spec (default: benchmarks/bench_matrix.toml)",
    )
    bench.add_argument(
        "--list",
        action="store_true",
        help="print the selected matrix cells and their metrics; run nothing",
    )
    bench.add_argument(
        "--filter",
        metavar="SUBSTR",
        default=None,
        help="only cells whose id contains SUBSTR (e.g. a workload name or kernel=fast)",
    )
    bench.add_argument(
        "--tier",
        default="1",
        metavar="{1,2,all}",
        help="workload tier to run: 1 (CI subset, default), 2 (heavy), or all",
    )
    bench.add_argument(
        "--compare",
        metavar="DIR",
        default=None,
        help=(
            "after running, gate against the per-metric baselines in DIR; "
            "exit 1 on a significant regression (unless REPRO_BENCH_STRICT=0)"
        ),
    )
    bench.add_argument(
        "--update-baselines",
        action="store_true",
        help="after running, (over)write benchmarks/baselines/ from this run",
    )
    bench.add_argument(
        "--ci",
        action="store_true",
        help=(
            "the CI job's mode: tier-1 cells, compare against the committed "
            "benchmarks/baselines/, artifacts under benchmarks/results/"
        ),
    )
    bench.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="artifact directory for the NDJSON + summary (default: benchmarks/results)",
    )
    bench.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help=(
            "print a trend report from the bench_matrix.ndjson files under "
            "DIR (recursively); run nothing"
        ),
    )
    bench.add_argument(
        "--repeats", type=int, default=None, help="override every cell's repeat count"
    )
    bench.add_argument(
        "--warmup", type=int, default=None, help="override every cell's warmup count"
    )
    bench.set_defaults(handler=_cmd_bench)

    evaluate = commands.add_parser("evaluate", help="run the paper's protocol on one dataset")
    evaluate.add_argument("--dataset", required=True, choices=sorted(DATASETS))
    evaluate.add_argument("--cases", type=int, default=5, help="test series to generate")
    evaluate.add_argument(
        "--methods", nargs="+", choices=METHODS, default=["ensemble", "gi-fix", "discord"]
    )
    evaluate.add_argument("--json", help="write the evaluation to this JSON file")
    _add_detector_options(evaluate)
    evaluate.set_defaults(handler=_cmd_evaluate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "profile", None):
            return _run_profiled(args.handler, args)
        return args.handler(args)
    except (ValueError, OSError, KeyError, BatchItemError, ClusterError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover — workers stopped by ^C
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
