"""repro — Ensemble Grammar Induction for Time Series Anomaly Detection.

A full reproduction of Gao, Lin & Brif, *"Ensemble Grammar Induction For
Detecting Anomalies in Time Series"* (EDBT 2020), including every substrate
the paper builds on: SAX discretization with fast multi-resolution word
computation, Sequitur grammar induction, rule density curves, matrix-profile
discord discovery (STOMP/STAMP/HOTSAX), the paper's synthetic evaluation
corpora, and the complete evaluation harness.

Quickstart
----------
>>> import numpy as np
>>> from repro import EnsembleGrammarDetector
>>> t = np.linspace(0, 80 * np.pi, 4000)
>>> series = np.sin(t)
>>> series[2000:2100] *= 0.1  # plant an anomaly
>>> detector = EnsembleGrammarDetector(window=100, seed=0)
>>> top = detector.detect(series, k=3)[0]
>>> abs(top.position - 2000) < 150
True

Package map
-----------
- :mod:`repro.core` — the ensemble detector (Algorithm 1) and the
  single-run grammar-induction detector it generalizes.
- :mod:`repro.sax` — z-normalization, PAA/FastPAA, breakpoints, SAX words,
  numerosity reduction.
- :mod:`repro.grammar` — Sequitur and the rule density curve.
- :mod:`repro.discord` — matrix profile (brute/MASS/STAMP/STOMP) and HOTSAX.
- :mod:`repro.datasets` — synthetic UCR-like datasets, planting harness,
  appliance power simulators, scalability generators, real-UCR loader.
- :mod:`repro.evaluation` — Score/HitRate metrics, baselines, corpus runner.
"""

from repro.core import (
    Anomaly,
    AnomalyDetector,
    BatchItemError,
    ClusterExecutor,
    EnsembleGrammarDetector,
    EnsembleReport,
    GrammarAnomalyDetector,
    MemberExecutor,
    MultiResolutionDiscretizer,
    ProcessExecutor,
    SerialExecutor,
    StreamingEnsembleDetector,
    StreamingGrammarDetector,
    ThreadExecutor,
    as_executor,
    make_executor,
)
from repro.discord import DiscordDetector, HotSaxDetector, hotsax_discords, matrix_profile_stomp
from repro.grammar import (
    Grammar,
    RRADetector,
    discover_motifs,
    induce_grammar,
    rule_density_curve,
)
from repro.sax import discretize, numerosity_reduction, sax_word

__version__ = "1.0.0"

__all__ = [
    "Anomaly",
    "AnomalyDetector",
    "BatchItemError",
    "ClusterExecutor",
    "DiscordDetector",
    "EnsembleGrammarDetector",
    "EnsembleReport",
    "Grammar",
    "GrammarAnomalyDetector",
    "HotSaxDetector",
    "MemberExecutor",
    "MultiResolutionDiscretizer",
    "ProcessExecutor",
    "RRADetector",
    "SerialExecutor",
    "StreamingEnsembleDetector",
    "StreamingGrammarDetector",
    "ThreadExecutor",
    "__version__",
    "as_executor",
    "discover_motifs",
    "discretize",
    "hotsax_discords",
    "induce_grammar",
    "make_executor",
    "matrix_profile_stomp",
    "numerosity_reduction",
    "rule_density_curve",
    "sax_word",
]
