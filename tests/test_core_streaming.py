"""Unit tests for repro.core.streaming (incremental detection extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import GrammarAnomalyDetector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.streaming import StreamingEnsembleDetector, StreamingGrammarDetector


@pytest.fixture
def stream_series() -> tuple[np.ndarray, int, int]:
    series = np.sin(np.linspace(0, 60 * np.pi, 3000))
    series[1500:1600] = np.sin(np.linspace(0, 8 * np.pi, 100))
    return series, 1500, 100


class TestStreamingMatchesBatch:
    def test_density_curve_equals_batch(self, stream_series):
        """Feeding point-by-point reproduces the batch density curve."""
        series, _, _ = stream_series
        streaming = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        streaming.extend(series)
        batch = GrammarAnomalyDetector(window=100, paa_size=5, alphabet_size=5)
        assert np.array_equal(streaming.density_curve(), batch.density_curve(series))

    def test_tokens_equal_batch(self, stream_series):
        series, _, _ = stream_series
        streaming = StreamingGrammarDetector(window=100, paa_size=4, alphabet_size=4)
        streaming.extend(series)
        batch_tokens = GrammarAnomalyDetector(
            window=100, paa_size=4, alphabet_size=4
        ).tokenize(series)
        stream_tokens = streaming.tokens()
        assert stream_tokens.words == batch_tokens.words
        assert np.array_equal(stream_tokens.offsets, batch_tokens.offsets)

    def test_detection_matches_batch(self, stream_series):
        series, _, _ = stream_series
        streaming = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        streaming.extend(series)
        batch = GrammarAnomalyDetector(window=100, paa_size=5, alphabet_size=5)
        assert streaming.detect(3) == batch.detect(series, 3)

    def test_noisy_random_walk_equivalence(self, rng):
        series = np.cumsum(rng.standard_normal(800))
        streaming = StreamingGrammarDetector(window=50, paa_size=6, alphabet_size=6)
        streaming.extend(series)
        batch = GrammarAnomalyDetector(window=50, paa_size=6, alphabet_size=6)
        assert np.array_equal(streaming.density_curve(), batch.density_curve(series))


class TestStreamingBehaviour:
    def test_incremental_growth(self, stream_series):
        series, _, _ = stream_series
        detector = StreamingGrammarDetector(window=100)
        detector.extend(series[:500])
        early_tokens = detector.n_tokens
        detector.extend(series[500:])
        assert detector.n_tokens >= early_tokens
        assert len(detector) == len(series)

    def test_snapshot_mid_stream_then_continue(self, stream_series):
        """Snapshotting must not perturb the live grammar."""
        series, _, _ = stream_series
        continuous = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        continuous.extend(series)
        interrupted = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        interrupted.extend(series[:1200])
        interrupted.density_curve()  # snapshot mid-stream
        interrupted.extend(series[1200:])
        assert np.array_equal(
            continuous.density_curve(), interrupted.density_curve()
        )

    def test_no_window_yet_raises(self):
        detector = StreamingGrammarDetector(window=100)
        detector.extend(np.zeros(50))
        with pytest.raises(ValueError, match="no complete window"):
            detector.tokens()

    def test_non_finite_rejected(self):
        detector = StreamingGrammarDetector(window=10)
        with pytest.raises(ValueError, match="finite"):
            detector.append(float("nan"))

    def test_anomaly_found_online(self, stream_series):
        series, position, length = stream_series
        detector = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        detector.extend(series)
        anomalies = detector.detect(3)
        assert any(abs(a.position - position) <= 2 * length for a in anomalies)


class TestStreamingEnsemble:
    def test_parameter_bag_sampled_once(self):
        detector = StreamingEnsembleDetector(window=100, ensemble_size=8, seed=0)
        assert len(detector.parameters) == 8
        assert len(set(detector.parameters)) == 8

    def test_detects_planted_anomaly(self, stream_series):
        series, position, length = stream_series
        detector = StreamingEnsembleDetector(window=100, ensemble_size=10, seed=1)
        detector.extend(series)
        anomalies = detector.detect(3)
        assert any(abs(a.position - position) <= 2 * length for a in anomalies)

    def test_matches_batch_ensemble_semantics(self, stream_series):
        """With the same member parameters, streaming ensemble == batch
        Algorithm 1 combination."""
        series, _, _ = stream_series
        streaming = StreamingEnsembleDetector(window=100, ensemble_size=6, seed=3)
        streaming.extend(series)
        stream_curve = streaming.density_curve()

        from repro.core.combiners import combine_curves
        from repro.core.selection import normalize_curve, select_by_std

        member_curves = [
            GrammarAnomalyDetector(100, w, a).density_curve(series)
            for w, a in streaming.parameters
        ]
        kept = select_by_std(member_curves, 0.4)
        expected = combine_curves([normalize_curve(member_curves[i]) for i in kept])
        assert np.allclose(stream_curve, expected)

    def test_validation(self):
        with pytest.raises(ValueError, match="ensemble_size"):
            StreamingEnsembleDetector(window=100, ensemble_size=0)
        with pytest.raises(ValueError, match="selectivity"):
            StreamingEnsembleDetector(window=100, selectivity=0.0)

    def test_detect_before_full_window_raises(self):
        detector = StreamingEnsembleDetector(window=100, ensemble_size=4, seed=0)
        detector.extend(np.zeros(50))
        with pytest.raises(ValueError, match="exceeds"):
            detector.detect()

    def test_exact_parity_with_batch_ensemble(self, stream_series):
        """Same seed + same configuration => the streaming ensemble's curve
        is bitwise equal to the batch Algorithm 1 curve."""
        series, _, _ = stream_series
        streaming = StreamingEnsembleDetector(window=100, ensemble_size=8, seed=5)
        streaming.extend(series[:777])
        streaming.extend(series[777:])
        # sample_parameters advances the detector's rng, so check the bag on
        # a separate, identically seeded instance.
        same_seed = EnsembleGrammarDetector(window=100, ensemble_size=8, seed=5)
        assert streaming.parameters == same_seed.sample_parameters()
        batch = EnsembleGrammarDetector(window=100, ensemble_size=8, seed=5)
        assert np.array_equal(streaming.density_curve(), batch.density_curve(series))

    def test_znorm_threshold_and_numerosity_are_plumbed(self, stream_series):
        """Regression: StreamingEnsembleDetector used to silently drop
        znorm_threshold and numerosity, constructing members with defaults
        and diverging from an identically configured batch ensemble."""
        series, _, _ = stream_series
        for numerosity in ("exact", "none"):
            streaming = StreamingEnsembleDetector(
                window=100,
                ensemble_size=6,
                seed=7,
                znorm_threshold=0.05,
                numerosity=numerosity,
            )
            streaming.extend(series)
            for member in streaming.members:
                assert member.znorm_threshold == 0.05
                assert member.numerosity == numerosity
            batch = EnsembleGrammarDetector(
                window=100,
                ensemble_size=6,
                seed=7,
                znorm_threshold=0.05,
                numerosity=numerosity,
            )
            assert np.array_equal(streaming.density_curve(), batch.density_curve(series))

    def test_invalid_combiner_and_numerosity_rejected(self):
        with pytest.raises(ValueError, match="unknown combiner"):
            StreamingEnsembleDetector(window=100, combiner="average")
        with pytest.raises(ValueError, match="unknown strategy"):
            StreamingEnsembleDetector(window=100, numerosity="fuzzy")


class TestAdversarialParity:
    """Streaming-vs-batch parity on inputs built to stress the shared-state
    vectorized ingest: constancy-cutoff boundaries, fractional PAA segment
    boundaries, and arbitrary mid-stream extend() split points."""

    def _assert_member_parity(self, series, window, paa_size, alphabet_size, splits,
                              znorm_threshold=None):
        kwargs = {} if znorm_threshold is None else {"znorm_threshold": znorm_threshold}
        streaming = StreamingGrammarDetector(window, paa_size, alphabet_size, **kwargs)
        previous = 0
        for split in list(splits) + [len(series)]:
            streaming.extend(series[previous:split])
            previous = split
        batch = GrammarAnomalyDetector(window, paa_size, alphabet_size, **kwargs)
        stream_tokens = streaming.tokens()
        batch_tokens = batch.tokenize(series)
        assert stream_tokens.words == batch_tokens.words
        assert np.array_equal(stream_tokens.offsets, batch_tokens.offsets)
        assert np.array_equal(streaming.density_curve(), batch.density_curve(series))

    def test_flat_segments_at_constancy_boundary(self):
        """Constant runs, and nearly-constant runs whose std straddles the
        relative constancy cutoff, must discretize identically online."""
        rng = np.random.default_rng(0)
        pieces = [
            np.sin(np.linspace(0, 6 * np.pi, 300)),
            np.zeros(120),  # exactly constant at 0
            np.full(120, 5.0),  # exactly constant, non-zero mean
            5.0 + 1e-9 * rng.standard_normal(120),  # below the cutoff
            5.0 + 1e-6 * rng.standard_normal(120),  # above the cutoff
            np.sin(np.linspace(0, 6 * np.pi, 300)),
        ]
        series = np.concatenate(pieces)
        self._assert_member_parity(series, 50, 5, 5, splits=[130, 131, 420, 800])

    def test_constancy_boundary_with_custom_threshold(self):
        rng = np.random.default_rng(1)
        series = np.concatenate(
            [
                np.sin(np.linspace(0, 4 * np.pi, 200)),
                1.0 + 0.009 * rng.standard_normal(200),  # sits near 0.01 cutoff
                np.sin(np.linspace(0, 4 * np.pi, 200)),
            ]
        )
        self._assert_member_parity(
            series, 40, 4, 4, splits=[77, 310, 311], znorm_threshold=0.01
        )

    def test_window_not_divisible_by_paa_size(self):
        """Fractional segment boundaries (window % paa_size != 0) exercise
        the weighted prefix-sum lookups in the streaming PAA pass."""
        series = np.cumsum(np.random.default_rng(2).standard_normal(700))
        for window, paa_size in [(10, 3), (50, 7), (23, 5)]:
            self._assert_member_parity(series, window, paa_size, 6, splits=[333])

    def test_mid_stream_split_points(self):
        """Chunk boundaries everywhere: inside the first window, right at a
        window completion, single points, and large tails."""
        series = np.sin(np.linspace(0, 30 * np.pi, 1500))
        series[700:760] *= 0.2
        splits = [1, 2, 3, 49, 50, 51, 52, 100, 101, 699, 700, 701, 1499]
        self._assert_member_parity(series, 50, 4, 4, splits=splits)

    def test_point_by_point_equals_chunked(self):
        series = np.cumsum(np.random.default_rng(3).standard_normal(400))
        pointwise = StreamingGrammarDetector(30, 4, 5)
        for value in series:
            pointwise.append(float(value))
        chunked = StreamingGrammarDetector(30, 4, 5)
        chunked.extend(series)
        assert pointwise.tokens().words == chunked.tokens().words
        assert np.array_equal(pointwise.density_curve(), chunked.density_curve())

    def test_ensemble_mid_stream_splits(self, stream_series):
        """The ensemble's grouped-by-w ingest must be split-invariant too."""
        series, _, _ = stream_series
        chunked = StreamingEnsembleDetector(window=100, ensemble_size=5, seed=2)
        for split in range(0, 3000, 701):
            chunked.extend(series[split : split + 701])
        whole = StreamingEnsembleDetector(window=100, ensemble_size=5, seed=2)
        whole.extend(series)
        assert np.array_equal(chunked.density_curve(), whole.density_curve())
