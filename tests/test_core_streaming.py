"""Unit tests for repro.core.streaming (incremental detection extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import GrammarAnomalyDetector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.streaming import StreamingEnsembleDetector, StreamingGrammarDetector


@pytest.fixture
def stream_series() -> tuple[np.ndarray, int, int]:
    series = np.sin(np.linspace(0, 60 * np.pi, 3000))
    series[1500:1600] = np.sin(np.linspace(0, 8 * np.pi, 100))
    return series, 1500, 100


class TestStreamingMatchesBatch:
    def test_density_curve_equals_batch(self, stream_series):
        """Feeding point-by-point reproduces the batch density curve."""
        series, _, _ = stream_series
        streaming = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        streaming.extend(series)
        batch = GrammarAnomalyDetector(window=100, paa_size=5, alphabet_size=5)
        assert np.array_equal(streaming.density_curve(), batch.density_curve(series))

    def test_tokens_equal_batch(self, stream_series):
        series, _, _ = stream_series
        streaming = StreamingGrammarDetector(window=100, paa_size=4, alphabet_size=4)
        streaming.extend(series)
        batch_tokens = GrammarAnomalyDetector(
            window=100, paa_size=4, alphabet_size=4
        ).tokenize(series)
        stream_tokens = streaming.tokens()
        assert stream_tokens.words == batch_tokens.words
        assert np.array_equal(stream_tokens.offsets, batch_tokens.offsets)

    def test_detection_matches_batch(self, stream_series):
        series, _, _ = stream_series
        streaming = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        streaming.extend(series)
        batch = GrammarAnomalyDetector(window=100, paa_size=5, alphabet_size=5)
        assert streaming.detect(3) == batch.detect(series, 3)

    def test_noisy_random_walk_equivalence(self, rng):
        series = np.cumsum(rng.standard_normal(800))
        streaming = StreamingGrammarDetector(window=50, paa_size=6, alphabet_size=6)
        streaming.extend(series)
        batch = GrammarAnomalyDetector(window=50, paa_size=6, alphabet_size=6)
        assert np.array_equal(streaming.density_curve(), batch.density_curve(series))


class TestStreamingBehaviour:
    def test_incremental_growth(self, stream_series):
        series, _, _ = stream_series
        detector = StreamingGrammarDetector(window=100)
        detector.extend(series[:500])
        early_tokens = detector.n_tokens
        detector.extend(series[500:])
        assert detector.n_tokens >= early_tokens
        assert len(detector) == len(series)

    def test_snapshot_mid_stream_then_continue(self, stream_series):
        """Snapshotting must not perturb the live grammar."""
        series, _, _ = stream_series
        continuous = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        continuous.extend(series)
        interrupted = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        interrupted.extend(series[:1200])
        interrupted.density_curve()  # snapshot mid-stream
        interrupted.extend(series[1200:])
        assert np.array_equal(
            continuous.density_curve(), interrupted.density_curve()
        )

    def test_no_window_yet_raises(self):
        detector = StreamingGrammarDetector(window=100)
        detector.extend(np.zeros(50))
        with pytest.raises(ValueError, match="no complete window"):
            detector.tokens()

    def test_non_finite_rejected(self):
        detector = StreamingGrammarDetector(window=10)
        with pytest.raises(ValueError, match="finite"):
            detector.append(float("nan"))

    def test_anomaly_found_online(self, stream_series):
        series, position, length = stream_series
        detector = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        detector.extend(series)
        anomalies = detector.detect(3)
        assert any(abs(a.position - position) <= 2 * length for a in anomalies)


class TestStreamingEnsemble:
    def test_parameter_bag_sampled_once(self):
        detector = StreamingEnsembleDetector(window=100, ensemble_size=8, seed=0)
        assert len(detector.parameters) == 8
        assert len(set(detector.parameters)) == 8

    def test_detects_planted_anomaly(self, stream_series):
        series, position, length = stream_series
        detector = StreamingEnsembleDetector(window=100, ensemble_size=10, seed=1)
        detector.extend(series)
        anomalies = detector.detect(3)
        assert any(abs(a.position - position) <= 2 * length for a in anomalies)

    def test_matches_batch_ensemble_semantics(self, stream_series):
        """With the same member parameters, streaming ensemble == batch
        Algorithm 1 combination."""
        series, _, _ = stream_series
        streaming = StreamingEnsembleDetector(window=100, ensemble_size=6, seed=3)
        streaming.extend(series)
        stream_curve = streaming.density_curve()

        from repro.core.combiners import combine_curves
        from repro.core.selection import normalize_curve, select_by_std

        member_curves = [
            GrammarAnomalyDetector(100, w, a).density_curve(series)
            for w, a in streaming.parameters
        ]
        kept = select_by_std(member_curves, 0.4)
        expected = combine_curves([normalize_curve(member_curves[i]) for i in kept])
        assert np.allclose(stream_curve, expected)

    def test_validation(self):
        with pytest.raises(ValueError, match="ensemble_size"):
            StreamingEnsembleDetector(window=100, ensemble_size=0)
        with pytest.raises(ValueError, match="selectivity"):
            StreamingEnsembleDetector(window=100, selectivity=0.0)

    def test_detect_before_full_window_raises(self):
        detector = StreamingEnsembleDetector(window=100, ensemble_size=4, seed=0)
        detector.extend(np.zeros(50))
        with pytest.raises(ValueError, match="exceeds"):
            detector.detect()
