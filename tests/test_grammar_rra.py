"""Unit tests for repro.grammar.rra (Rare Rule Anomaly detection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.anomaly import Anomaly
from repro.grammar.rra import RRADetector, RuleInterval, rule_intervals
from repro.grammar.sequitur import induce_grammar
from repro.sax.numerosity import numerosity_reduction


@pytest.fixture
def anomalous_series() -> tuple[np.ndarray, int, int]:
    series = np.sin(np.linspace(0, 60 * np.pi, 3000))
    series[1500:1570] = np.sin(np.linspace(0, 10 * np.pi, 70))
    return series, 1500, 70


class TestRuleInterval:
    def test_length(self):
        assert RuleInterval(10, 19, 1, 3).length == 10

    def test_overlap(self):
        a = RuleInterval(0, 10, 1, 2)
        b = RuleInterval(10, 20, 2, 2)
        c = RuleInterval(11, 20, 2, 2)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            RuleInterval(5, 4, 1, 1)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError, match="frequency"):
            RuleInterval(0, 5, 1, -1)


class TestRuleIntervals:
    def _tokens_and_grammar(self, words, window):
        tokens = numerosity_reduction(words, window)
        return induce_grammar(list(tokens.words)), tokens

    def test_occurrence_intervals_enumerated(self):
        words = ["aa", "bb", "cc", "aa", "bb", "cc"]
        grammar, tokens = self._tokens_and_grammar(words, 2)
        intervals = rule_intervals(grammar, tokens, 7)
        rule_spans = [(i.start, i.end) for i in intervals if i.rule_index >= 1]
        assert (0, 3) in rule_spans
        assert (3, 6) in rule_spans

    def test_frequencies_match_occurrence_counts(self):
        words = ["aa", "bb", "cc", "aa", "bb", "cc"]
        grammar, tokens = self._tokens_and_grammar(words, 2)
        intervals = rule_intervals(grammar, tokens, 7)
        for interval in intervals:
            if interval.rule_index >= 1:
                assert interval.frequency == 2

    def test_gap_intervals_have_zero_frequency(self):
        words = (
            ["aa", "bb", "cc", "aa", "bb", "cc"]
            + ["xx", "yy", "zz"]
            + ["aa", "bb", "cc", "aa", "bb", "cc"]
        )
        grammar, tokens = self._tokens_and_grammar(words, 2)
        intervals = rule_intervals(grammar, tokens, 16)
        gaps = [i for i in intervals if i.rule_index == -1]
        assert gaps
        assert all(gap.frequency == 0 for gap in gaps)

    def test_fully_covered_series_has_no_gaps(self):
        words = ["aa", "bb"] * 8
        grammar, tokens = self._tokens_and_grammar(words, 2)
        intervals = rule_intervals(grammar, tokens, 17)
        assert not [i for i in intervals if i.rule_index == -1]


class TestRRADetector:
    def test_detects_planted_anomaly(self, anomalous_series):
        series, position, length = anomalous_series
        detector = RRADetector(window=100, paa_size=5, alphabet_size=5)
        anomalies = detector.detect(series, k=3)
        assert anomalies, "no anomalies reported"
        # The top candidates surround the planted region.
        assert any(
            a.position < position + length + 200 and position - 200 < a.position + a.length
            for a in anomalies
        ), [(a.position, a.length) for a in anomalies]

    def test_variable_length_output(self, anomalous_series):
        """RRA's selling point: candidates are not fixed to the window."""
        series, _, _ = anomalous_series
        detector = RRADetector(window=100, paa_size=5, alphabet_size=5)
        anomalies = detector.detect(series, k=3)
        lengths = {a.length for a in anomalies}
        assert any(length != 100 for length in lengths)

    def test_results_are_anomaly_records_non_overlapping(self, anomalous_series):
        series, _, _ = anomalous_series
        detector = RRADetector(window=100)
        anomalies = detector.detect(series, k=3)
        assert all(isinstance(a, Anomaly) for a in anomalies)
        for i, a in enumerate(anomalies):
            for b in anomalies[i + 1 :]:
                assert not a.overlaps(b)

    def test_rarer_candidates_rank_first(self, anomalous_series):
        series, _, _ = anomalous_series
        detector = RRADetector(window=100, paa_size=5, alphabet_size=5)
        intervals = detector.intervals(series)
        anomalies = detector.detect(series, k=2)
        frequencies = {
            (interval.start, interval.length): interval.frequency
            for interval in intervals
        }
        ranked = [
            frequencies.get((a.position, a.length)) for a in anomalies
        ]
        observed = [f for f in ranked if f is not None]
        assert observed == sorted(observed)

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="window"):
            RRADetector(window=1)
        with pytest.raises(ValueError, match="refine_top"):
            RRADetector(window=10, refine_top=0)

    def test_invalid_k(self, anomalous_series):
        series, _, _ = anomalous_series
        with pytest.raises(ValueError, match="positive"):
            RRADetector(window=100).detect(series, k=0)

    def test_deterministic(self, anomalous_series):
        series, _, _ = anomalous_series
        detector = RRADetector(window=100, paa_size=5, alphabet_size=5)
        assert detector.detect(series, 3) == detector.detect(series, 3)
