"""Executor parity suite: every backend must reproduce the serial path bitwise.

Parametrized over {serial, thread, process} × the public entry points
(detect, detect_batch, iter_detect_batch, evaluate_methods, streaming
snapshots, baseline batches). "Parity" means *bitwise* equality of anomaly
curves and identical member selection — not approximate agreement — because
all backends run the same floating-point operations on the same float64
values.

Also asserts the shared-memory hygiene contract: no ``/dev/shm`` segment
outlives an executor call, including when a worker raises.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import BatchItemError, detect_many, iter_detect_batch
from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.executors import make_executor
from repro.core.streaming import StreamingEnsembleDetector
from repro.discord.discords import DiscordDetector
from repro.discord.hotsax import HotSaxDetector
from repro.evaluation.harness import evaluate_methods, evaluate_methods_on_corpus
from repro.grammar.rra import RRADetector

WINDOW = 60
ENSEMBLE = 6
SEED = 11


@pytest.fixture(autouse=True)
def no_leaked_segments(shm_segments):
    """Every test must leave /dev/shm exactly as it found it."""
    before = shm_segments()
    yield
    assert shm_segments() == before, "leaked shared-memory segments"


@pytest.fixture
def series(rng) -> np.ndarray:
    series = np.sin(np.linspace(0, 24 * np.pi, 1400))
    series += 0.05 * rng.standard_normal(1400)
    series[500:560] = np.sin(np.linspace(0, 8 * np.pi, 60))
    return series


@pytest.fixture
def batch(rng) -> list[np.ndarray]:
    batch = []
    for i in range(3):
        series = np.sin(np.linspace(0, 24 * np.pi, 1200))
        series += 0.05 * rng.standard_normal(1200)
        position = 200 + 250 * i
        series[position : position + 60] = np.sin(np.linspace(0, 8 * np.pi, 60))
        batch.append(series)
    return batch


def _detector(**overrides) -> EnsembleGrammarDetector:
    kwargs = dict(window=WINDOW, ensemble_size=ENSEMBLE, seed=SEED)
    kwargs.update(overrides)
    return EnsembleGrammarDetector(**kwargs)


class TestDetectParity:
    def test_curves_and_member_selection_bitwise_identical(self, executor_kind, series):
        reference = _detector().ensemble_report(series, keep_member_curves=True)
        with make_executor(executor_kind, 2) as executor:
            report = _detector(executor=executor).ensemble_report(
                series, keep_member_curves=True
            )
        assert report.parameters == reference.parameters
        assert report.kept == reference.kept
        assert report.stds == reference.stds
        assert np.array_equal(report.curve, reference.curve)
        for ours, expected in zip(report.member_curves, reference.member_curves):
            assert np.array_equal(ours, expected)

    def test_detect_identical(self, executor_kind, series):
        reference = _detector().detect(series, 3)
        with make_executor(executor_kind, 2) as executor:
            assert _detector(executor=executor).detect(series, 3) == reference


class TestDetectBatchParity:
    def test_results_identical_to_serial_reference(self, executor_kind, batch):
        reference = _detector().detect_batch(batch, 3)
        with make_executor(executor_kind, 2) as executor:
            results = _detector(executor=executor).detect_batch(batch, 3)
        assert results == reference

    def test_explicit_executor_argument(self, executor_kind, batch):
        reference = _detector().detect_batch(batch, 3)
        with make_executor(executor_kind, 2) as executor:
            assert _detector().detect_batch(batch, 3, executor=executor) == reference


class TestIterDetectBatchParity:
    def test_incremental_results_identical(self, executor_kind, batch):
        reference = _detector().detect_batch(batch, 3)
        with make_executor(executor_kind, 2) as executor:
            pairs = list(_detector(executor=executor).iter_detect_batch(batch, 3))
        assert sorted(index for index, _ in pairs) == list(range(len(batch)))
        for index, anomalies in pairs:
            assert anomalies == reference[index]

    def test_module_function_matches_method(self, executor_kind, batch):
        detector = _detector()
        reference = _detector().detect_batch(batch, 2)
        with make_executor(executor_kind, 2) as executor:
            pairs = dict(iter_detect_batch(detector, batch, 2, executor=executor))
        assert [pairs[i] for i in range(len(batch))] == reference

    def test_abandoned_iterator_cleans_up(self, executor_kind, batch):
        with make_executor(executor_kind, 2) as executor:
            iterator = _detector(executor=executor).iter_detect_batch(batch, 2)
            next(iterator)
            iterator.close()
        # the autouse fixture asserts no segments leaked

    def test_arguments_validated_eagerly(self, executor_kind, batch):
        """Bad labels must raise at the call site, not at first next()."""
        with make_executor(executor_kind, 2) as executor:
            detector = _detector(executor=executor)
            with pytest.raises(ValueError, match="labels"):
                detector.iter_detect_batch(batch, 2, labels=["only-one"])

    def test_single_series_batch_parity(self, executor_kind, series):
        """A one-series batch spends the pool on members, results unchanged."""
        reference = _detector().detect_batch([series], 3)
        with make_executor(executor_kind, 2) as executor:
            detector = _detector(executor=executor)
            assert detector.detect_batch([series], 3) == reference
            assert dict(detector.iter_detect_batch([series], 3))[0] == reference[0]


class TestEvaluateMethodsParity:
    @pytest.fixture
    def corpora(self):
        from repro.datasets.planting import make_corpus
        from repro.datasets.ucr_like import dataset_by_name

        return {
            name: make_corpus(dataset_by_name(name), n_cases=2, seed=0)
            for name in ("GunPoint", "Trace")
        }

    @staticmethod
    def _factories():
        # A stateful method (the ensemble consumes its rng per case) plus a
        # stateless baseline; both must reproduce serial scores exactly.
        return {
            "ensemble": lambda window: _detector(window=window),
            "discord": lambda window: DiscordDetector(window),
        }

    def test_corpus_scores_identical(self, executor_kind, corpora):
        cases = corpora["GunPoint"]
        reference = evaluate_methods_on_corpus(cases, self._factories(), k=3)
        with make_executor(executor_kind, 2) as executor:
            results = evaluate_methods_on_corpus(
                cases, self._factories(), k=3, executor=executor
            )
        assert set(results) == set(reference)
        for name in reference:
            assert results[name].scores == reference[name].scores

    def test_pooled_harness_forces_member_serial(self):
        """Detectors shipped into pooled tasks must not nest member pools."""
        from repro.evaluation.harness import _prepare_for_pool

        assert _prepare_for_pool(_detector(n_jobs=4), "process").n_jobs == 1
        assert _prepare_for_pool(_detector(n_jobs=4), "thread").n_jobs == 1
        assert _prepare_for_pool(_detector(n_jobs=4), "serial").n_jobs == 4
        assert _prepare_for_pool(DiscordDetector(WINDOW), "process").window == WINDOW
        # Executor-configured detectors are defused too (thread tasks ship
        # them by reference, so pickling alone would not strip the spec) —
        # and without ever building the pool being avoided.
        prepared = _prepare_for_pool(_detector(executor="process"), "thread")
        assert prepared._executor_spec is None
        assert prepared.executor is None

    def test_multi_corpus_shared_pool(self, executor_kind, corpora):
        reference = evaluate_methods(corpora, self._factories(), k=3)
        with make_executor(executor_kind, 2) as executor:
            results = evaluate_methods(corpora, self._factories(), k=3, executor=executor)
        assert set(results) == set(reference)
        for dataset in reference:
            for name in reference[dataset]:
                assert results[dataset][name].scores == reference[dataset][name].scores


class TestStreamingSnapshotParity:
    def test_density_curve_identical(self, executor_kind, series):
        reference = StreamingEnsembleDetector(window=WINDOW, ensemble_size=5, seed=3)
        reference.extend(series)
        expected = reference.density_curve()
        with make_executor(executor_kind, 2) as executor:
            streaming = StreamingEnsembleDetector(
                window=WINDOW, ensemble_size=5, seed=3, executor=executor
            )
            streaming.extend(series)
            assert np.array_equal(streaming.density_curve(), expected)


class TestBaselineBatchParity:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DiscordDetector(WINDOW),
            lambda: HotSaxDetector(WINDOW, seed=2),
            lambda: RRADetector(WINDOW, 4, 4),
        ],
        ids=["discord", "hotsax", "rra"],
    )
    def test_detect_batch_identical(self, executor_kind, batch, factory):
        detector = factory()
        reference = [detector.detect(series, 2) for series in batch]
        with make_executor(executor_kind, 2) as executor:
            assert detector.detect_batch(batch, 2, executor=executor) == reference

    def test_detect_many_function(self, executor_kind, batch):
        detector = DiscordDetector(WINDOW)
        reference = [detector.detect(series, 2) for series in batch]
        with make_executor(executor_kind, 2) as executor:
            assert detect_many(detector, batch, 2, executor=executor) == reference


class TestSharedMemoryCleanup:
    def test_worker_exception_does_not_leak(self, executor_kind, batch):
        bad = list(batch) + [np.arange(10.0)]  # shorter than the window
        with make_executor(executor_kind, 2) as executor:
            with pytest.raises(BatchItemError) as excinfo:
                _detector(executor=executor).detect_batch(
                    bad, 3, labels=[f"s{i}.csv" for i in range(len(bad))]
                )
        assert excinfo.value.index == len(bad) - 1
        assert excinfo.value.label == f"s{len(bad) - 1}.csv"
        # the autouse fixture asserts no segments leaked

    def test_detect_many_exception_does_not_leak(self, executor_kind, batch):
        bad = [batch[0], np.arange(5.0)]
        detector = DiscordDetector(WINDOW)
        with make_executor(executor_kind, 2) as executor:
            with pytest.raises(BatchItemError) as excinfo:
                detector.detect_batch(bad, 2, executor=executor)
        assert excinfo.value.index == 1
