"""Edge-case tests for the ensemble pipeline and combine_and_detect."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import EnsembleGrammarDetector, combine_and_detect


@pytest.fixture
def planted() -> tuple[np.ndarray, int, int]:
    series = np.sin(np.linspace(0, 60 * np.pi, 3000))
    series[1500:1600] = np.sin(np.linspace(0, 8 * np.pi, 100))
    return series, 1500, 100


class TestCombineAndDetect:
    def test_equals_full_detector(self, planted):
        """combine_and_detect on the report's member curves reproduces the
        detector's own output for matching tau/combiner. Two detectors with
        the same seed are used because each detection call consumes one
        parameter sample from the detector's stream."""
        series, _, _ = planted
        reporter = EnsembleGrammarDetector(window=100, ensemble_size=12, seed=4)
        fresh = EnsembleGrammarDetector(window=100, ensemble_size=12, seed=4)
        report = reporter.ensemble_report(series, keep_member_curves=True)
        derived = combine_and_detect(
            list(report.member_curves), 100, k=3, selectivity=0.4
        )
        assert derived == fresh.detect(series, k=3)

    def test_prefix_is_valid_smaller_ensemble(self, planted):
        """A prefix of the sampled members equals running a smaller N with
        the same (prefix) parameter sample — the Tables 10/11 mechanism."""
        series, _, _ = planted
        detector = EnsembleGrammarDetector(window=100, ensemble_size=12, seed=4)
        report = detector.ensemble_report(series, keep_member_curves=True)
        prefix_curves = list(report.member_curves[:5])
        derived = combine_and_detect(prefix_curves, 100, k=3)
        assert 1 <= len(derived) <= 3
        # Consistency: derived candidates lie within the series.
        for anomaly in derived:
            assert 0 <= anomaly.position <= len(series) - 100

    def test_single_member(self, planted):
        series, _, _ = planted
        detector = EnsembleGrammarDetector(window=100, ensemble_size=3, seed=0)
        report = detector.ensemble_report(series, keep_member_curves=True)
        result = combine_and_detect([report.member_curves[0]], 100, k=2)
        assert len(result) >= 1

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            combine_and_detect([], 100)

    def test_ablation_switches(self, planted):
        series, _, _ = planted
        detector = EnsembleGrammarDetector(window=100, ensemble_size=8, seed=1)
        report = detector.ensemble_report(series, keep_member_curves=True)
        curves = list(report.member_curves)
        raw = combine_and_detect(
            curves, 100, select_members=False, normalize_members=False
        )
        assert len(raw) >= 1


class TestDegenerateInputs:
    def test_constant_series(self):
        """All member curves are flat zero; the ensemble must not crash."""
        detector = EnsembleGrammarDetector(window=20, ensemble_size=6, seed=0)
        anomalies = detector.detect(np.full(300, 1.0), k=2)
        assert len(anomalies) >= 1

    def test_two_level_square_wave(self):
        """A perfectly periodic two-level signal compresses everywhere."""
        series = np.tile(np.concatenate([np.zeros(25), np.ones(25)]), 20)
        detector = EnsembleGrammarDetector(window=50, ensemble_size=8, seed=0)
        report = detector.ensemble_report(series)
        # Interior density is positive (everything is covered by rules).
        interior = report.curve[100:-100]
        assert interior.min() >= 0.0
        assert report.curve.max() <= 1.0 + 1e-12

    def test_window_exactly_half_series(self):
        series = np.concatenate(
            [np.sin(np.linspace(0, 4 * np.pi, 100)), np.cos(np.linspace(0, 4 * np.pi, 100))]
        )
        detector = EnsembleGrammarDetector(window=100, ensemble_size=4, seed=0)
        anomalies = detector.detect(series, k=3)
        # Exactly two disjoint half-series windows fit (starts 0 and 100).
        assert 1 <= len(anomalies) <= 2
        for anomaly in anomalies:
            assert anomaly.position in (0, 100)

    def test_short_series_few_windows(self):
        series = np.sin(np.linspace(0, 4 * np.pi, 60))
        detector = EnsembleGrammarDetector(
            window=20, max_paa_size=5, max_alphabet_size=5, ensemble_size=5, seed=0
        )
        anomalies = detector.detect(series, k=3)
        assert 1 <= len(anomalies) <= 3

    def test_seed_generator_instance_accepted(self, planted):
        series, _, _ = planted
        generator = np.random.default_rng(11)
        detector = EnsembleGrammarDetector(window=100, ensemble_size=5, seed=generator)
        assert len(detector.detect(series, k=1)) == 1
