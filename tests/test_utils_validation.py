"""Unit tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    MAX_ALPHABET_SIZE,
    ensure_time_series,
    validate_alphabet_size,
    validate_paa_size,
    validate_window,
)


class TestEnsureTimeSeries:
    def test_list_coerced_to_float64(self):
        out = ensure_time_series([1, 2, 3])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_existing_array_passes_through_values(self):
        data = np.array([0.5, 1.5])
        out = ensure_time_series(data)
        assert np.array_equal(out, data)

    def test_output_is_contiguous(self):
        data = np.arange(10, dtype=np.float64)[::2]
        out = ensure_time_series(data)
        assert out.flags["C_CONTIGUOUS"]

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            ensure_time_series(np.zeros((2, 2)))

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError, match="numeric"):
            ensure_time_series(["a", "b"])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            ensure_time_series([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            ensure_time_series([1.0, np.inf])

    def test_min_length_enforced(self):
        with pytest.raises(ValueError, match="at least 5"):
            ensure_time_series([1.0, 2.0], min_length=5)

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="myparam"):
            ensure_time_series(np.zeros((2, 2)), name="myparam")

    def test_empty_fails_default_min_length(self):
        with pytest.raises(ValueError, match="at least 1"):
            ensure_time_series([])


class TestValidateWindow:
    def test_valid_window_returned_as_int(self):
        assert validate_window(10, 100) == 10
        assert isinstance(validate_window(np.int64(10), 100), int)

    def test_window_equal_to_length_ok(self):
        assert validate_window(100, 100) == 100

    def test_window_too_small(self):
        with pytest.raises(ValueError, match="at least 2"):
            validate_window(1, 100)

    def test_window_exceeds_length(self):
        with pytest.raises(ValueError, match="exceeds"):
            validate_window(101, 100)


class TestValidatePaaSize:
    def test_valid(self):
        assert validate_paa_size(4, 10) == 4

    def test_equal_to_window_ok(self):
        assert validate_paa_size(10, 10) == 10

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            validate_paa_size(0, 10)

    def test_exceeding_window_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            validate_paa_size(11, 10)


class TestValidateAlphabetSize:
    def test_valid_range(self):
        assert validate_alphabet_size(2) == 2
        assert validate_alphabet_size(MAX_ALPHABET_SIZE) == MAX_ALPHABET_SIZE

    def test_below_two_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            validate_alphabet_size(1)

    def test_above_max_rejected(self):
        with pytest.raises(ValueError, match="at most"):
            validate_alphabet_size(MAX_ALPHABET_SIZE + 1)
