"""Stage timing: capture semantics, runtime toggle, and bitwise parity.

The load-bearing contract is the last section: running the batch and
streaming detectors with stage timing on versus off produces bitwise
identical results — the timers wrap computations, they never alter one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.streaming import StreamingEnsembleDetector, StreamingGrammarDetector
from repro.obs import stages
from repro.obs.stages import STAGES, capture, set_stage_timing, stage_timer, stage_timing_enabled

CONFIG = dict(window=50, ensemble_size=5, max_paa_size=5, max_alphabet_size=5)


@pytest.fixture()
def timing_on():
    previous = set_stage_timing(True)
    yield
    set_stage_timing(previous)


def make_series(seed: int = 0, n: int = 600) -> np.ndarray:
    rng = np.random.default_rng(seed)
    series = np.sin(np.linspace(0.0, 12.0 * np.pi, n)) + 0.05 * rng.standard_normal(n)
    series[n // 2 : n // 2 + 40] *= 0.2
    return series


# ----------------------------------------------------------------------
# Timer and capture mechanics.
# ----------------------------------------------------------------------


def test_capture_accumulates_per_stage(timing_on):
    with capture() as timings:
        with stage_timer("grammar"):
            pass
        with stage_timer("grammar"):
            pass
        with stage_timer("density"):
            pass
    assert set(timings) == {"grammar", "density"}
    assert timings["grammar"] >= 0.0


def test_nested_captures_both_see_observations(timing_on):
    with capture() as outer:
        with stage_timer("paa"):
            pass
        with capture() as inner:
            with stage_timer("combine"):
                pass
    assert set(outer) == {"paa", "combine"}
    assert set(inner) == {"combine"}


def test_disabled_timers_record_nothing():
    previous = set_stage_timing(False)
    try:
        assert not stage_timing_enabled()
        with capture() as timings:
            with stage_timer("grammar"):
                pass
        assert timings == {}
    finally:
        set_stage_timing(previous)


def test_set_stage_timing_returns_previous():
    first = set_stage_timing(False)
    try:
        assert set_stage_timing(True) is False
        assert set_stage_timing(first) is True
    finally:
        set_stage_timing(first)


def test_detect_fills_all_five_stages(timing_on):
    series = make_series()
    with capture() as timings:
        EnsembleGrammarDetector(**CONFIG, seed=1).detect(series, 2)
    assert set(timings) == set(STAGES)  # shared sweep times paa + discretize
    with capture() as timings:
        detector = StreamingEnsembleDetector(**CONFIG, seed=1)
        detector.extend(series)
        detector.detect(2)
    assert set(timings) == set(STAGES)


def test_observations_land_in_the_shared_histogram(timing_on):
    child = stages._children["density"]
    _, _, before = child.snapshot()
    with stage_timer("density"):
        pass
    _, _, after = child.snapshot()
    assert after == before + 1


# ----------------------------------------------------------------------
# Bitwise parity: telemetry must never change a result.
# ----------------------------------------------------------------------


def _run_batch(series: np.ndarray):
    detector = EnsembleGrammarDetector(**CONFIG, seed=3)
    return detector.detect(series, 3), detector.density_curve(series)


def _run_streaming(series: np.ndarray):
    detector = StreamingEnsembleDetector(**CONFIG, seed=3)
    for offset in range(0, len(series), 150):
        detector.extend(series[offset : offset + 150])
    return detector.detect(3), detector.density_curve()


def _run_streaming_member(series: np.ndarray):
    detector = StreamingGrammarDetector(window=50, paa_size=4, alphabet_size=4)
    detector.extend(series)
    return detector.density_curve()


@pytest.mark.parametrize(
    "run", [_run_batch, _run_streaming, _run_streaming_member],
    ids=["batch", "streaming-ensemble", "streaming-member"],
)
def test_timing_on_off_bitwise_parity(run):
    series = make_series(seed=7)
    previous = set_stage_timing(True)
    try:
        with_timing = run(series)
        set_stage_timing(False)
        without_timing = run(series)
    finally:
        set_stage_timing(previous)
    flat_on = with_timing if isinstance(with_timing, tuple) else (with_timing,)
    flat_off = without_timing if isinstance(without_timing, tuple) else (without_timing,)
    for on, off in zip(flat_on, flat_off):
        if isinstance(on, np.ndarray):
            assert np.array_equal(on, off)
        else:
            assert on == off
