"""Unit and property tests for repro.sax.breakpoints."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy.stats import norm

from repro.sax.breakpoints import (
    MultiResolutionAlphabet,
    gaussian_breakpoints,
    symbol_indices,
)


class TestGaussianBreakpoints:
    def test_alphabet_three_matches_paper_figure_3(self):
        """The paper's Figure 3 table: a=3 -> breakpoints (-0.43, 0.43)."""
        breakpoints = gaussian_breakpoints(3)
        assert breakpoints == pytest.approx([-0.43, 0.43], abs=0.005)

    def test_alphabet_two_single_zero(self):
        assert gaussian_breakpoints(2) == pytest.approx([0.0], abs=1e-12)

    def test_alphabet_four_matches_paper_figure_3(self):
        breakpoints = gaussian_breakpoints(4)
        assert breakpoints == pytest.approx([-0.67, 0.0, 0.67], abs=0.005)

    @given(st.integers(2, 26))
    def test_count_and_monotone(self, a):
        breakpoints = gaussian_breakpoints(a)
        assert len(breakpoints) == a - 1
        assert np.all(np.diff(breakpoints) > 0)

    @given(st.integers(2, 26))
    def test_equiprobable_regions(self, a):
        """Each region has mass 1/a under the standard normal."""
        breakpoints = gaussian_breakpoints(a)
        edges = np.concatenate(([-np.inf], breakpoints, [np.inf]))
        masses = np.diff(norm.cdf(edges))
        assert np.allclose(masses, 1.0 / a, atol=1e-12)

    @given(st.integers(2, 26))
    def test_symmetric_about_zero(self, a):
        breakpoints = gaussian_breakpoints(a)
        assert np.allclose(breakpoints, -breakpoints[::-1], atol=1e-12)

    def test_cached_array_readonly(self):
        breakpoints = gaussian_breakpoints(5)
        with pytest.raises(ValueError):
            breakpoints[0] = 0.0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            gaussian_breakpoints(1)
        with pytest.raises(ValueError):
            gaussian_breakpoints(27)


class TestSymbolIndices:
    def test_paper_figure_3_regions(self):
        """a=3: (-inf,-0.43) -> a, [-0.43,0.43) -> b, [0.43,inf) -> c."""
        values = np.array([-1.0, 0.0, 1.0])
        assert symbol_indices(values, 3).tolist() == [0, 1, 2]

    def test_boundary_value_closed_on_left(self):
        breakpoints = gaussian_breakpoints(3)
        assert symbol_indices(np.array([breakpoints[0]]), 3).tolist() == [1]

    def test_extremes(self):
        assert symbol_indices(np.array([-100.0, 100.0]), 5).tolist() == [0, 4]

    @given(st.integers(2, 20), st.floats(-5, 5, allow_nan=False))
    def test_index_in_range(self, a, value):
        index = symbol_indices(np.array([value]), a)[0]
        assert 0 <= index < a


class TestMultiResolutionAlphabet:
    def test_merged_breakpoints_sorted_unique(self):
        table = MultiResolutionAlphabet(6)
        merged = table.merged_breakpoints
        assert np.all(np.diff(merged) > 0)

    def test_interval_count(self):
        table = MultiResolutionAlphabet(4)
        # a=2: {0}; a=3: {-0.43, 0.43}; a=4: {-0.67, 0, 0.67} -> 5 unique.
        assert table.n_intervals == 6

    def test_symbol_matrix_shape(self):
        table = MultiResolutionAlphabet(5)
        assert table.symbol_matrix.shape == (table.n_intervals, 4)

    @given(st.integers(2, 12), st.floats(-4, 4, allow_nan=False))
    def test_matches_single_resolution(self, amax, value):
        """The paper's Section 6.2.2 claim: one lookup = all resolutions."""
        table = MultiResolutionAlphabet(amax)
        interval = table.interval_indices(np.array([value]))
        for a in table.alphabet_sizes():
            fast = table.symbols_for(interval, a)[0]
            direct = symbol_indices(np.array([value]), a)[0]
            assert fast == direct, (a, value)

    def test_all_symbols_for_figure_6_shape(self):
        """Figure 6: each coefficient maps to one symbol per alphabet size."""
        table = MultiResolutionAlphabet(4)
        intervals = table.interval_indices(np.array([-1.0, -0.2, 1.0]))
        symbols = table.all_symbols_for(intervals)
        assert symbols.shape == (3, 3)
        # For a=2, value -1.0 -> 'a'(0), -0.2 -> 'a'(0), 1.0 -> 'b'(1).
        assert symbols[:, 0].tolist() == [0, 0, 1]

    def test_figure_6_symbol_sequences(self):
        """The paper's worked example: values in the three highlighted
        intervals map to sequences aaa, abb, bcd for a = 2, 3, 4."""
        table = MultiResolutionAlphabet(4)
        values = np.array([-0.8, -0.2, 0.8])  # in (-inf,-0.67), (-0.43,0), (0.67,inf)
        intervals = table.interval_indices(values)
        rows = table.all_symbols_for(intervals)
        words = ["".join("abcd"[s] for s in row) for row in rows]
        assert words == ["aaa", "abb", "bcd"]

    def test_rejects_alphabet_outside_range(self):
        table = MultiResolutionAlphabet(6, min_alphabet_size=3)
        intervals = table.interval_indices(np.array([0.0]))
        with pytest.raises(ValueError, match="outside table range"):
            table.symbols_for(intervals, 2)
        with pytest.raises(ValueError, match="outside table range"):
            table.symbols_for(intervals, 7)

    def test_min_above_max_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            MultiResolutionAlphabet(3, min_alphabet_size=5)

    def test_binary_search_cost_logarithmic(self):
        """Structural check for the O(log amax) claim: table size is linear
        in the number of distinct breakpoints, not resolutions x values."""
        table = MultiResolutionAlphabet(20)
        assert len(table.merged_breakpoints) <= sum(a - 1 for a in range(2, 21))
