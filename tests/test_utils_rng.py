"""Unit tests for repro.utils.rng and repro.utils.timing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, iter_param_combinations, spawn_rngs
from repro.utils.timing import Timer


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).standard_normal(5)
        b = ensure_rng(42).standard_normal(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).standard_normal(5)
        b = ensure_rng(2).standard_normal(5)
        assert not np.array_equal(a, b)

    def test_generator_passed_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator


class TestSpawnRngs:
    def test_count_and_types(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4
        assert all(isinstance(child, np.random.Generator) for child in children)

    def test_children_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].standard_normal(8)
        b = children[1].standard_normal(8)
        assert not np.array_equal(a, b)

    def test_deterministic_for_fixed_seed(self):
        a = [child.standard_normal(3) for child in spawn_rngs(7, 3)]
        b = [child.standard_normal(3) for child in spawn_rngs(7, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        generator = np.random.default_rng(0)
        children = spawn_rngs(generator, 3)
        assert len(children) == 3


class TestIterParamCombinations:
    def test_full_grid(self):
        combos = list(iter_param_combinations((2, 3), (2, 4)))
        assert combos == [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (3, 4)]

    def test_single_point(self):
        assert list(iter_param_combinations((5, 5), (7, 7))) == [(5, 7)]

    def test_empty_when_reversed(self):
        assert list(iter_param_combinations((3, 2), (2, 2))) == []


class TestTimer:
    def test_elapsed_non_negative(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.elapsed >= 0.0

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0
