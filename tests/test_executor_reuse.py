"""Executor reuse semantics: one pool across calls == fresh pools per call.

The point of :class:`ProcessExecutor`'s lazy-reuse design is that repeated
``detect()`` calls stop paying pool spawn/teardown; these tests pin down
that reuse changes *nothing* about the results — three consecutive calls
through one long-lived pool match three calls through three fresh pools
bit for bit (and match the serial path, which is the parity anchor).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.executors import ProcessExecutor, ThreadExecutor

WINDOW = 60
CALLS = 3


@pytest.fixture
def series_sequence(rng) -> list[np.ndarray]:
    """Three distinct inputs, one per consecutive detect() call."""
    sequence = []
    for i in range(CALLS):
        series = np.sin(np.linspace(0, 24 * np.pi, 1100))
        series += 0.05 * rng.standard_normal(1100)
        position = 150 + 300 * i
        series[position : position + 60] = np.sin(np.linspace(0, 8 * np.pi, 60))
        sequence.append(series)
    return sequence


def _detector(**overrides) -> EnsembleGrammarDetector:
    kwargs = dict(window=WINDOW, ensemble_size=6, seed=17)
    kwargs.update(overrides)
    return EnsembleGrammarDetector(**kwargs)


def _serial_reference(series_sequence) -> list:
    # One detector, three calls: each call consumes the parameter-sampling
    # rng, so the reference must replay the same call sequence.
    detector = _detector()
    return [detector.detect(series, 3) for series in series_sequence]


def test_reused_pool_matches_fresh_pools(series_sequence):
    reference = _serial_reference(series_sequence)

    with ProcessExecutor(2) as reused:
        detector = _detector(executor=reused)
        reused_results = [detector.detect(series, 3) for series in series_sequence]

    fresh_detector = _detector()
    fresh_results = []
    for series in series_sequence:
        with ProcessExecutor(2) as fresh_pool:
            # Swap a brand-new pool under the same detector so its rng
            # stream advances exactly as in the reused run.
            fresh_detector._executor = fresh_pool
            fresh_results.append(fresh_detector.detect(series, 3))
            fresh_detector._executor = None

    assert reused_results == fresh_results == reference


def test_pool_is_actually_reused_across_detect_calls(series_sequence):
    with ProcessExecutor(2) as executor:
        detector = _detector(executor=executor)
        assert not executor.pool_started
        detector.detect(series_sequence[0], 3)
        assert executor.pool_started
        first_pool = executor._pool
        detector.detect(series_sequence[1], 3)
        detector.detect(series_sequence[2], 3)
        assert executor._pool is first_pool


def test_detector_owns_spec_built_executor_and_reuses_it(series_sequence):
    detector = _detector(executor="process", n_jobs=2)
    try:
        detector.detect(series_sequence[0], 3)
        executor = detector.executor
        assert isinstance(executor, ProcessExecutor)
        assert executor.pool_started
        detector.detect(series_sequence[1], 3)
        assert detector.executor is executor  # same pool, not a new one
    finally:
        detector.close()
    assert executor.closed
    # close() is idempotent and detaches the executor.
    detector.close()
    assert detector.executor is None


def test_detector_context_manager_closes_owned_executor(series_sequence):
    with _detector(executor="thread", n_jobs=2) as detector:
        detector.detect(series_sequence[0], 3)
        executor = detector.executor
        assert isinstance(executor, ThreadExecutor)
    assert executor.closed


def test_borrowed_executor_survives_detector_close(series_sequence):
    with ThreadExecutor(2) as executor:
        detector = _detector(executor=executor)
        detector.detect(series_sequence[0], 3)
        detector.close()
        assert not executor.closed
        # The executor is still usable by others after the detector let go.
        assert executor.map(len, [series_sequence[0]]) == [len(series_sequence[0])]


def test_pickled_detector_drops_live_executor(series_sequence):
    import pickle

    with ProcessExecutor(2) as executor:
        detector = _detector(executor=executor)
        expected = detector.detect(series_sequence[0], 3)
        clone = pickle.loads(pickle.dumps(_detector(executor=executor)))
    assert clone.executor is None
    assert clone.detect(series_sequence[0], 3) == expected
