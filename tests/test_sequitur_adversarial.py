"""Adversarial, structured inputs for Sequitur.

Random-token property tests cover the average case; these sequences are the
classically tricky ones — overlapping repeats, Fibonacci words, palindromes,
long homogeneous runs abutting structure — where digram bookkeeping bugs
hide.
"""

from __future__ import annotations

import pytest

from repro.grammar.sequitur import induce_grammar


def _check_invariants(tokens: list[str]) -> None:
    grammar = induce_grammar(tokens)
    # Reconstruction.
    assert grammar.expand(0) == tokens
    # Rule utility.
    references: dict[int, int] = {i: 0 for i in range(1, grammar.n_rules)}
    for rule in grammar.rules:
        for ref in rule.references():
            references[ref] += 1
    assert all(count >= 2 for count in references.values())
    # Occurrence spans spell their rules.
    for occurrence in grammar.rule_occurrences():
        assert (
            tokens[occurrence.first_token : occurrence.last_token + 1]
            == grammar.expand(occurrence.rule_index)
        )


def fibonacci_word(n: int) -> str:
    """a, ab, aba, abaab, abaababa, ... (aperiodic, repeat-dense)."""
    previous, current = "b", "a"
    while len(current) < n:
        previous, current = current, current + previous
    return current[:n]


class TestStructuredSequences:
    @pytest.mark.parametrize("run_length", [2, 3, 5, 8, 13, 21, 64, 100])
    def test_homogeneous_runs(self, run_length):
        _check_invariants(["q"] * run_length)

    @pytest.mark.parametrize("n", [10, 30, 55, 89, 144])
    def test_fibonacci_words(self, n):
        _check_invariants(list(fibonacci_word(n)))

    def test_palindrome(self):
        half = list("abcdefg")
        _check_invariants(half + half[::-1])

    def test_nested_repeats(self):
        _check_invariants(list("ababcababcababcababc"))

    def test_overlapping_triples_mixed(self):
        # Runs of equal symbols interleaved with pairs: overlap handling.
        _check_invariants(list("aaabaaabaaab"))

    def test_square_of_square(self):
        block = list("xyz") * 2
        _check_invariants(block * 4)

    def test_run_boundary_interactions(self):
        _check_invariants(list("aabbaabbaaabbb"))

    def test_two_symbol_thue_morse_prefix(self):
        # Thue-Morse is overlap-free: hard for digram replacement to win.
        word = "0"
        for _ in range(7):
            word = word + "".join("1" if c == "0" else "0" for c in word)
        _check_invariants(list(word))

    def test_increasing_then_repeated_suffix(self):
        _check_invariants(list("abcdefgh" * 1) + list("gh" * 10))

    def test_single_repeat_at_very_end(self):
        _check_invariants(list("abcdefgab"))

    def test_rule_reuse_across_distance(self):
        # The same digram reappears far apart, separated by unique tokens.
        _check_invariants(list("xy") + list("klmnop") + list("xy"))

    @pytest.mark.parametrize("period", [2, 3, 4, 7])
    def test_long_periodic_sequences_compress_logarithmically(self, period):
        base = [chr(ord("a") + i) for i in range(period)]
        tokens = base * 64
        grammar = induce_grammar(tokens)
        total = sum(len(rule.rhs) for rule in grammar.rules)
        assert total <= 10 * period + 20  # far below len(tokens)
        assert grammar.expand(0) == tokens
