"""Unit and property tests for repro.sax.alphabet and repro.sax.sax."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sax.alphabet import ALPHABET, index_matrix_to_words, indices_to_word, word_to_indices
from repro.sax.breakpoints import gaussian_breakpoints
from repro.sax.paa import CumulativeStats, paa
from repro.sax.sax import discretize, mindist, sax_word
from repro.sax.znorm import znorm

values_strategy = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


class TestAlphabetConversions:
    def test_round_trip(self):
        word = indices_to_word(np.array([0, 1, 2, 25]))
        assert word == "abcz"
        assert word_to_indices(word).tolist() == [0, 1, 2, 25]

    def test_empty_word(self):
        assert indices_to_word(np.array([], dtype=int)) == ""

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="symbol indices"):
            indices_to_word(np.array([26]))

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError, match="outside the SAX alphabet"):
            word_to_indices("aB")

    def test_matrix_to_words(self):
        matrix = np.array([[0, 1], [2, 3], [4, 5]])
        assert index_matrix_to_words(matrix) == ["ab", "cd", "ef"]

    def test_matrix_must_be_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            index_matrix_to_words(np.array([0, 1]))

    def test_alphabet_is_lowercase_latin(self):
        assert ALPHABET == "abcdefghijklmnopqrstuvwxyz"

    @given(st.lists(st.integers(0, 25), min_size=1, max_size=30))
    def test_round_trip_property(self, indices):
        word = indices_to_word(np.array(indices))
        assert word_to_indices(word).tolist() == indices


class TestSaxWord:
    def test_paper_figure_3_style_word(self):
        """A rising subsequence maps low symbols then high symbols."""
        assert sax_word(np.array([-2.0, -1.0, 1.0, 2.0]), 2, 3) == "ac"

    def test_word_length_equals_paa_size(self):
        word = sax_word(np.sin(np.linspace(0, 6, 50)), 7, 5)
        assert len(word) == 7

    def test_constant_subsequence_middle_symbols(self):
        # Zero PAA coefficients land in the middle region.
        assert sax_word(np.full(16, 3.0), 4, 3) == "bbbb"
        assert sax_word(np.full(16, 3.0), 4, 4) == "cccc"  # 0 is a breakpoint; region above

    def test_offset_amplitude_invariance(self):
        base = np.sin(np.linspace(0, 6, 64))
        assert sax_word(base, 8, 6) == sax_word(base * 17.0 + 3.0, 8, 6)

    @given(
        arrays(np.float64, st.integers(8, 64), elements=values_strategy),
        st.integers(2, 8),
        st.integers(2, 8),
    )
    def test_symbols_within_alphabet(self, values, w, a):
        word = sax_word(values, w, a)
        assert len(word) == w
        assert all(symbol in ALPHABET[:a] for symbol in word)


class TestDiscretize:
    def test_one_word_per_window(self, rng):
        series = rng.standard_normal(100)
        words = discretize(series, 20, 4, 4)
        assert len(words) == 81

    def test_matches_per_window_sax(self, rng):
        series = np.cumsum(rng.standard_normal(150))
        words = discretize(series, 25, 5, 6)
        for p in [0, 42, 125]:
            assert words[p] == sax_word(series[p : p + 25], 5, 6)

    def test_shared_stats_reuse(self, rng):
        series = rng.standard_normal(80)
        stats = CumulativeStats(series)
        with_shared = discretize(series, 16, 4, 4, stats=stats)
        without = discretize(series, 16, 4, 4)
        assert with_shared == without

    def test_window_equal_series_length(self, rng):
        series = rng.standard_normal(30)
        words = discretize(series, 30, 3, 3)
        assert len(words) == 1

    def test_invalid_window(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            discretize(rng.standard_normal(10), 11, 2, 2)

    @given(
        arrays(np.float64, st.integers(20, 100), elements=values_strategy),
        st.integers(4, 16),
        st.integers(2, 6),
        st.integers(2, 6),
    )
    def test_vectorized_matches_scalar_path(self, series, window, w, a):
        window = min(window, len(series))
        w = min(w, window)
        words = discretize(series, window, w, a)
        breakpoints = gaussian_breakpoints(a)
        # Spot-check three windows against the independent scalar path.
        # Skipped: near-constant windows (ill-conditioned normalization) and
        # windows whose PAA coefficients land exactly on a breakpoint — the
        # two paths round differently there and either symbol is valid.
        scale = max(1.0, float(np.abs(series).max()))
        for p in np.linspace(0, len(series) - window, 3).astype(int):
            segment = series[p : p + window]
            if segment.std(ddof=1) < 1e-6 * scale:
                continue
            coefficients = paa(znorm(segment), w)
            if np.min(np.abs(coefficients[:, None] - breakpoints[None, :])) < 1e-6:
                continue
            assert words[p] == sax_word(segment, w, a)


class TestMindist:
    def test_zero_for_identical_words(self):
        assert mindist("abc", "abc", 4, 12) == 0.0

    def test_zero_for_adjacent_symbols(self):
        """cell(r, c) = 0 when |r - c| <= 1 — the classic SAX table."""
        assert mindist("ab", "ba", 4, 8) == 0.0

    def test_positive_for_distant_symbols(self):
        assert mindist("aa", "cc", 3, 8) > 0.0

    def test_scales_with_window(self):
        d_small = mindist("aa", "cc", 3, 8)
        d_large = mindist("aa", "cc", 3, 32)
        assert d_large == pytest.approx(d_small * 2.0)

    def test_symmetric(self):
        assert mindist("ac", "ca", 3, 8) == mindist("ca", "ac", 3, 8)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            mindist("ab", "abc", 3, 8)

    def test_word_outside_alphabet_rejected(self):
        with pytest.raises(ValueError, match="outside the given alphabet"):
            mindist("ad", "aa", 3, 8)

    @given(
        arrays(np.float64, st.integers(16, 48), elements=values_strategy),
        arrays(np.float64, st.integers(16, 48), elements=values_strategy),
        st.integers(2, 8),
        st.integers(3, 8),
    )
    def test_lower_bounds_euclidean(self, x, y, w, a):
        """The defining SAX property: MINDIST lower-bounds the z-normalized
        Euclidean distance (Lin et al. 2007, Experiencing SAX)."""
        n = min(len(x), len(y))
        x, y = x[:n], y[:n]
        w = min(w, n)
        word_x = sax_word(x, w, a)
        word_y = sax_word(y, w, a)
        euclidean = float(np.linalg.norm(znorm(x) - znorm(y)))
        assert mindist(word_x, word_y, a, n) <= euclidean + 1e-6
