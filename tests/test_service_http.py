"""End-to-end tests of ``python -m repro serve`` (the HTTP front end).

The server runs as a real subprocess (exactly as deployed); clients drive
it over HTTP with stdlib ``urllib``. Three contracts:

- **Parity** — served ``/detect``, ``/detect_batch``, and streaming-session
  responses are bitwise identical to the equivalent direct calls (floats
  survive the JSON round trip via shortest-repr serialization).
- **Concurrency** — many simultaneous clients all get correct answers, and
  the micro-batcher actually coalesces them.
- **Shutdown hygiene** — SIGTERM mid-batch exits cleanly with no leaked
  ``/dev/shm`` segments and no orphaned executor worker processes
  (extending the PR 2/3 leak checks to the serving layer).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.streaming import StreamingEnsembleDetector

SRC_DIR = str(Path(__file__).parent.parent / "src")

CONFIG = dict(window=50, ensemble_size=5, max_paa_size=5, max_alphabet_size=5)


def make_series(seed: int, n: int = 700) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 14.0 * np.pi, n)
    series = np.sin(t) + 0.05 * rng.standard_normal(n)
    series[n // 2 : n // 2 + 60] *= 0.2
    return series


def expected_payload(anomalies) -> list[dict]:
    return [
        {"rank": a.rank, "position": a.position, "length": a.length, "score": a.score}
        for a in anomalies
    ]


def start_server(*extra_args: str) -> tuple[subprocess.Popen, int]:
    """Launch ``python -m repro serve --port 0 ...``; returns (process, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30
    while True:
        line = process.stdout.readline()
        match = re.search(r"serving on http://127\.0\.0\.1:(\d+)", line or "")
        if match:
            return process, int(match.group(1))
        if process.poll() is not None or time.monotonic() > deadline:
            process.kill()
            raise RuntimeError(f"server failed to start: {line!r}")


def stop_server(process: subprocess.Popen) -> int:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        return process.wait(timeout=30)
    finally:
        if process.poll() is None:  # pragma: no cover — hung server
            process.kill()


def request(port: int, method: str, path: str, body=None, timeout: float = 60.0):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def server():
    """One shared server (serial executor, fast coalescing) for the module."""
    process, port = start_server("--batch-window-ms", "5", "--max-batch", "16")
    yield port
    assert stop_server(process) == 0


class TestHttpBasics:
    def test_healthz(self, server):
        assert request(server, "GET", "/healthz") == (200, {"status": "ok"})

    def test_unknown_route_404(self, server):
        status, body = request(server, "GET", "/nope")
        assert status == 404
        assert body["error"]["code"] == "not-found"

    def test_wrong_method_405(self, server):
        status, body = request(server, "DELETE", "/sessions")
        assert status == 405

    def test_malformed_json_400(self, server):
        req = urllib.request.Request(
            f"http://127.0.0.1:{server}/detect", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=30)
        assert info.value.code == 400

    def test_missing_window_400(self, server):
        status, body = request(server, "POST", "/detect", {"series": [1.0, 2.0, 3.0]})
        assert status == 400
        assert "window" in body["error"]["message"]

    def test_unknown_field_400(self, server):
        status, body = request(
            server, "POST", "/detect", {"series": [1.0] * 100, "window": 10, "bogus": 1}
        )
        assert status == 400
        assert "bogus" in body["error"]["message"]

    def test_oversized_request_line_431(self, server):
        """A >64KiB request line gets a status, not a dropped connection."""
        req = urllib.request.Request(
            f"http://127.0.0.1:{server}/detect?pad=" + "x" * 70_000, method="GET"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=30)
        assert info.value.code == 431

    def test_invalid_series_is_batch_item_error(self, server):
        status, body = request(
            server,
            "POST",
            "/detect",
            {"series": [0.1, 0.2, 0.3], "window": 50, **{k: v for k, v in CONFIG.items() if k != "window"}},
        )
        assert status == 422
        assert body["error"]["code"] == "detection-failed"


class TestHttpParity:
    def test_detect_parity(self, server):
        series = make_series(1)
        status, body = request(
            server,
            "POST",
            "/detect",
            {"series": [float(v) for v in series], "k": 3, "seed": 11, **CONFIG},
        )
        assert status == 200
        direct = EnsembleGrammarDetector(seed=11, **CONFIG).detect(series, 3)
        assert body["anomalies"] == expected_payload(direct)
        assert body["cached"] is False

    def test_detect_cache_round_trip(self, server):
        series = make_series(2)
        payload = {"series": [float(v) for v in series], "k": 3, "seed": 12, **CONFIG}
        _, first = request(server, "POST", "/detect", payload)
        _, second = request(server, "POST", "/detect", payload)
        assert second["cached"] is True
        assert first["anomalies"] == second["anomalies"]

    def test_detect_batch_parity_with_partial_failure(self, server):
        series = [make_series(3), np.arange(8.0), make_series(4)]
        status, body = request(
            server,
            "POST",
            "/detect_batch",
            {"series": [[float(v) for v in s] for s in series], "k": 3, "seed": 9, **CONFIG},
        )
        assert status == 200
        assert body["failed"] == 1
        direct = EnsembleGrammarDetector(seed=9, **CONFIG).detect_batch(
            series, 3, return_exceptions=True
        )
        assert body["results"][0]["anomalies"] == expected_payload(direct[0])
        assert body["results"][2]["anomalies"] == expected_payload(direct[2])
        assert "error" in body["results"][1]

    def test_streaming_session_parity(self, server):
        series = make_series(42, 1600)
        chunks = [series[offset : offset + 400] for offset in range(0, 1600, 400)]
        status, body = request(
            server, "POST", "/sessions", {"name": "parity", "seed": 3, **CONFIG}
        )
        assert status == 200
        reference = StreamingEnsembleDetector(seed=3, **CONFIG)
        try:
            for chunk in chunks:
                status, info = request(
                    server,
                    "POST",
                    "/sessions/parity/append",
                    {"values": [float(v) for v in chunk]},
                )
                assert status == 200
                reference.extend(chunk)
                assert info["length"] == len(reference)
                status, poll = request(server, "GET", "/sessions/parity/poll?k=3")
                assert status == 200
                assert poll["anomalies"] == expected_payload(reference.detect(3))
        finally:
            status, closed = request(server, "DELETE", "/sessions/parity")
            assert status == 200
        status, listing = request(server, "GET", "/sessions")
        assert all(s["name"] != "parity" for s in listing["sessions"])

    def test_concurrent_clients_all_correct(self, server):
        """32 simultaneous clients; every response must match its direct run."""
        clients = 32
        series = [make_series(100 + i, 400) for i in range(clients)]

        def one(i):
            return request(
                server,
                "POST",
                "/detect",
                {"series": [float(v) for v in series[i]], "k": 2, "seed": 100 + i, **CONFIG},
            )

        with ThreadPoolExecutor(max_workers=clients) as pool:
            responses = list(pool.map(one, range(clients)))
        for i, (status, body) in enumerate(responses):
            assert status == 200
            direct = EnsembleGrammarDetector(seed=100 + i, **CONFIG).detect(series[i], 2)
            assert body["anomalies"] == expected_payload(direct)
        status, stats = request(server, "GET", "/stats")
        assert stats["batcher"]["submitted"] >= clients
        # Coalescing happened: strictly fewer batches than requests.
        assert stats["batcher"]["batches"] < stats["batcher"]["dispatched"]


class TestShutdownHygiene:
    """Killing the server mid-batch must leak nothing (satellite contract)."""

    def test_sigterm_mid_batch_leaves_no_shm_or_workers(self, shm_segments):
        before = shm_segments()
        process, port = start_server(
            "--executor", "process", "--n-jobs", "2", "--batch-window-ms", "2"
        )
        try:
            # A request heavy enough to still be in flight when SIGTERM lands.
            series = [float(v) for v in make_series(7, 30_000)]
            payload = {
                "series": series,
                "k": 3,
                "seed": 5,
                "window": 200,
                "ensemble_size": 10,
            }
            with ThreadPoolExecutor(max_workers=1) as pool:
                in_flight = pool.submit(request, port, "POST", "/detect", payload, 120.0)
                # Wait until the pool has spawned workers (the batch is live).
                worker_pids: list[int] = []
                deadline = time.monotonic() + 30
                while not worker_pids and time.monotonic() < deadline:
                    _, stats = request(port, "GET", "/stats")
                    worker_pids = stats["executor"]["worker_pids"]
                    time.sleep(0.05)
                assert worker_pids, "process pool never spawned"
                assert stop_server(process) == 0
                # The in-flight client sees either a completed result (the
                # graceful drain finished it) or a dropped connection.
                try:
                    in_flight.result(timeout=60)
                except Exception:
                    pass
        finally:
            stop_server(process)
        # No orphaned executor workers...
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            alive = [pid for pid in worker_pids if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.1)
        assert not alive, f"orphaned executor workers: {alive}"
        # ...and no leaked shared-memory segments.
        assert shm_segments() == before

    def test_sigterm_with_live_session_exits_clean(self, shm_segments):
        before = shm_segments()
        process, port = start_server("--executor", "process", "--n-jobs", "2")
        try:
            request(port, "POST", "/sessions", {"name": "live", "seed": 1, **CONFIG})
            request(
                port,
                "POST",
                "/sessions/live/append",
                {"values": [float(v) for v in make_series(1)]},
            )
            status, poll = request(port, "GET", "/sessions/live/poll")
            assert status == 200
        finally:
            assert stop_server(process) == 0
        assert shm_segments() == before


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover — pid reused by another user
        return True
    return True
