"""Kernel equivalence: the fast Sequitur backends against the oracle.

The contract (see ``repro/grammar/_kernel.py``): for any token sequence,
every kernel produces the identical frozen
:class:`~repro.grammar.rules.Grammar` — same rules, same numbering, same
refcounts — and the identical occurrence-span multiset. Grammar structure
depends only on the equality pattern of the tokens, so interning token
strings to integer ids is invisible to the result.

The property suite drives random (repetition-biased) token streams through
the id kernels and the reference ``_SequiturBuilder`` side by side; the
compiled kernel runs the same battery when numba is importable and is
skipped otherwise (it must never be *required*).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grammar import _kernel
from repro.grammar._kernel import FastSequitur
from repro.grammar.sequitur import GenerationalSequitur, _SequiturBuilder, induce_grammar

#: Token streams with heavy repetition (small alphabets make digram matches,
#: rule reuse, and rule-utility inlining all fire often).
token_streams = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200)

#: Fixed regressions: runs of one symbol exercise the triple-repetition
#: digram fix at every length; the last case is the paper's Eq. (4).
FIXED_STREAMS = (
    [[0] * n for n in range(1, 18)]
    + [[0, 1, 0, 1], [0, 1, 0, 1, 0, 1], [0, 1, 1, 0, 0, 1, 0, 1]]
    + [[0, 1, 2, 3, 4, 0, 1, 2]]  # ab bc aa cc ca ab bc aa
)


def _vocabulary(stream) -> list[str]:
    return [f"w{i}" for i in range(max(stream) + 1)]


def _oracle(stream):
    builder = _SequiturBuilder()
    vocabulary = _vocabulary(stream)
    for token in stream:
        builder.feed(vocabulary[token])
    return builder


def _assert_matches_oracle(builder, stream) -> None:
    """Frozen grammar, refcounts, and span multiset must match the oracle."""
    oracle = _oracle(stream)
    expected = oracle.freeze()
    actual = builder.freeze(_vocabulary(stream))
    assert actual == expected
    assert actual.rule_refcounts() == expected.rule_refcounts()
    firsts, lasts = builder.occurrence_spans()
    spans = sorted(zip(firsts.tolist(), lasts.tolist()))
    reference = sorted(zip(*(a.tolist() for a in expected.occurrence_spans())))
    assert spans == reference


class TestFastKernelEquivalence:
    @given(stream=token_streams)
    def test_feed_matches_oracle(self, stream):
        builder = FastSequitur()
        for token in stream:
            builder.feed(token)
        _assert_matches_oracle(builder, stream)

    @given(stream=token_streams)
    def test_feed_many_matches_feed(self, stream):
        one_by_one = FastSequitur()
        for token in stream:
            one_by_one.feed(token)
        batched = FastSequitur()
        batched.feed_many(np.asarray(stream, dtype=np.int64))
        assert batched.freeze(_vocabulary(stream)) == one_by_one.freeze(
            _vocabulary(stream)
        )
        assert batched.n_tokens == one_by_one.n_tokens == len(stream)

    @given(stream=token_streams, split=st.integers(min_value=0, max_value=200))
    def test_incremental_prefix_feeding(self, stream, split):
        """feed_many in two arbitrary chunks equals one pass (streaming's
        catch-up repair relies on exactly this)."""
        split = min(split, len(stream))
        chunked = FastSequitur()
        chunked.feed_many(stream[:split])
        chunked.feed_many(stream[split:])
        _assert_matches_oracle(chunked, stream)

    @pytest.mark.parametrize("stream", FIXED_STREAMS, ids=repr)
    def test_fixed_regressions(self, stream):
        builder = FastSequitur()
        builder.feed_many(stream)
        _assert_matches_oracle(builder, stream)

    def test_paper_example(self):
        """Eq. (4): R0 -> R1 cc ca R1, R1 -> ab bc aa (Table 2)."""
        words = ["ab", "bc", "aa", "cc", "ca", "ab", "bc", "aa"]
        with _kernel.use_kernel("fast"):
            grammar = induce_grammar(words)
        assert grammar.rules[0].rhs == (1, "cc", "ca", 1)
        assert grammar.rules[1].rhs == ("ab", "bc", "aa")

    @given(stream=token_streams)
    def test_memory_bytes_positive_and_grows(self, stream):
        builder = FastSequitur()
        builder.feed_many(stream)
        grown = builder.memory_bytes()
        assert grown > 0
        builder.feed_many(stream)
        assert builder.memory_bytes() >= grown


class TestInduceGrammarKernelParity:
    @given(stream=token_streams)
    def test_fast_equals_python(self, stream):
        words = [_vocabulary(stream)[token] for token in stream]
        with _kernel.use_kernel("python"):
            reference = induce_grammar(words)
        with _kernel.use_kernel("fast"):
            fast = induce_grammar(words)
        assert fast == reference

    def test_empty_and_type_errors_survive_the_fast_path(self):
        with _kernel.use_kernel("fast"):
            with pytest.raises(ValueError, match="empty token sequence"):
                induce_grammar([])
            with pytest.raises(TypeError, match="must be strings"):
                induce_grammar(["ab", 3])


class TestKernelSeam:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(_kernel.KERNEL_ENV, raising=False)
        with _kernel.use_kernel(None):
            assert _kernel.current_kernel() == "fast"

    def test_environment_selects_kernel(self, monkeypatch):
        monkeypatch.setenv(_kernel.KERNEL_ENV, "python")
        with _kernel.use_kernel(None):
            assert _kernel.current_kernel() == "python"

    def test_environment_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(_kernel.KERNEL_ENV, "turbo")
        with _kernel.use_kernel(None):
            with pytest.raises(ValueError, match="unknown grammar kernel"):
                _kernel.current_kernel()

    def test_use_kernel_restores_previous(self):
        before = _kernel.current_kernel()
        with _kernel.use_kernel("python"):
            assert _kernel.current_kernel() == "python"
        assert _kernel.current_kernel() == before

    def test_make_builder_rejects_python(self):
        with pytest.raises(ValueError, match="no id-based builder"):
            _kernel.make_builder("python")

    def test_make_builder_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown grammar kernel"):
            _kernel.make_builder("warp")

    def test_compiled_without_numba_raises_install_hint(self):
        try:
            import numba  # noqa: F401
        except ImportError:
            with pytest.raises(ImportError, match="requires numba"):
                _kernel.make_builder("compiled")
        else:
            assert _kernel.make_builder("compiled") is not None


class TestGenerationalSequiturKernels:
    def test_feed_id_requires_vocabulary(self):
        forgetter = GenerationalSequitur(4, kernel="fast")
        with pytest.raises(ValueError, match="vocabulary"):
            forgetter.feed_id(0, 0)

    def test_live_spans_requires_id_kernel(self):
        forgetter = GenerationalSequitur(4, kernel="python")
        with pytest.raises(ValueError, match="id-based kernel"):
            forgetter.live_spans()

    @given(stream=token_streams)
    def test_feed_id_matches_python_feed(self, stream):
        vocabulary = _vocabulary(stream)
        reference = GenerationalSequitur(8, kernel="python")
        fast = GenerationalSequitur(8, kernel="fast", vocabulary=vocabulary)
        for offset, token in enumerate(stream):
            reference.feed(vocabulary[token], offset)
            fast.feed_id(token, offset)
        expected = reference.live_grammars()
        actual = fast.live_grammars()
        assert [(i, g, c) for i, g, c in actual] == [(i, g, c) for i, g, c in expected]

    @given(stream=token_streams)
    def test_live_spans_match_live_grammars(self, stream):
        vocabulary = _vocabulary(stream)
        forgetter = GenerationalSequitur(8, kernel="fast", vocabulary=vocabulary)
        for offset, token in enumerate(stream):
            forgetter.feed_id(token, offset)
        grammars = {i: g for i, g, _ in forgetter.live_grammars()}
        for index, firsts, lasts, count in forgetter.live_spans():
            spans = sorted(zip(firsts.tolist(), lasts.tolist()))
            expected = sorted(zip(*(a.tolist() for a in grammars[index].occurrence_spans())))
            assert spans == expected
            assert count == grammars[index].expanded_lengths()[0]

    def test_sealing_releases_the_builder_arena(self):
        """Decay soak (the interned-word bugfix): sealed generations must not
        pin retired token storage — memory accounting stays bounded as
        generations retire, instead of accumulating one arena per seal."""
        rng = np.random.default_rng(7)
        vocabulary = [f"w{i}" for i in range(16)]
        forgetter = GenerationalSequitur(64, kernel="fast", vocabulary=vocabulary)
        readings = []
        for offset in range(6400):
            forgetter.feed_id(int(rng.integers(0, 16)), offset)
            if offset % 64 == 63:
                forgetter.drop_before(max(0, offset - 255))
                readings.append(forgetter.memory_bytes())
        assert forgetter.retired_generations > 0
        assert forgetter._current_builder is not None
        # Live state is ~4 generations throughout: the estimate must plateau,
        # not grow with the number of seals (100 generations were sealed).
        assert max(readings[50:]) <= 2 * max(readings[:50])
        # And every *sealed* generation has dropped its builder: only spans,
        # counts and frozen rules remain.
        assert set(forgetter._sealed) == set(forgetter._sealed_spans)


class TestCompiledKernel:
    """The numba kernel is gated by the same battery — when importable."""

    @pytest.fixture(autouse=True)
    def _require_compiled(self):
        pytest.importorskip("numba")

    @given(stream=token_streams)
    def test_matches_oracle(self, stream):
        from repro.grammar._kernel_compiled import CompiledSequitur

        builder = CompiledSequitur()
        builder.feed_many(stream)
        _assert_matches_oracle(builder, stream)

    @pytest.mark.parametrize("stream", FIXED_STREAMS, ids=repr)
    def test_fixed_regressions(self, stream):
        from repro.grammar._kernel_compiled import CompiledSequitur

        builder = CompiledSequitur()
        builder.feed_many(stream)
        _assert_matches_oracle(builder, stream)
