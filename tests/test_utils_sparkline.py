"""Unit tests for repro.utils.sparkline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.sparkline import labelled_sparkline, sparkline


class TestSparkline:
    def test_step_function(self):
        assert sparkline([0, 0, 1, 1], width=4) == "  @@"

    def test_constant_input_lightest_glyph(self):
        assert sparkline(np.full(10, 3.3), width=5) == "     "

    def test_width_capped_by_input_size(self):
        assert len(sparkline([1.0, 2.0], width=50)) == 2

    def test_monotone_ramp_monotone_glyphs(self):
        strip = sparkline(np.arange(100.0), width=10)
        densities = [" .:-=+*#%@".index(c) for c in strip]
        assert densities == sorted(densities)

    def test_extremes_use_extreme_glyphs(self):
        strip = sparkline([0.0, 0.0, 10.0, 10.0], width=4)
        assert strip[0] == " "
        assert strip[-1] == "@"

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="non-empty"):
            sparkline([])
        with pytest.raises(ValueError, match="non-empty"):
            sparkline(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="width"):
            sparkline([1.0], width=0)

    @given(
        arrays(np.float64, st.integers(1, 200), elements=st.floats(-1e3, 1e3, allow_nan=False)),
        st.integers(1, 80),
    )
    def test_output_width_and_charset(self, values, width):
        strip = sparkline(values, width)
        assert len(strip) == min(width, len(values))
        assert set(strip) <= set(" .:-=+*#%@")


class TestLabelledSparkline:
    def test_label_prefix(self):
        line = labelled_sparkline("density", [0.0, 1.0], width=10)
        assert line.startswith("density")
        assert line[14:] == sparkline([0.0, 1.0], width=10)
