"""Unit tests for repro.grammar.density (rule density curve, Section 5.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grammar.density import density_from_intervals, rule_density_curve
from repro.grammar.sequitur import induce_grammar
from repro.sax.numerosity import numerosity_reduction


class TestDensityFromIntervals:
    def test_single_interval(self):
        curve = density_from_intervals([(2, 4)], 8)
        assert curve.tolist() == [0, 0, 1, 1, 1, 0, 0, 0]

    def test_overlapping_intervals_sum(self):
        curve = density_from_intervals([(0, 3), (2, 5)], 7)
        assert curve.tolist() == [1, 1, 2, 2, 1, 1, 0]

    def test_interval_clipped_to_length(self):
        curve = density_from_intervals([(5, 100)], 8)
        assert curve.tolist() == [0, 0, 0, 0, 0, 1, 1, 1]

    def test_negative_start_clipped(self):
        curve = density_from_intervals([(-3, 2)], 5)
        assert curve.tolist() == [1, 1, 1, 0, 0]

    def test_interval_outside_range_ignored(self):
        curve = density_from_intervals([(10, 20)], 5)
        assert curve.tolist() == [0, 0, 0, 0, 0]

    def test_empty_interval_list(self):
        assert density_from_intervals([], 4).tolist() == [0, 0, 0, 0]

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            density_from_intervals([(3, 2)], 5)

    def test_float_empty_interval_rejected_before_truncation(self):
        """Emptiness is judged on the raw values, as in the scalar loop:
        (1.9, 1.2) is empty even though both truncate to 1."""
        with pytest.raises(ValueError, match="empty"):
            density_from_intervals([(1.9, 1.2)], 5)

    def test_huge_endpoints_clip_like_the_loop(self):
        """Endpoints beyond int64 range must clip to the curve, not overflow
        to INT64_MIN and silently vanish (the scalar loop used Python ints)."""
        assert density_from_intervals([(5.0, 1e30)], 10).tolist() == [
            0, 0, 0, 0, 0, 1, 1, 1, 1, 1,
        ]
        assert density_from_intervals([(-1e30, 2)], 5).tolist() == [1, 1, 1, 0, 0]

    def test_non_finite_endpoints_rejected(self):
        """Corrupted intervals must fail loudly (the scalar loop raised on
        int(inf)/int(nan)), never silently contribute nothing."""
        with pytest.raises(ValueError, match="finite"):
            density_from_intervals([(0, np.inf)], 10)
        with pytest.raises(ValueError, match="finite"):
            density_from_intervals([(np.nan, 3.0)], 10)

    def test_non_positive_length_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            density_from_intervals([], 0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
                lambda pair: (min(pair), max(pair))
            ),
            max_size=30,
        )
    )
    def test_total_mass_equals_interval_lengths(self, intervals):
        length = 60
        curve = density_from_intervals(intervals, length)
        expected = sum(end - start + 1 for start, end in intervals)
        assert curve.sum() == expected
        assert np.all(curve >= 0)

    @staticmethod
    def _loop_reference(intervals, length):
        """The seed scalar loop, kept verbatim as the vectorized ground truth."""
        diff = np.zeros(length + 1, dtype=np.int64)
        for start, end in intervals:
            if end < start:
                raise ValueError(f"interval ({start}, {end}) is empty")
            start = max(int(start), 0)
            end = min(int(end), length - 1)
            if start >= length or end < 0:
                continue
            diff[start] += 1
            diff[end + 1] -= 1
        return np.cumsum(diff[:-1]).astype(np.float64)

    @given(
        st.lists(
            st.tuples(st.integers(-20, 80), st.integers(0, 60)).map(
                lambda pair: (pair[0], pair[0] + pair[1])
            ),
            max_size=40,
        ),
        st.integers(1, 50),
    )
    def test_vectorized_matches_loop_reference(self, intervals, length):
        """The np.add.at scatter must reproduce the scalar loop exactly,
        including out-of-range clipping on both sides."""
        assert np.array_equal(
            density_from_intervals(intervals, length),
            self._loop_reference(intervals, length),
        )


class TestRuleDensityCurve:
    def _curve_for(self, words: list[str], window: int, series_length: int) -> np.ndarray:
        tokens = numerosity_reduction(words, window)
        grammar = induce_grammar(list(tokens.words))
        return rule_density_curve(grammar, tokens, series_length)

    def test_paper_toy_example_coverage(self):
        """Eq. (1): the repeated aa bb cc spans are rule-covered; the xx
        region gets no coverage of its own (its points are only reached by
        the tails of the flanking rule spans)."""
        words = ["aa", "bb", "cc", "xx", "aa", "bb", "cc"]
        window = 2
        curve = self._curve_for(words, window, series_length=8)
        # R1 -> aa bb cc covers [offset 0, offset 2 + 1] and [4, 7].
        assert curve.tolist() == [1, 1, 1, 1, 1, 1, 1, 1]

    def test_incompressible_middle_has_zero_density(self):
        """A longer version of the Eq. (1) toy: an incompressible stretch
        strictly inside the series has exactly zero rule density."""
        words = (
            ["aa", "bb", "cc", "aa", "bb", "cc"]
            + ["xx", "yy", "zz"]
            + ["aa", "bb", "cc", "aa", "bb", "cc"]
        )
        window = 2
        curve = self._curve_for(words, window, series_length=16)
        # The repeated blocks cover [0, 6] and [9, 15]; points 7-8 are the
        # interior of the incompressible stretch.
        assert curve[7] == 0.0
        assert curve[8] == 0.0
        assert curve[:6].min() >= 1.0
        assert curve[10:].min() >= 1.0

    def test_incompressible_sequence_all_zero(self):
        words = ["aa", "bb", "cc", "dd", "ee"]
        curve = self._curve_for(words, 2, series_length=6)
        assert np.allclose(curve, 0.0)

    def test_repetitive_sequence_positive_everywhere_inside(self):
        words = ["aa", "bb"] * 10
        curve = self._curve_for(words, 2, series_length=21)
        assert curve[:-1].min() >= 1.0

    def test_curve_length_matches_series(self):
        words = ["aa", "bb", "aa", "bb"]
        curve = self._curve_for(words, 3, series_length=12)
        assert len(curve) == 12

    def test_nested_rules_increase_density(self):
        """abab abab -> nested rules cover the repeated region multiple times."""
        words = ["ab", "cd"] * 8
        curve = self._curve_for(words, 2, series_length=17)
        assert curve.max() >= 2.0

    def test_mismatched_grammar_and_tokens_rejected(self):
        tokens = numerosity_reduction(["aa", "bb", "aa", "bb"], window=2)
        wrong_grammar = induce_grammar(["aa", "bb"])
        with pytest.raises(ValueError, match="same discretization"):
            rule_density_curve(wrong_grammar, tokens, 10)

    def test_anomaly_sits_at_density_minimum(self, anomalous_sine):
        """Integration: the planted anomaly is in the lowest-density region."""
        from repro.sax.sax import discretize

        series, gt_position, gt_length = anomalous_sine
        words = discretize(series, 100, 5, 5)
        tokens = numerosity_reduction(words, 100)
        grammar = induce_grammar(list(tokens.words))
        curve = rule_density_curve(grammar, tokens, len(series))
        # The mean density over the anomalous window is below the global mean.
        anomaly_region = curve[gt_position : gt_position + gt_length].mean()
        assert anomaly_region < curve.mean()
