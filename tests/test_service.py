"""Unit tests for the async serving core (repro.service).

Covers the micro-batcher's coalescing/backpressure/deadline semantics, the
LRU result cache, the multi-tenant session manager's policies, and — the
load-bearing contract — **bitwise parity**: a served request equals the
equivalent direct ``detect()``/streaming call across every executor
backend.

The suite drives the asyncio core directly via ``asyncio.run`` (no HTTP);
the end-to-end subprocess coverage lives in ``tests/test_service_http.py``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.executors import BatchItemError, make_executor
from repro.core.streaming import StreamingEnsembleDetector
from repro.service import (
    BadRequest,
    DeadlineExceeded,
    DetectService,
    LRUCache,
    MemoryBudgetExceeded,
    MicroBatcher,
    ServiceClosed,
    ServiceOverloaded,
    SessionExists,
    SessionNotFound,
    series_digest,
)

#: One small ensemble configuration reused across the parity tests.
CONFIG = dict(window=50, ensemble_size=5, max_paa_size=5, max_alphabet_size=5)


def make_series(seed: int, n: int = 700) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 14.0 * np.pi, n)
    series = np.sin(t) + 0.05 * rng.standard_normal(n)
    series[n // 2 : n // 2 + 60] *= 0.2
    return series


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# series_digest / LRUCache.
# ----------------------------------------------------------------------


class TestSeriesDigest:
    def test_equal_series_equal_digest(self):
        a = make_series(0)
        assert series_digest(a) == series_digest(a.copy())

    def test_different_series_different_digest(self):
        assert series_digest(make_series(0)) != series_digest(make_series(1))

    def test_length_is_part_of_the_digest(self):
        a = make_series(0)
        assert series_digest(a) != series_digest(a[:-1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            series_digest(np.zeros((3, 3)))


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        hit, _ = cache.get("a")
        assert not hit
        cache.put("a", 1)
        hit, value = cache.get("a")
        assert hit and value == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" — "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("a")[0]
        assert not cache.get("b")[0]
        assert cache.get("c")[0]
        assert cache.stats()["evictions"] == 1

    def test_zero_entries_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert not cache.get("a")[0]
        assert not cache.enabled

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LRUCache(-1)


# ----------------------------------------------------------------------
# MicroBatcher.
# ----------------------------------------------------------------------


class TestMicroBatcher:
    def test_concurrent_submits_coalesce(self):
        batch_sizes = []

        def runner(key, payloads):
            batch_sizes.append(len(payloads))
            return [(i, p * 10) for i, p in enumerate(payloads)]

        async def main():
            batcher = MicroBatcher(runner, batch_window=0.02, max_batch_size=8)
            results = await asyncio.gather(*(batcher.submit("g", i) for i in range(8)))
            await batcher.aclose()
            return results

        results = run(main())
        assert results == [i * 10 for i in range(8)]
        # All eight arrived within one coalescing window.
        assert batch_sizes == [8]

    def test_groups_do_not_mix(self):
        seen = []

        def runner(key, payloads):
            seen.append((key, sorted(payloads)))
            return [(i, p) for i, p in enumerate(payloads)]

        async def main():
            batcher = MicroBatcher(runner, batch_window=0.02)
            await asyncio.gather(
                *(batcher.submit("a", i) for i in range(3)),
                *(batcher.submit("b", 100 + i) for i in range(3)),
            )
            await batcher.aclose()

        run(main())
        assert sorted(seen) == [("a", [0, 1, 2]), ("b", [100, 101, 102])]

    def test_max_batch_size_splits(self):
        batch_sizes = []

        def runner(key, payloads):
            batch_sizes.append(len(payloads))
            return [(i, p) for i, p in enumerate(payloads)]

        async def main():
            batcher = MicroBatcher(runner, batch_window=0.02, max_batch_size=3)
            await asyncio.gather(*(batcher.submit("g", i) for i in range(7)))
            await batcher.aclose()

        run(main())
        assert max(batch_sizes) <= 3
        assert sum(batch_sizes) == 7

    def test_backpressure_rejects_beyond_max_pending(self):
        release = None

        def runner(key, payloads):
            release.wait(timeout=10)
            return [(i, p) for i, p in enumerate(payloads)]

        async def main():
            import threading

            nonlocal release
            release = threading.Event()
            batcher = MicroBatcher(runner, batch_window=0.0, max_batch_size=1, max_pending=2)
            first = asyncio.ensure_future(batcher.submit("g", 0))
            await asyncio.sleep(0.05)  # dispatched; runner now blocks
            second = asyncio.ensure_future(batcher.submit("g", 1))
            third = asyncio.ensure_future(batcher.submit("g", 2))
            await asyncio.sleep(0.05)
            with pytest.raises(ServiceOverloaded):
                await batcher.submit("g", 3)
            assert batcher.stats()["rejected_overload"] == 1
            release.set()
            assert await asyncio.gather(first, second, third) == [0, 1, 2]
            await batcher.aclose()

        run(main())

    def test_deadline_expires_queued_request(self):
        def runner(key, payloads):
            import time

            time.sleep(0.2)
            return [(i, p) for i, p in enumerate(payloads)]

        async def main():
            batcher = MicroBatcher(runner, batch_window=0.0, max_batch_size=1)
            first = asyncio.ensure_future(batcher.submit("g", 0))
            await asyncio.sleep(0.01)
            # Second request waits behind the slow batch; its deadline fires
            # long before dispatch.
            with pytest.raises(DeadlineExceeded):
                await batcher.submit("g", 1, timeout=0.05)
            assert batcher.stats()["expired_deadline"] == 1
            assert await first == 0
            await batcher.aclose()

        run(main())

    def test_per_item_exception_fails_only_that_caller(self):
        def runner(key, payloads):
            out = []
            for i, p in enumerate(payloads):
                out.append((i, ValueError(f"bad {p}") if p == 1 else p))
            return out

        async def main():
            batcher = MicroBatcher(runner, batch_window=0.02, max_batch_size=8)
            results = await asyncio.gather(
                *(batcher.submit("g", i) for i in range(3)), return_exceptions=True
            )
            await batcher.aclose()
            return results

        results = run(main())
        assert results[0] == 0 and results[2] == 2
        assert isinstance(results[1], ValueError)

    def test_runner_crash_fails_whole_batch(self):
        def runner(key, payloads):
            raise RuntimeError("pool died")

        async def main():
            batcher = MicroBatcher(runner, batch_window=0.01)
            with pytest.raises(RuntimeError, match="pool died"):
                await batcher.submit("g", 0)
            await batcher.aclose()

        run(main())

    def test_closed_batcher_rejects(self):
        async def main():
            batcher = MicroBatcher(lambda key, payloads: [])
            await batcher.aclose()
            with pytest.raises(ServiceClosed):
                await batcher.submit("g", 0)

        run(main())


# ----------------------------------------------------------------------
# DetectService: one-shot parity, caching, failure containment.
# ----------------------------------------------------------------------


class TestDetectServiceParity:
    def test_served_equals_direct_detect(self, executor_kind):
        """Micro-batched, coalesced requests == direct detect(), bitwise."""
        series = [make_series(i) for i in range(5)]

        async def main():
            async with DetectService(
                executor=executor_kind, n_jobs=2, batch_window=0.02, max_batch_size=8
            ) as service:
                return await asyncio.gather(
                    *(
                        service.detect(s, k=3, seed=i, **CONFIG)
                        for i, s in enumerate(series)
                    )
                )

        results = run(main())
        for i, (s, result) in enumerate(zip(series, results)):
            direct = EnsembleGrammarDetector(seed=i, **CONFIG).detect(s, 3)
            assert list(result.anomalies) == direct
            assert not result.cached

    def test_detect_many_equals_direct_detect_batch(self, executor_kind):
        series = [make_series(10 + i) for i in range(4)]

        async def main():
            async with DetectService(
                executor=executor_kind, n_jobs=2, batch_window=0.01
            ) as service:
                return await service.detect_many(series, k=3, seed=7, **CONFIG)

        results = run(main())
        direct = EnsembleGrammarDetector(seed=7, **CONFIG).detect_batch(series, 3)
        assert [list(r.anomalies) for r in results] == direct

    def test_detect_many_partial_failure(self):
        series = [make_series(0), np.arange(10.0), make_series(2)]  # middle too short

        async def main():
            async with DetectService(batch_window=0.01) as service:
                return await service.detect_many(series, k=3, seed=7, **CONFIG)

        results = run(main())
        assert isinstance(results[1], BatchItemError)
        assert results[1].index == 1
        direct = EnsembleGrammarDetector(seed=7, **CONFIG).detect_batch(
            series, 3, return_exceptions=True
        )
        assert list(results[0].anomalies) == direct[0]
        assert list(results[2].anomalies) == direct[2]

    def test_borrowed_executor_not_closed(self):
        async def main():
            with make_executor("thread", 2) as executor:
                async with DetectService(executor=executor, batch_window=0.0) as service:
                    await service.detect(make_series(0), seed=0, **CONFIG)
                assert not executor.closed  # borrowed — service must not close it

        run(main())


class TestDetectServiceCache:
    def test_identical_request_hits_cache(self):
        series = make_series(3)

        async def main():
            async with DetectService(batch_window=0.0, cache_entries=32) as service:
                first = await service.detect(series, k=3, seed=1, **CONFIG)
                second = await service.detect(series.copy(), k=3, seed=1, **CONFIG)
                stats = service.stats()
                return first, second, stats

        first, second, stats = run(main())
        assert not first.cached and second.cached
        assert list(first.anomalies) == list(second.anomalies)
        # The cached request never reached the batcher.
        assert stats["batcher"]["submitted"] == 1
        assert stats["cache"]["hits"] == 1

    def test_different_seed_misses_cache(self):
        series = make_series(3)

        async def main():
            async with DetectService(batch_window=0.0, cache_entries=32) as service:
                await service.detect(series, k=3, seed=1, **CONFIG)
                second = await service.detect(series, k=3, seed=2, **CONFIG)
                return second

        assert not run(main()).cached

    def test_cache_disabled(self):
        series = make_series(3)

        async def main():
            async with DetectService(batch_window=0.0, cache_entries=0) as service:
                await service.detect(series, k=3, seed=1, **CONFIG)
                return await service.detect(series, k=3, seed=1, **CONFIG)

        assert not run(main()).cached


class TestDetectServiceValidation:
    def test_bad_config_is_bad_request(self):
        async def main():
            async with DetectService() as service:
                with pytest.raises(BadRequest, match="invalid detector configuration"):
                    await service.detect(make_series(0), window=1)
                with pytest.raises(BadRequest, match="invalid detector configuration"):
                    await service.detect(make_series(0), window=50, no_such_option=1)
                with pytest.raises(BadRequest, match="1-dimensional"):
                    await service.detect(np.zeros((4, 4)), window=50)
                with pytest.raises(BadRequest, match="k must be positive"):
                    await service.detect(make_series(0), window=50, k=0)

        run(main())

    def test_closed_service_rejects(self):
        async def main():
            service = DetectService()
            await service.aclose()
            with pytest.raises(ServiceClosed):
                await service.detect(make_series(0), **CONFIG)

        run(main())


# ----------------------------------------------------------------------
# Streaming sessions.
# ----------------------------------------------------------------------


class TestStreamingSessions:
    def test_session_poll_equals_direct_streaming(self, executor_kind):
        """A served session == driving the same detector directly, bitwise."""
        series = make_series(42, 1600)
        chunks = [series[offset : offset + 400] for offset in range(0, 1600, 400)]

        async def main():
            async with DetectService(executor=executor_kind, n_jobs=2) as service:
                await service.create_session("feed", seed=3, **CONFIG)
                polls = []
                for chunk in chunks:
                    await service.append("feed", chunk)
                    polls.append(await service.poll("feed", 3))
                return polls

        polls = run(main())
        reference = StreamingEnsembleDetector(seed=3, **CONFIG)
        for chunk, poll in zip(chunks, polls):
            reference.extend(chunk)
            direct = [
                {"rank": a.rank, "position": a.position, "length": a.length, "score": a.score}
                for a in reference.detect(3)
            ]
            assert poll["anomalies"] == direct

    def test_bounded_session_parity(self):
        """Capacity/policy from PR 3 flow through the session layer intact."""
        series = make_series(5, 2000)

        async def main():
            async with DetectService() as service:
                await service.create_session(
                    "bounded", seed=3, capacity=600, policy="sliding", **CONFIG
                )
                for offset in range(0, 2000, 500):
                    await service.append("bounded", series[offset : offset + 500])
                return await service.poll("bounded", 3)

        poll = run(main())
        reference = StreamingEnsembleDetector(seed=3, capacity=600, policy="sliding", **CONFIG)
        for offset in range(0, 2000, 500):
            reference.extend(series[offset : offset + 500])
        direct = [
            {"rank": a.rank, "position": a.position, "length": a.length, "score": a.score}
            for a in reference.detect(3)
        ]
        assert poll["anomalies"] == direct
        assert poll["horizon_start"] == reference.horizon_start

    def test_repeated_poll_is_cached(self):
        async def main():
            async with DetectService(cache_entries=32) as service:
                await service.create_session("feed", seed=0, **CONFIG)
                await service.append("feed", make_series(1))
                first = await service.poll("feed", 3)
                second = await service.poll("feed", 3)
                await service.append("feed", make_series(2))
                third = await service.poll("feed", 3)
                return first, second, third

        first, second, third = run(main())
        assert not first["cached"] and second["cached"] and not third["cached"]
        assert first["anomalies"] == second["anomalies"]

    def test_session_name_rules(self):
        async def main():
            async with DetectService() as service:
                with pytest.raises(BadRequest, match="session names"):
                    await service.create_session("bad name!", **CONFIG)
                await service.create_session("ok-1", **CONFIG)
                with pytest.raises(SessionExists):
                    await service.create_session("ok-1", **CONFIG)
                with pytest.raises(SessionNotFound):
                    await service.poll("missing")
                with pytest.raises(SessionNotFound):
                    await service.append("missing", [1.0, 2.0])

        run(main())

    def test_max_sessions_cap(self):
        async def main():
            async with DetectService(max_sessions=2) as service:
                await service.create_session("a", **CONFIG)
                await service.create_session("b", **CONFIG)
                with pytest.raises(ServiceOverloaded, match="live sessions"):
                    await service.create_session("c", **CONFIG)
                await service.close_session("a")
                await service.create_session("c", **CONFIG)  # slot freed

        run(main())

    def test_memory_budget_rejects_large_append(self):
        async def main():
            async with DetectService(memory_budget=400_000) as service:
                await service.create_session("big", **CONFIG)
                with pytest.raises(MemoryBudgetExceeded):
                    await service.append("big", np.zeros(200_000) + np.sin(np.arange(200_000)))
                # A bounded session under the same budget is admitted: its
                # retention is flat.
                await service.create_session(
                    "small", capacity=200, policy="sliding", **CONFIG
                )
                for _ in range(4):
                    await service.append("small", make_series(1, 400))

        run(main())

    def test_idle_eviction(self):
        async def main():
            async with DetectService(idle_timeout=0.1) as service:
                await service.create_session("stale", **CONFIG)
                await service.append("stale", make_series(0))
                await asyncio.sleep(0.4)
                with pytest.raises(SessionNotFound):
                    await service.poll("stale")
                assert service.stats()["sessions"]["evicted_idle"] == 1

        run(main())

    def test_invalid_chunk_is_bad_request_and_atomic(self):
        async def main():
            async with DetectService() as service:
                await service.create_session("feed", seed=0, **CONFIG)
                await service.append("feed", make_series(0, 200))
                with pytest.raises(BadRequest, match="finite"):
                    await service.append("feed", [1.0, float("nan"), 2.0])
                info = await service.append("feed", make_series(1, 200))
                return info

        assert run(main())["length"] == 400


# ----------------------------------------------------------------------
# Stats plumbing.
# ----------------------------------------------------------------------


class TestStats:
    def test_stats_shape(self):
        async def main():
            async with DetectService(executor="serial") as service:
                await service.detect(make_series(0), seed=0, **CONFIG)
                return service.stats()

        stats = run(main())
        assert stats["executor"]["kind"] == "serial"
        assert stats["batcher"]["submitted"] == 1
        assert stats["batcher"]["batches"] == 1
        assert "memory_used" in stats["sessions"]


class TestNoPermanentPerConfigState:
    def test_group_state_reaped_after_completion(self):
        """A long tail of distinct configs must leave no state behind."""

        async def main():
            async with DetectService(batch_window=0.0) as service:
                for window in range(40, 56):
                    await service.detect(
                        make_series(1), k=3, seed=0, window=window, ensemble_size=4
                    )
                # Queues and dispatch workers are reaped once drained — no
                # per-config registry survives the requests.
                return len(service.batcher._queues), len(service.batcher._workers)

        queues, workers = run(main())
        assert queues == 0
        assert workers == 0


class TestSessionCloseRace:
    def test_append_racing_close_gets_not_found(self):
        """A request that loses the lock race to close() must 404, not 200."""

        async def main():
            async with DetectService() as service:
                await service.create_session("r", seed=0, **CONFIG)
                session = service.sessions._sessions["r"]
                # Hold the lock the way a winning close() would, then close.
                async with session.lock:
                    append_task = asyncio.ensure_future(
                        service.append("r", make_series(0))
                    )
                    await asyncio.sleep(0.01)  # append is now waiting on the lock
                    service.sessions._sessions.pop("r")  # close() wins
                    session.detector.close()
                with pytest.raises(SessionNotFound):
                    await append_task

        run(main())

    def test_recreated_same_name_not_confused(self):
        """A same-named session created after a close is a different session."""

        async def main():
            async with DetectService() as service:
                await service.create_session("n", seed=0, **CONFIG)
                old = service.sessions._sessions["n"]
                async with old.lock:
                    poll_task = asyncio.ensure_future(service.poll("n"))
                    await asyncio.sleep(0.01)
                    service.sessions._sessions.pop("n")
                    old.detector.close()
                    await service.create_session("n", seed=1, **CONFIG)
                with pytest.raises(SessionNotFound):
                    await poll_task

        run(main())
