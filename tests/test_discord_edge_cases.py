"""Edge-case and failure-injection tests for the discord subsystem.

These push the matrix-profile and discord machinery into the corners the
equivalence property tests rarely reach: degenerate windows, short series,
flat segments abutting structure, and adversarial exclusion settings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.discord.discords import DiscordDetector, top_discords
from repro.discord.hotsax import hotsax_discords
from repro.discord.matrix_profile import (
    MatrixProfile,
    mass,
    matrix_profile_brute,
    matrix_profile_stomp,
)


class TestShortSeries:
    def test_two_subsequences_only(self):
        series = np.array([0.0, 1.0, 0.0, 1.0, 2.0, 0.0])
        profile = matrix_profile_stomp(series, 5, exclusion=0)
        assert len(profile) == 2
        assert np.all(np.isfinite(profile.profile))

    def test_window_equals_series_length_minus_one(self, rng):
        series = rng.standard_normal(30)
        profile = matrix_profile_stomp(series, 29, exclusion=0)
        assert len(profile) == 2
        # The two subsequences are each other's only neighbours.
        assert profile.indices.tolist() == [1, 0]

    def test_exclusion_swallows_everything(self, rng):
        """When the exclusion zone covers all neighbours, no 1-NN exists."""
        series = rng.standard_normal(20)
        profile = matrix_profile_stomp(series, 10, exclusion=50)
        assert np.all(np.isinf(profile.profile))
        assert np.all(profile.indices == -1)
        assert top_discords(profile, k=3) == []


class TestFlatSegments:
    def test_flat_region_within_structure(self):
        """Flat stretches must not poison neighbouring distances."""
        series = np.concatenate(
            [np.sin(np.linspace(0, 8 * np.pi, 400)), np.zeros(100),
             np.sin(np.linspace(0, 8 * np.pi, 400))]
        )
        stomp = matrix_profile_stomp(series, 50)
        brute = matrix_profile_brute(series, 50)
        assert np.allclose(stomp.profile, brute.profile, atol=5e-4)

    def test_all_flat_with_single_blip(self):
        series = np.zeros(200)
        series[100] = 5.0
        profile = matrix_profile_stomp(series, 20)
        top = top_discords(profile, k=1)
        assert top, "blip not detected"
        # The discord window contains the blip.
        assert top[0].position <= 100 <= top[0].position + 19

    def test_mass_against_flat_series(self):
        distances = mass(np.sin(np.linspace(0, 2 * np.pi, 16)), np.zeros(64))
        assert np.allclose(distances, 4.0)  # sqrt(m) = sqrt(16)


class TestDiscordExtraction:
    def test_all_equal_profile_returns_first_positions(self):
        profile = MatrixProfile(
            profile=np.full(30, 2.0),
            indices=np.zeros(30, dtype=np.int64),
            window=5,
            exclusion=1,
        )
        discords = top_discords(profile, k=3)
        assert len(discords) == 3
        positions = [d.position for d in discords]
        assert positions[0] == 0  # argmax ties resolve to first index

    def test_negative_infinite_profile_entries_skipped(self):
        values = np.full(20, -np.inf)
        values[7] = 1.5
        profile = MatrixProfile(
            profile=values, indices=np.zeros(20, dtype=np.int64), window=4, exclusion=1
        )
        discords = top_discords(profile, k=3)
        assert [d.position for d in discords] == [7]

    def test_detector_k_one(self, rng):
        series = np.cumsum(rng.standard_normal(300))
        anomalies = DiscordDetector(window=30).detect(series, k=1)
        assert len(anomalies) == 1
        assert anomalies[0].rank == 1


class TestHotsaxEdgeCases:
    def test_series_of_two_windows(self):
        series = np.array([0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 3.0])
        discords = hotsax_discords(series, 4, k=1, exclusion=0)
        assert len(discords) == 1

    def test_k_exceeding_space_returns_fewer(self, rng):
        series = np.cumsum(rng.standard_normal(60))
        discords = hotsax_discords(series, 25, k=5)
        assert 1 <= len(discords) <= 2

    def test_flat_series_zero_distances(self):
        discords = hotsax_discords(np.zeros(80), 10, k=1)
        assert discords[0].distance == pytest.approx(0.0)

    def test_matches_brute_force_with_larger_alphabet(self, rng):
        series = np.cumsum(rng.standard_normal(200))
        found = hotsax_discords(series, 20, k=1, paa_size=5, alphabet_size=6)[0]
        brute = matrix_profile_brute(series, 20)
        finite = np.where(np.isfinite(brute.profile), brute.profile, -np.inf)
        assert found.distance == pytest.approx(float(np.max(finite)), abs=1e-6)
