"""Unit and property tests for repro.sax.numerosity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sax.numerosity import (
    TokenSequence,
    expand_tokens,
    numerosity_reduction,
)

word_lists = st.lists(
    st.text(alphabet="abc", min_size=2, max_size=2), min_size=1, max_size=60
)


class TestNumerosityReduction:
    def test_paper_equation_2_and_3(self):
        """The paper's example: Eq. (2) compresses to Eq. (3)."""
        words = ["ba", "ba", "ba", "dc", "dc", "aa", "ac", "ac"]
        tokens = numerosity_reduction(words, window=4)
        assert tokens.words == ("ba", "dc", "aa", "ac")
        assert tokens.offsets.tolist() == [0, 3, 5, 6]

    def test_no_repeats_keeps_all(self):
        words = ["aa", "bb", "cc"]
        tokens = numerosity_reduction(words, window=4)
        assert tokens.words == ("aa", "bb", "cc")
        assert tokens.offsets.tolist() == [0, 1, 2]

    def test_all_identical_collapses_to_one(self):
        tokens = numerosity_reduction(["zz"] * 10, window=4)
        assert tokens.words == ("zz",)
        assert tokens.offsets.tolist() == [0]
        assert tokens.n_windows == 10

    def test_alternating_words_kept(self):
        words = ["ab", "ba", "ab", "ba"]
        tokens = numerosity_reduction(words, window=4)
        assert tokens.words == ("ab", "ba", "ab", "ba")

    def test_none_strategy_keeps_everything(self):
        words = ["aa", "aa", "bb"]
        tokens = numerosity_reduction(words, window=4, strategy="none")
        assert tokens.words == ("aa", "aa", "bb")
        assert tokens.offsets.tolist() == [0, 1, 2]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            numerosity_reduction(["aa"], window=4, strategy="bogus")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            numerosity_reduction([], window=4)

    @given(word_lists)
    def test_reduction_is_lossless(self, words):
        """Section 4.2: S_NR retains all information — expansion inverts it."""
        tokens = numerosity_reduction(words, window=4)
        assert expand_tokens(tokens) == words

    @given(word_lists)
    def test_no_consecutive_duplicates_after_reduction(self, words):
        tokens = numerosity_reduction(words, window=4)
        for left, right in zip(tokens.words, tokens.words[1:]):
            assert left != right

    @given(word_lists)
    def test_idempotent(self, words):
        once = numerosity_reduction(words, window=4)
        twice = numerosity_reduction(list(once.words), window=4)
        assert twice.words == once.words

    @given(word_lists)
    def test_offsets_strictly_increasing(self, words):
        tokens = numerosity_reduction(words, window=4)
        assert np.all(np.diff(tokens.offsets) > 0) or len(tokens.offsets) == 1


class TestTokenSequence:
    def test_len(self):
        tokens = numerosity_reduction(["aa", "bb"], window=4)
        assert len(tokens) == 2

    def test_token_span_single_token(self):
        tokens = numerosity_reduction(["aa", "bb", "cc"], window=5)
        assert tokens.token_span(1, 1) == (1, 5)

    def test_token_span_range(self):
        # words at offsets [0, 3, 5, 6], window 4 (paper Eq. 3).
        tokens = numerosity_reduction(
            ["ba", "ba", "ba", "dc", "dc", "aa", "ac", "ac"], window=4
        )
        # Tokens 0..2 ('ba' at 0 .. 'aa' at 5): span [0, 5 + 4 - 1].
        assert tokens.token_span(0, 2) == (0, 8)

    def test_token_span_out_of_range(self):
        tokens = numerosity_reduction(["aa"], window=4)
        with pytest.raises(IndexError):
            tokens.token_span(0, 1)
        with pytest.raises(IndexError):
            tokens.token_span(-1, 0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="align"):
            TokenSequence(("aa",), np.array([0, 1]), 3, 4)

    def test_n_windows_must_exceed_last_offset(self):
        with pytest.raises(ValueError, match="n_windows"):
            TokenSequence(("aa", "bb"), np.array([0, 5]), 5, 4)
