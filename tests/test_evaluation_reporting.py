"""Unit tests for repro.evaluation.reporting (JSON/CSV persistence)."""

from __future__ import annotations

import json

import pytest

from repro.core.anomaly import Anomaly
from repro.evaluation.harness import MethodScores
from repro.evaluation.reporting import (
    anomalies_from_dicts,
    anomalies_to_dicts,
    read_detections_json,
    read_evaluation_json,
    write_detections_csv,
    write_detections_json,
    write_evaluation_json,
)


@pytest.fixture
def anomalies() -> list[Anomaly]:
    return [
        Anomaly(position=120, length=50, score=0.9, rank=1),
        Anomaly(position=400, length=50, score=0.4, rank=2),
    ]


class TestDetectionsRoundTrip:
    def test_dict_round_trip(self, anomalies):
        assert anomalies_from_dicts(anomalies_to_dicts(anomalies)) == anomalies

    def test_json_round_trip_with_metadata(self, tmp_path, anomalies):
        path = tmp_path / "detections.json"
        write_detections_json(path, anomalies, metadata={"window": 50, "method": "gi"})
        loaded, metadata = read_detections_json(path)
        assert loaded == anomalies
        assert metadata == {"window": 50, "method": "gi"}

    def test_json_has_format_version(self, tmp_path, anomalies):
        path = tmp_path / "detections.json"
        write_detections_json(path, anomalies)
        assert json.loads(path.read_text())["format_version"] == 1

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "anomalies": []}))
        with pytest.raises(ValueError, match="format version"):
            read_detections_json(path)

    def test_csv_layout(self, tmp_path, anomalies):
        path = tmp_path / "detections.csv"
        write_detections_csv(path, anomalies)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "rank,position,length,score"
        assert lines[1].startswith("1,120,50,")

    def test_empty_detections(self, tmp_path):
        path = tmp_path / "empty.json"
        write_detections_json(path, [])
        loaded, _ = read_detections_json(path)
        assert loaded == []


class TestEvaluationRoundTrip:
    def test_json_round_trip(self, tmp_path):
        results = {
            "Proposed": MethodScores("Proposed", (0.5, 1.0, 0.0)),
            "Discord": MethodScores("Discord", (0.25, 0.75, 0.5)),
        }
        path = tmp_path / "eval.json"
        write_evaluation_json(path, results)
        loaded = read_evaluation_json(path)
        assert set(loaded) == {"Proposed", "Discord"}
        assert loaded["Proposed"].scores == (0.5, 1.0, 0.0)
        assert loaded["Discord"].average == pytest.approx(0.5)

    def test_summary_fields_serialized(self, tmp_path):
        results = {"X": MethodScores("X", (0.0, 1.0))}
        path = tmp_path / "eval.json"
        write_evaluation_json(path, results)
        document = json.loads(path.read_text())
        assert document["methods"]["X"]["average_score"] == pytest.approx(0.5)
        assert document["methods"]["X"]["hit_rate"] == pytest.approx(0.5)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 0, "methods": {}}))
        with pytest.raises(ValueError, match="format version"):
            read_evaluation_json(path)
