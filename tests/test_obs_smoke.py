"""End-to-end telemetry smoke: JSON logs + metrics scrape on a real server.

Starts ``python -m repro serve --log-format json`` as a subprocess, sends
one traced detect request, and asserts the two operational contracts CI
relies on:

- every emitted log line parses as JSON, and the lines belonging to the
  traced request share its ``X-Request-Id``;
- ``GET /v1/metrics`` serves the Prometheus text format with the core
  series (request counts, latency histogram, stage histogram, stats
  gauges).

When ``$REPRO_SMOKE_ARTIFACT`` is set, the scrape is written there so the
CI job can upload it.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.service import ServiceClient

BANNER = re.compile(r"serving on http://127\.0\.0\.1:(\d+)")
CONFIG = dict(window=50, ensemble_size=5, max_paa_size=5, max_alphabet_size=5)


def make_series(seed: int = 0, n: int = 700) -> list[float]:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 14.0 * np.pi, n)
    series = np.sin(t) + 0.05 * rng.standard_normal(n)
    series[n // 2 : n // 2 + 60] *= 0.2
    return [float(v) for v in series]


def start_server(*extra_args: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError("server exited before binding")
        match = BANNER.search(line or "")
        if match:
            return process, int(match.group(1))
    process.kill()
    raise RuntimeError("server did not start within 60s")


def drain_output(process: subprocess.Popen) -> list[str]:
    """SIGTERM the server and return every remaining output line."""
    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=30)
    assert process.returncode == 0
    return [line for line in output.splitlines() if line.strip()]


def test_json_logs_share_request_id_and_metrics_scrape():
    process, port = start_server("--log-format", "json", "--batch-window-ms", "5")
    trace_id = "smoke-trace-0001"
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}", request_id=trace_id)
        response = client.detect(make_series(1), seed=1, k=2, **CONFIG)
        assert response["anomalies"]

        raw = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/v1/metrics", timeout=30
        )
        scrape = raw.read().decode("utf-8")
        assert raw.headers["Content-Type"].startswith("text/plain; version=0.0.4")
    finally:
        lines = drain_output(process)

    # Core series in the scrape.
    assert "# TYPE repro_http_requests_total counter" in scrape
    assert (
        'repro_http_requests_total{role="serve",method="POST",path="/detect",status="200"} 1'
        in scrape
    )
    assert 'repro_http_request_seconds_bucket{role="serve",method="POST",path="/detect",le="+Inf"} 1' in scrape
    assert 'repro_stage_seconds_count{stage="grammar"}' in scrape
    assert "repro_service_batcher_dispatched 1" in scrape
    assert "repro_service_cache_misses 1" in scrape

    artifact = os.environ.get("REPRO_SMOKE_ARTIFACT")
    if artifact:
        Path(artifact).write_text(scrape)

    # Every non-banner line is JSON; the traced request's lines share its id.
    documents = []
    for line in lines:
        if line.startswith("serving on") or line.startswith("endpoints:") or line.startswith("serve:"):
            continue
        documents.append(json.loads(line))
    assert documents, "expected JSON log lines from the server"
    traced = [doc for doc in documents if doc["request_id"] == trace_id]
    access = [doc for doc in traced if doc.get("path") == "/v1/detect"]
    assert access and access[0]["status"] == 200
    assert all({"ts", "level", "logger", "message", "request_id"} <= set(doc) for doc in documents)


def test_text_logs_by_default_include_request_id():
    process, port = start_server("--batch-window-ms", "5")
    trace_id = "text-trace-0002"
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}", request_id=trace_id)
        client.detect(make_series(2), seed=2, k=2, **CONFIG)
    finally:
        lines = drain_output(process)
    assert any(f"[{trace_id}]" in line for line in lines)
