"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A moderate example budget keeps the property suite fast but meaningful;
# data generation dominates, so suppress the too-slow health check.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def sine_series() -> np.ndarray:
    """A clean periodic series: 40 cycles of 100 samples each."""
    t = np.linspace(0.0, 80.0 * np.pi, 4000)
    return np.sin(t)


@pytest.fixture
def anomalous_sine(sine_series: np.ndarray) -> tuple[np.ndarray, int, int]:
    """Periodic series with one damped cycle; returns (series, gt_pos, gt_len)."""
    series = sine_series.copy()
    series[2000:2100] *= 0.1
    return series, 2000, 100


@pytest.fixture
def random_walk_series(rng: np.random.Generator) -> np.ndarray:
    """A length-500 random walk."""
    return np.cumsum(rng.standard_normal(500))
