"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.executors import EXECUTOR_KINDS


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--executor",
        choices=EXECUTOR_KINDS + ("cluster",),
        default=None,
        help="restrict executor-parametrized tests to one backend "
        "(e.g. --executor process under a constrained taskset, or "
        "--executor cluster to run the parity suite over a localhost "
        "scheduler + worker fleet)",
    )


def pytest_generate_tests(metafunc: pytest.Metafunc) -> None:
    """Parametrize ``executor_kind`` over all backends (or the --executor one)."""
    if "executor_kind" in metafunc.fixturenames:
        restrict = metafunc.config.getoption("--executor")
        kinds = [restrict] if restrict else list(EXECUTOR_KINDS)
        metafunc.parametrize("executor_kind", kinds)


def repro_shm_segments() -> set[str]:
    """Names of this library's live /dev/shm segments (empty off-POSIX)."""
    import os

    if not os.path.isdir("/dev/shm"):
        return set()
    return {name for name in os.listdir("/dev/shm") if name.startswith("repro")}


@pytest.fixture(name="shm_segments")
def shm_segments_fixture():
    """Callable returning the current set of library shm segment names."""
    return repro_shm_segments

# A moderate example budget keeps the property suite fast but meaningful;
# data generation dominates, so suppress the too-slow health check.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def sine_series() -> np.ndarray:
    """A clean periodic series: 40 cycles of 100 samples each."""
    t = np.linspace(0.0, 80.0 * np.pi, 4000)
    return np.sin(t)


@pytest.fixture
def anomalous_sine(sine_series: np.ndarray) -> tuple[np.ndarray, int, int]:
    """Periodic series with one damped cycle; returns (series, gt_pos, gt_len)."""
    series = sine_series.copy()
    series[2000:2100] *= 0.1
    return series, 2000, 100


@pytest.fixture
def random_walk_series(rng: np.random.Generator) -> np.ndarray:
    """A length-500 random walk."""
    return np.cumsum(rng.standard_normal(500))
