"""HTTP-layer telemetry, in process: ``/v1/metrics``, ids, error envelope.

Drives real :class:`~repro.service.http.ServiceHTTPServer` and
:class:`~repro.service.router.RouterHTTPServer` instances bound to
ephemeral ports inside one event loop (urllib calls hop through
``asyncio.to_thread`` so the loop keeps serving). Covers:

- the Prometheus exposition on both roles (core series present, stats
  gauges re-exported, the right ``Content-Type``);
- ``X-Request-Id`` honoring/minting/echoing, including the response to
  an unusable client-supplied id;
- the regression guard: an unexpected handler exception must come back
  as the uniform ``{"error": {code, message}}`` envelope with a
  structured traceback log carrying the request id.
"""

from __future__ import annotations

import asyncio
import io
import json
import logging
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs.expfmt import EXPOSITION_CONTENT_TYPE
from repro.obs.logging import setup_logging
from repro.service import DetectService
from repro.service.http import ServiceHTTPServer
from repro.service.router import RouterHTTPServer, SessionRouter

CONFIG = dict(window=50, ensemble_size=4, max_paa_size=5, max_alphabet_size=5)


@pytest.fixture()
def json_log_stream():
    """Route ``repro.*`` records through the real JSON handler into a buffer."""
    stream = io.StringIO()
    setup_logging(log_format="json", level="info", stream=stream)
    yield stream
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.propagate = True
    logger.setLevel(logging.NOTSET)


def make_series(seed: int = 0, n: int = 600) -> list[float]:
    rng = np.random.default_rng(seed)
    series = np.sin(np.linspace(0.0, 12.0 * np.pi, n)) + 0.05 * rng.standard_normal(n)
    return [float(v) for v in series]


def _fetch(port: int, path: str, body: dict | None = None, headers: dict | None = None):
    """Blocking urllib call returning ``(status, headers, raw-bytes)``."""
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method="POST" if data else "GET",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


async def _get(port: int, path: str, body=None, headers=None):
    return await asyncio.to_thread(_fetch, port, path, body, headers)


# ----------------------------------------------------------------------
# Serve node.
# ----------------------------------------------------------------------


def test_service_metrics_exposition():
    async def main():
        async with DetectService(batch_window=0.0) as service:
            server = ServiceHTTPServer(service, "127.0.0.1", 0)
            await server.start()
            try:
                status, _, _ = await _get(
                    port := server.port, "/v1/detect",
                    {"series": make_series(), "k": 2, "seed": 1, **CONFIG},
                )
                assert status == 200
                status, headers, raw = await _get(port, "/v1/metrics")
            finally:
                await server.aclose()
        return status, headers, raw.decode()

    status, headers, text = asyncio.run(main())
    assert status == 200
    assert headers["Content-Type"] == EXPOSITION_CONTENT_TYPE
    # Core request series with role/path labels and the latency histogram.
    assert '# TYPE repro_http_requests_total counter' in text
    assert 'repro_http_requests_total{role="serve",method="POST",path="/detect",status="200"}' in text
    assert '# TYPE repro_http_request_seconds histogram' in text
    assert 'repro_http_request_seconds_bucket{role="serve",method="POST",path="/detect",le="+Inf"}' in text
    # Stage histogram fed by the detect above.
    assert '# TYPE repro_stage_seconds histogram' in text
    assert 'repro_stage_seconds_count{stage="grammar"}' in text
    # stats() re-exported as gauges at scrape time.
    assert "repro_service_batcher_dispatched" in text
    assert "repro_service_cache_misses" in text


def test_request_id_honored_minted_and_echoed():
    async def main():
        async with DetectService(batch_window=0.0) as service:
            server = ServiceHTTPServer(service, "127.0.0.1", 0)
            await server.start()
            try:
                port = server.port
                _, echoed, _ = await _get(
                    port, "/v1/healthz", headers={"X-Request-Id": "my-trace-1"}
                )
                _, minted, _ = await _get(port, "/v1/healthz")
                _, replaced, _ = await _get(
                    port, "/v1/healthz", headers={"X-Request-Id": "bad id with spaces!"}
                )
            finally:
                await server.aclose()
        return echoed, minted, replaced

    echoed, minted, replaced = asyncio.run(main())
    assert echoed["X-Request-Id"] == "my-trace-1"
    assert minted["X-Request-Id"]  # freshly minted
    assert replaced["X-Request-Id"] != "bad id with spaces!"


def test_unexpected_handler_crash_returns_envelope_and_logs_traceback(json_log_stream):
    class CrashingServer(ServiceHTTPServer):
        def _route(self, method, path):
            if path == "/v1/healthz":
                async def boom(payload, query):
                    raise RuntimeError("instrumented crash")
                return boom, (), False
            return super()._route(method, path)

    async def main():
        async with DetectService(batch_window=0.0) as service:
            server = CrashingServer(service, "127.0.0.1", 0)
            await server.start()
            try:
                return await _get(
                    server.port, "/v1/healthz", headers={"X-Request-Id": "crash-trace"}
                )
            finally:
                await server.aclose()

    status, headers, raw = asyncio.run(main())
    assert status == 500
    envelope = json.loads(raw)["error"]
    assert envelope["code"] == "internal"
    assert "RuntimeError: instrumented crash" in envelope["message"]
    assert headers["X-Request-Id"] == "crash-trace"
    lines = [json.loads(line) for line in json_log_stream.getvalue().splitlines()]
    (crash,) = [line for line in lines if "unhandled error" in line["message"]]
    assert crash["level"] == "error"
    assert crash["request_id"] == "crash-trace"
    assert "RuntimeError: instrumented crash" in crash["traceback"]


def test_detect_opt_in_timings_block():
    async def main():
        async with DetectService(batch_window=0.0) as service:
            server = ServiceHTTPServer(service, "127.0.0.1", 0)
            await server.start()
            try:
                body = {"series": make_series(), "k": 2, "seed": 1, **CONFIG}
                _, _, plain = await _get(server.port, "/v1/detect", body)
                _, _, timed = await _get(
                    server.port, "/v1/detect", {**body, "seed": 2, "timings": True}
                )
                _, _, cached = await _get(
                    server.port, "/v1/detect", {**body, "seed": 2, "timings": True}
                )
            finally:
                await server.aclose()
        return json.loads(plain), json.loads(timed), json.loads(cached)

    plain, timed, cached = asyncio.run(main())
    assert "timings" not in plain
    assert {"grammar", "density", "combine"} <= set(timed["timings"])
    assert all(value >= 0.0 for value in timed["timings"].values())
    # Cache hits report an empty block (nothing ran).
    assert cached["cached"] is True and cached["timings"] == {}


# ----------------------------------------------------------------------
# Router.
# ----------------------------------------------------------------------


def test_router_metrics_exposition():
    async def main():
        router = SessionRouter(["127.0.0.1:9"])  # never contacted
        server = RouterHTTPServer(router, "127.0.0.1", 0)
        await server.start()
        try:
            await _get(server.port, "/v1/healthz")
            status, headers, raw = await _get(server.port, "/v1/metrics")
        finally:
            await server.aclose()
        return status, headers, raw.decode()

    status, headers, text = asyncio.run(main())
    assert status == 200
    assert headers["Content-Type"] == EXPOSITION_CONTENT_TYPE
    assert 'repro_http_requests_total{role="router",method="GET",path="/healthz",status="200"}' in text
    # Router stats() re-exported, including the host:port-keyed nodes map.
    assert "repro_router_sessions" in text
    assert 'repro_router_nodes{key="127.0.0.1:9"}' in text


def test_slow_request_threshold_logs_warning(caplog):
    async def main():
        async with DetectService(batch_window=0.0) as service:
            server = ServiceHTTPServer(service, "127.0.0.1", 0, slow_request_ms=0.0)
            await server.start()
            try:
                await _get(server.port, "/v1/healthz")
            finally:
                await server.aclose()

    with caplog.at_level(logging.INFO, logger="repro.service.http"):
        asyncio.run(main())
    slow = [r for r in caplog.records if "(slow)" in r.getMessage()]
    assert slow and slow[0].levelno == logging.WARNING
