"""``repro bench --history``: the trend report over archived NDJSON runs.

Builds two synthetic "runs" (distinct ``created`` stamps, drifting
medians) in nested directories the way downloaded CI artifacts land, and
checks grouping, ordering by ``created``, the drift column, and the CLI
early-return path.
"""

from __future__ import annotations

import sys

import pytest

from repro.cli import find_benchmarks_dir, main

BENCH_DIR = find_benchmarks_dir()
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from runner.history import history_report, history_rows, load_history  # noqa: E402
from runner.schema import BenchRecord, write_ndjson  # noqa: E402


def _record(metric: str, value: float, created: str) -> BenchRecord:
    return BenchRecord(
        metric=metric,
        workload=metric.split(".")[0],
        unit="us",
        value=value,
        iqr=0.1,
        best=value,
        mean=value,
        repeats=3,
        warmup=1,
        samples=(value, value, value),
        created=created,
    )


@pytest.fixture()
def history_dir(tmp_path):
    """Two archived runs in nested dirs (artifact-download layout)."""
    write_ndjson(
        tmp_path / "run-1" / "bench_matrix.ndjson",
        [
            _record("stream.us_per_point", 2.0, "2026-08-01T00:00:00Z"),
            _record("grammar.us_per_token", 5.0, "2026-08-01T00:00:00Z"),
        ],
    )
    write_ndjson(
        tmp_path / "run-2" / "bench_matrix.ndjson",
        [
            _record("stream.us_per_point", 3.0, "2026-08-02T00:00:00Z"),
            _record("grammar.us_per_token", 4.0, "2026-08-02T00:00:00Z"),
        ],
    )
    return tmp_path


def test_load_history_groups_and_orders_by_created(history_dir):
    by_metric = load_history(history_dir)
    assert set(by_metric) == {"stream.us_per_point", "grammar.us_per_token"}
    assert [record.value for record in by_metric["stream.us_per_point"]] == [2.0, 3.0]
    assert [record.value for record in by_metric["grammar.us_per_token"]] == [5.0, 4.0]


def test_history_rows_report_drift(history_dir):
    rows = history_rows(load_history(history_dir))
    by_metric = {row[0]: row for row in rows}
    stream = by_metric["stream.us_per_point"]
    assert stream[2] == "2"  # two runs
    assert stream[3] == "2" and stream[4] == "3"
    assert stream[5] == "+50.0%"
    assert by_metric["grammar.us_per_token"][5] == "-20.0%"


def test_history_report_renders_table(history_dir):
    report = history_report(history_dir)
    assert "bench history: 2 metric(s)" in report
    assert "stream.us_per_point" in report
    assert "+50.0%" in report


def test_load_history_rejects_missing_or_empty(tmp_path):
    with pytest.raises(ValueError, match="not a directory"):
        load_history(tmp_path / "nope")
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ValueError, match="no bench records"):
        load_history(empty)


def test_cli_history_flag_prints_report_and_runs_nothing(history_dir, capsys):
    assert main(["bench", "--history", str(history_dir)]) == 0
    out = capsys.readouterr().out
    assert "bench history" in out
    assert "stream.us_per_point" in out
