"""Kernel differential suite: the full pipeline across REPRO_KERNEL values.

The property battery (``test_sax_properties.py``) pins the discretization
stage in isolation; this suite drives random series through the *whole*
detector — batch ``detect()``/``ensemble_report()`` and streaming
append/extend + poll — under every kernel and every executor backend, and
asserts the end results are bitwise identical: same anomaly positions, same
member selection, same float64 curve bits.

``python`` is the oracle; ``fast`` (the default) must match it exactly, and
``compiled`` joins the matrix wherever numba is importable (CI's numba cell
runs this file under ``REPRO_KERNEL=compiled``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.executors import make_executor
from repro.core.streaming import StreamingEnsembleDetector, StreamingGrammarDetector
from repro.sax import _kernel

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False

NON_ORACLE = ["fast"] + (["compiled"] if HAVE_NUMBA else [])

WINDOW = 50
CONFIG = dict(
    window=WINDOW, ensemble_size=6, max_paa_size=6, max_alphabet_size=6, seed=5
)


def random_series(seed: int, n: int = 900) -> np.ndarray:
    rng = np.random.default_rng(seed)
    series = np.sin(np.linspace(0.0, 18.0 * np.pi, n))
    series += 0.05 * rng.standard_normal(n)
    anomaly = int(rng.integers(n // 4, 3 * n // 4))
    series[anomaly : anomaly + WINDOW] *= 0.1
    return series


def batch_result(kernel: str, series: np.ndarray, executor_kind: str | None):
    with _kernel.use_kernel(kernel):
        detector = EnsembleGrammarDetector(**CONFIG)
        if executor_kind is None:
            report = detector.ensemble_report(series, keep_member_curves=True)
            anomalies = detector.detect(series, 3)
        else:
            with make_executor(executor_kind, 2) as executor:
                detector = EnsembleGrammarDetector(**CONFIG, executor=executor)
                report = detector.ensemble_report(series, keep_member_curves=True)
                anomalies = detector.detect(series, 3)
    return report, anomalies


def streaming_result(kernel: str, series: np.ndarray, **overrides):
    """Append + extend ingestion with interleaved polls (snapshot reads)."""
    with _kernel.use_kernel(kernel):
        detector = StreamingEnsembleDetector(**CONFIG, **overrides)
        for value in series[:150]:
            detector.append(float(value))
        curves = []
        for offset in range(150, len(series), 200):
            detector.extend(series[offset : offset + 200])
            curves.append(detector.density_curve().copy())
        anomalies = detector.detect(3)
    return curves, anomalies


@pytest.mark.parametrize("kernel", NON_ORACLE)
@pytest.mark.parametrize("seed", [1, 2])
def test_batch_detect_matches_python_oracle(kernel, seed):
    series = random_series(seed)
    oracle_report, oracle_anomalies = batch_result("python", series, None)
    report, anomalies = batch_result(kernel, series, None)
    assert report.parameters == oracle_report.parameters
    assert report.kept == oracle_report.kept
    assert np.array_equal(report.curve, oracle_report.curve)
    for ours, expected in zip(report.member_curves, oracle_report.member_curves):
        assert np.array_equal(ours, expected)
    assert anomalies == oracle_anomalies


@pytest.mark.parametrize("kernel", NON_ORACLE)
def test_batch_detect_matches_oracle_across_executors(kernel, executor_kind):
    series = random_series(3)
    oracle_report, oracle_anomalies = batch_result("python", series, None)
    report, anomalies = batch_result(kernel, series, executor_kind)
    assert report.kept == oracle_report.kept
    assert np.array_equal(report.curve, oracle_report.curve)
    assert anomalies == oracle_anomalies


@pytest.mark.parametrize("kernel", NON_ORACLE)
@pytest.mark.parametrize("seed", [4, 5])
def test_streaming_polls_match_python_oracle(kernel, seed):
    series = random_series(seed)
    oracle_curves, oracle_anomalies = streaming_result("python", series)
    curves, anomalies = streaming_result(kernel, series)
    assert len(curves) == len(oracle_curves)
    for ours, expected in zip(curves, oracle_curves):
        assert np.array_equal(ours, expected)
    assert anomalies == oracle_anomalies


@pytest.mark.parametrize("kernel", NON_ORACLE)
def test_streaming_matches_oracle_across_executors(kernel, executor_kind):
    series = random_series(6)
    oracle_curves, oracle_anomalies = streaming_result("python", series)
    curves, anomalies = streaming_result(kernel, series, executor=executor_kind)
    for ours, expected in zip(curves, oracle_curves):
        assert np.array_equal(ours, expected)
    assert anomalies == oracle_anomalies


@pytest.mark.parametrize("kernel", NON_ORACLE)
@pytest.mark.parametrize(
    "eviction",
    [dict(capacity=300, policy="sliding"), dict(capacity=300, policy="decay", segments=3)],
    ids=["sliding", "decay"],
)
def test_streaming_eviction_matches_python_oracle(kernel, eviction):
    series = random_series(7, n=1200)
    oracle_curves, oracle_anomalies = streaming_result("python", series, **eviction)
    curves, anomalies = streaming_result(kernel, series, **eviction)
    for ours, expected in zip(curves, oracle_curves):
        assert np.array_equal(ours, expected)
    assert anomalies == oracle_anomalies


@pytest.mark.parametrize("kernel", NON_ORACLE)
def test_single_member_stream_matches_python_oracle(kernel):
    series = random_series(8, n=700)

    def run(name: str):
        with _kernel.use_kernel(name):
            member = StreamingGrammarDetector(window=WINDOW, paa_size=5, alphabet_size=5)
            for value in series[:90]:
                member.append(float(value))
            member.extend(series[90:])
            return member.density_curve().copy(), member.detect(2)

    oracle_curve, oracle_anomalies = run("python")
    curve, anomalies = run(kernel)
    assert np.array_equal(curve, oracle_curve)
    assert anomalies == oracle_anomalies


def test_current_kernel_matches_batch_and_streaming():
    """Whatever kernel the session selected: batch and streaming agree."""
    series = random_series(9)
    batch_curve = EnsembleGrammarDetector(**CONFIG).density_curve(series)
    streaming = StreamingEnsembleDetector(**CONFIG)
    streaming.extend(series)
    assert np.array_equal(streaming.density_curve(), batch_curve)
