"""Unit tests for repro.core.multiresolution (Section 6.2 fast path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multiresolution import MultiResolutionDiscretizer
from repro.sax.numerosity import numerosity_reduction
from repro.sax.sax import discretize


@pytest.fixture
def discretizer(rng) -> tuple[MultiResolutionDiscretizer, np.ndarray]:
    series = np.cumsum(rng.standard_normal(400))
    return MultiResolutionDiscretizer(series, 50, max_paa_size=10, max_alphabet_size=10), series


class TestWordsEquivalence:
    def test_matches_direct_discretize_all_combinations(self, discretizer):
        """The headline contract: fast multi-resolution words == plain SAX."""
        d, series = discretizer
        for w in (2, 5, 10):
            for a in (2, 6, 10):
                assert d.words(w, a) == discretize(series, 50, w, a), (w, a)

    def test_tokens_match_direct_pipeline(self, discretizer):
        d, series = discretizer
        for w, a in [(3, 4), (7, 9)]:
            direct = numerosity_reduction(discretize(series, 50, w, a), 50)
            fast = d.tokens(w, a)
            assert fast.words == direct.words
            assert np.array_equal(fast.offsets, direct.offsets)
            assert fast.n_windows == direct.n_windows

    def test_n_windows(self, discretizer):
        d, series = discretizer
        assert d.n_windows == len(series) - 50 + 1


class TestCaching:
    def test_interval_matrix_cached_per_w(self, discretizer):
        d, _ = discretizer
        first = d.interval_matrix(5)
        second = d.interval_matrix(5)
        assert first is second

    def test_tokens_cached_per_combination(self, discretizer):
        d, _ = discretizer
        assert d.tokens(4, 5) is d.tokens(4, 5)

    def test_different_alphabets_share_interval_matrix(self, discretizer):
        """The Section 6.2.2 speedup: one interval matrix serves all a."""
        d, _ = discretizer
        d.words(6, 3)
        matrix = d.interval_matrix(6)
        d.words(6, 9)
        assert d.interval_matrix(6) is matrix


class TestValidation:
    def test_paa_size_above_declared_max_rejected(self, discretizer):
        d, _ = discretizer
        with pytest.raises(ValueError, match="max_paa_size"):
            d.interval_matrix(11)

    def test_alphabet_above_declared_max_rejected(self, discretizer):
        d, _ = discretizer
        with pytest.raises(ValueError, match="outside table range"):
            d.words(4, 11)

    def test_window_larger_than_series_rejected(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            MultiResolutionDiscretizer(rng.standard_normal(30), 31, 4, 4)

    def test_max_paa_above_window_rejected(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            MultiResolutionDiscretizer(rng.standard_normal(30), 10, 11, 4)


class TestNumerosityModes:
    def test_none_strategy_keeps_every_window(self, rng):
        series = np.cumsum(rng.standard_normal(100))
        d = MultiResolutionDiscretizer(series, 20, 4, 4, numerosity="none")
        tokens = d.tokens(4, 4)
        assert len(tokens) == d.n_windows
