"""Unit tests for repro.evaluation.harness and repro.evaluation.tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.anomaly import Anomaly
from repro.datasets.planting import AnomalyTestCase, make_corpus
from repro.datasets.ucr_like import DATASETS
from repro.evaluation.harness import (
    MethodScores,
    evaluate_detector,
    evaluate_methods,
    evaluate_methods_on_corpus,
)
from repro.evaluation.tables import format_float, format_table


class _OracleDetector:
    """Reports the ground truth exactly (for harness plumbing tests)."""

    def __init__(self, location: int, window: int) -> None:
        self.location = location
        self.window = window

    def detect(self, series: np.ndarray, k: int = 3) -> list[Anomaly]:
        return [Anomaly(position=self.location, length=self.window, score=1.0, rank=1)]


class _BlindDetector:
    """Always reports position 0 (misses every planted anomaly)."""

    def __init__(self, window: int) -> None:
        self.window = window

    def detect(self, series: np.ndarray, k: int = 3) -> list[Anomaly]:
        return [Anomaly(position=0, length=self.window, score=0.0, rank=1)]


@pytest.fixture
def small_corpus() -> list[AnomalyTestCase]:
    return make_corpus(DATASETS["TwoLeadECG"], n_cases=3, seed=0)


class TestMethodScores:
    def test_aggregates(self):
        scores = MethodScores("X", (0.0, 0.5, 1.0))
        assert scores.average == pytest.approx(0.5)
        assert scores.hit_rate == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MethodScores("X", ())

    def test_as_array(self):
        scores = MethodScores("X", (0.25, 0.75))
        assert scores.as_array().tolist() == [0.25, 0.75]


class TestEvaluateDetector:
    def test_oracle_scores_one(self, small_corpus):
        for case in small_corpus:
            detector = _OracleDetector(case.gt_location, case.gt_length)
            assert evaluate_detector(detector, [case]) == [1.0]

    def test_blind_scores_zero(self, small_corpus):
        detector = _BlindDetector(82)
        scores = evaluate_detector(detector, small_corpus)
        assert all(s == 0.0 for s in scores)


class TestEvaluateMethodsOnCorpus:
    def test_window_defaults_to_gt_length(self, small_corpus):
        captured: list[int] = []

        def factory(window: int) -> _BlindDetector:
            captured.append(window)
            return _BlindDetector(window)

        evaluate_methods_on_corpus(small_corpus, {"Blind": factory})
        assert captured == [82]

    def test_explicit_window_override(self, small_corpus):
        captured: list[int] = []

        def factory(window: int) -> _BlindDetector:
            captured.append(window)
            return _BlindDetector(window)

        evaluate_methods_on_corpus(small_corpus, {"Blind": factory}, window=57)
        assert captured == [57]

    def test_mixed_lengths_require_explicit_window(self, small_corpus):
        other = make_corpus(DATASETS["Wafer"], n_cases=1, seed=0)
        with pytest.raises(ValueError, match="mixed ground-truth lengths"):
            evaluate_methods_on_corpus(
                small_corpus + other, {"Blind": lambda w: _BlindDetector(w)}
            )

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            evaluate_methods_on_corpus([], {"X": lambda w: _BlindDetector(w)})

    def test_results_keyed_by_method(self, small_corpus):
        results = evaluate_methods_on_corpus(
            small_corpus, {"Blind": lambda w: _BlindDetector(w)}
        )
        assert set(results) == {"Blind"}
        assert len(results["Blind"].scores) == 3


class TestEvaluateMethods:
    def test_nested_structure(self, small_corpus):
        corpora = {"TwoLeadECG": small_corpus}
        results = evaluate_methods(corpora, {"Blind": lambda w: _BlindDetector(w)})
        assert set(results) == {"TwoLeadECG"}
        assert results["TwoLeadECG"]["Blind"].average == 0.0


class TestTables:
    def test_format_float(self):
        assert format_float(0.39514, 4) == "0.3951"
        assert format_float(1.0, 2) == "1.00"

    def test_format_table_alignment(self):
        table = format_table(
            ["Dataset", "Score"],
            [["TwoLeadECG", "0.3951"], ["Trace", "0.5718"]],
        )
        lines = table.splitlines()
        assert lines[0].startswith("Dataset")
        assert "TwoLeadECG" in lines[2]
        # All rows align on the second column.
        assert lines[2].index("0.3951") == lines[3].index("0.5718")

    def test_title_rendered(self):
        table = format_table(["A"], [["1"]], title="Table 4")
        assert table.splitlines()[0] == "Table 4"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["A", "B"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError, match="headers"):
            format_table([], [])
