"""Smoke tests: the fast example scripts run end to end.

Each example is executed in a subprocess (as a user would run it) with a
generous timeout; the slow, long-series demos (power case study, multiple
anomalies) are exercised at reduced scale by the integration tests and the
benches instead.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "parameter_sensitivity.py",
    "ecg_density_curves.py",
    "motif_discovery.py",
    "streaming_detection.py",
    "real_ucr_data.py",
    "serve_client.py",
    "cluster_worker.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_finds_planted_anomaly():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "<-- planted" in result.stdout


def test_streaming_example_localizes():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "streaming_detection.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "anomaly localized" in result.stdout


def test_cluster_example_verifies_parity():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "cluster_worker.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "bitwise parity with the serial run: OK" in result.stdout
    assert "fleet: 2 workers" in result.stdout
