"""Unit tests for repro.datasets.planting (Section 7.1.1 / 7.5 protocol)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.planting import (
    AnomalyTestCase,
    make_corpus,
    make_multi_anomaly_case,
    make_test_case,
)
from repro.datasets.ucr_like import DATASETS


class TestMakeTestCase:
    def test_series_length_is_21_instances(self):
        dataset = DATASETS["GunPoint"]
        case = make_test_case(dataset, seed=0)
        assert len(case.series) == 21 * 150

    def test_gt_length_is_instance_length(self):
        case = make_test_case(DATASETS["Wafer"], seed=0)
        assert case.gt_length == 150

    def test_position_within_40_80_percent(self):
        dataset = DATASETS["TwoLeadECG"]
        normal_length = 20 * 82
        for seed in range(10):
            case = make_test_case(dataset, seed=seed)
            assert 0.4 * normal_length <= case.gt_location <= 0.8 * normal_length

    def test_planted_segment_is_the_anomalous_instance(self):
        """Splicing must place the anomaly exactly at gt_location."""
        dataset = DATASETS["Trace"]
        rng = np.random.default_rng(5)
        case = make_test_case(dataset, rng)
        segment = case.series[case.gt_location : case.gt_location + case.gt_length]
        # The planted instance is z-normalized like all instances.
        assert abs(segment.mean()) < 1e-6
        assert segment.std(ddof=1) == pytest.approx(1.0, abs=1e-6)

    def test_anomaly_class_is_not_normal(self):
        for seed in range(5):
            case = make_test_case(DATASETS["StarLightCurve"], seed=seed)
            assert case.anomaly_class >= 2

    def test_deterministic_for_seed(self):
        a = make_test_case(DATASETS["Wafer"], seed=9)
        b = make_test_case(DATASETS["Wafer"], seed=9)
        assert np.array_equal(a.series, b.series)
        assert a.gt_location == b.gt_location

    def test_custom_position_range(self):
        case = make_test_case(
            DATASETS["GunPoint"], seed=0, position_range=(0.5, 0.5)
        )
        assert case.gt_location == int(0.5 * 20 * 150)

    def test_invalid_position_range(self):
        with pytest.raises(ValueError, match="position_range"):
            make_test_case(DATASETS["GunPoint"], seed=0, position_range=(0.8, 0.4))

    def test_ground_truth_validation(self):
        with pytest.raises(ValueError, match="outside"):
            AnomalyTestCase(np.zeros(10), 8, 5, "X", 2)


class TestMakeCorpus:
    def test_paper_corpus_size(self):
        corpus = make_corpus(DATASETS["TwoLeadECG"], n_cases=25, seed=0)
        assert len(corpus) == 25

    def test_cases_differ(self):
        corpus = make_corpus(DATASETS["TwoLeadECG"], n_cases=3, seed=0)
        assert not np.array_equal(corpus[0].series, corpus[1].series)
        assert len({case.gt_location for case in corpus}) > 1

    def test_reproducible(self):
        a = make_corpus(DATASETS["Trace"], n_cases=3, seed=4)
        b = make_corpus(DATASETS["Trace"], n_cases=3, seed=4)
        for case_a, case_b in zip(a, b):
            assert np.array_equal(case_a.series, case_b.series)

    def test_invalid_count(self):
        with pytest.raises(ValueError, match="positive"):
            make_corpus(DATASETS["Trace"], n_cases=0)


class TestMultiAnomalyCase:
    def test_paper_section_75_dimensions(self):
        """40 normal + 2 anomalies of length 1024 -> series of 43,008."""
        case = make_multi_anomaly_case(
            DATASETS["StarLightCurve"], seed=0, n_normal=40, n_anomalies=2
        )
        assert len(case.series) == 43008
        assert len(case.gt_locations) == 2

    def test_anomalies_separated(self):
        case = make_multi_anomaly_case(
            DATASETS["StarLightCurve"], seed=1, n_normal=40, n_anomalies=2
        )
        a, b = case.gt_locations
        assert abs(a - b) >= 2 * 1024

    def test_planted_segments_are_normalized_instances(self):
        case = make_multi_anomaly_case(
            DATASETS["Trace"], seed=2, n_normal=10, n_anomalies=2
        )
        for location in case.gt_locations:
            segment = case.series[location : location + case.gt_length]
            assert abs(segment.mean()) < 1e-6
            assert segment.std(ddof=1) == pytest.approx(1.0, abs=1e-6)

    def test_locations_sorted_ascending(self):
        case = make_multi_anomaly_case(
            DATASETS["Trace"], seed=3, n_normal=12, n_anomalies=3, min_separation=1.5
        )
        assert list(case.gt_locations) == sorted(case.gt_locations)

    def test_impossible_separation_raises(self):
        with pytest.raises(RuntimeError, match="could not place"):
            make_multi_anomaly_case(
                DATASETS["Trace"], seed=0, n_normal=4, n_anomalies=5, min_separation=10.0
            )

    def test_invalid_anomaly_count(self):
        with pytest.raises(ValueError, match="positive"):
            make_multi_anomaly_case(DATASETS["Trace"], seed=0, n_anomalies=0)
