"""Unit tests for repro.datasets.generators and repro.datasets.power."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import noisy_sine, random_walk, synthetic_ecg, synthetic_eeg
from repro.datasets.power import dishwasher_series, fridge_freezer_series


class TestRandomWalk:
    def test_length(self):
        assert len(random_walk(500, seed=0)) == 500

    def test_deterministic(self):
        assert np.array_equal(random_walk(100, seed=1), random_walk(100, seed=1))

    def test_is_cumulative(self):
        walk = random_walk(1000, seed=2)
        steps = np.diff(walk)
        # Steps are standard normal: mean ~0, std ~1.
        assert abs(steps.mean()) < 0.15
        assert abs(steps.std() - 1.0) < 0.15

    def test_invalid_length(self):
        with pytest.raises(ValueError, match="positive"):
            random_walk(0)


class TestNoisySine:
    def test_periodicity(self):
        series = noisy_sine(1000, period=100, noise=0.0)
        assert np.allclose(series[:100], series[100:200], atol=1e-9)

    def test_noise_level(self):
        clean = noisy_sine(5000, period=100, noise=0.0, seed=0)
        noisy = noisy_sine(5000, period=100, noise=0.2, seed=0)
        residual = noisy - clean
        assert 0.15 < residual.std() < 0.25

    def test_invalid_period(self):
        with pytest.raises(ValueError, match="period"):
            noisy_sine(100, period=0)


class TestSyntheticEcg:
    def test_length_and_finiteness(self):
        ecg = synthetic_ecg(5000, seed=0)
        assert len(ecg) == 5000
        assert np.all(np.isfinite(ecg))

    def test_contains_beats(self):
        """R peaks recur roughly every mean_beat_length samples."""
        ecg = synthetic_ecg(4000, seed=1, noise=0.0, wander=0.0)
        threshold = 0.6 * ecg.max()
        peaks = np.where(
            (ecg[1:-1] > threshold) & (ecg[1:-1] >= ecg[:-2]) & (ecg[1:-1] >= ecg[2:])
        )[0]
        assert 15 <= len(peaks) <= 35  # ~25 beats at 160 samples/beat

    def test_rr_variability(self):
        ecg = synthetic_ecg(8000, seed=2, noise=0.0, wander=0.0)
        threshold = 0.6 * ecg.max()
        peaks = np.where(
            (ecg[1:-1] > threshold) & (ecg[1:-1] >= ecg[:-2]) & (ecg[1:-1] >= ecg[2:])
        )[0]
        intervals = np.diff(peaks)
        intervals = intervals[intervals > 50]  # drop double-detections
        assert intervals.std() > 1.0  # RR intervals vary

    def test_deterministic(self):
        assert np.array_equal(synthetic_ecg(1000, seed=5), synthetic_ecg(1000, seed=5))


class TestSyntheticEeg:
    def test_length_and_standardization(self):
        eeg = synthetic_eeg(4096, seed=0)
        assert len(eeg) == 4096
        assert eeg.std() == pytest.approx(1.0, abs=1e-6)

    def test_alpha_band_dominates(self):
        """The alpha band (8-13 Hz) is boosted over 30+ Hz activity."""
        eeg = synthetic_eeg(8192, seed=1, sampling_rate=128.0)
        spectrum = np.abs(np.fft.rfft(eeg))
        freqs = np.fft.rfftfreq(8192, d=1.0 / 128.0)
        alpha = spectrum[(freqs >= 8) & (freqs <= 13)].mean()
        high = spectrum[(freqs >= 35) & (freqs <= 60)].mean()
        assert alpha > 3.0 * high

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="at least 8"):
            synthetic_eeg(4)


class TestFridgeFreezer:
    def test_shape_and_ground_truth(self):
        series, anomalies = fridge_freezer_series(length=30_000, seed=0)
        assert len(series) == 30_000
        assert len(anomalies) == 2
        kinds = {a.kind for a in anomalies}
        assert kinds == {"distorted-cycle", "spiky-event"}

    def test_cyclic_structure(self):
        series, _ = fridge_freezer_series(length=30_000, seed=0)
        # Power alternates between ~0 (off) and ~85 (on).
        off_fraction = np.mean(series < 20)
        on_fraction = np.mean(series > 60)
        assert 0.3 < off_fraction < 0.8
        assert 0.2 < on_fraction < 0.7

    def test_spiky_event_has_high_peaks(self):
        series, anomalies = fridge_freezer_series(length=30_000, seed=0)
        spiky = next(a for a in anomalies if a.kind == "spiky-event")
        segment = series[spiky.position : spiky.position + spiky.length]
        assert segment.max() > 150.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            fridge_freezer_series(length=1000, mean_period=900)

    def test_deterministic(self):
        a, _ = fridge_freezer_series(length=20_000, seed=3)
        b, _ = fridge_freezer_series(length=20_000, seed=3)
        assert np.array_equal(a, b)


class TestDishwasher:
    def test_shape_and_anomaly_position(self):
        series, anomaly = dishwasher_series(n_cycles=10, seed=0, cycle_length=300)
        assert len(series) == 3000
        assert anomaly.position == 5 * 300  # middle cycle by default

    def test_anomalous_cycle_has_less_energy(self):
        """The anomalous cycle misses its second heating plateau."""
        series, anomaly = dishwasher_series(n_cycles=10, seed=0)
        cycle_length = anomaly.length
        energies = [
            series[i * cycle_length : (i + 1) * cycle_length].sum() for i in range(10)
        ]
        anomalous_index = anomaly.position // cycle_length
        assert energies[anomalous_index] == min(energies)

    def test_explicit_anomalous_cycle(self):
        _, anomaly = dishwasher_series(n_cycles=8, seed=0, anomalous_cycle=2)
        assert anomaly.position == 2 * 400

    def test_invalid_cycle_count(self):
        with pytest.raises(ValueError, match="at least 3"):
            dishwasher_series(n_cycles=2)

    def test_invalid_anomalous_index(self):
        with pytest.raises(ValueError, match="anomalous_cycle"):
            dishwasher_series(n_cycles=5, anomalous_cycle=7)
